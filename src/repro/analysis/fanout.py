"""Unicast vs. relay-tree update traffic (§3, §5.3).

Without relays, the origin pushes every update to every subscriber itself:
its egress is ``subscribers x updates`` objects.  With a relay tree, each
node sends one copy per *child*, so the origin's egress is its branching
factor — independent of the subscriber count — and every tier's ingress
equals the number of relays in that tier.  These closed forms are what the
:mod:`repro.experiments.relay_fanout` experiment checks the simulated relay
hierarchy against.

Wire bytes are modelled as ``messages x bytes_per_update``, where
``bytes_per_update`` is the on-the-wire size of one pushed object (payload
plus MoQT subgroup-stream and QUIC framing).  The experiment calibrates it
from a minimal one-relay, one-subscriber run, so the model's predictive
content is the per-tier message *count* scaling, not the framing constant.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default on-the-wire size of one pushed update: a ~300 B DNS response
#: object plus subgroup-stream header and QUIC packet framing.
DEFAULT_BYTES_PER_UPDATE = 340.0


def tier_ingress_messages(receivers: int, updates: int) -> int:
    """Objects entering a tier: one per receiving node per update."""
    if receivers < 0 or updates < 0:
        raise ValueError("receivers and updates must be non-negative")
    return receivers * updates


def unicast_origin_messages(subscribers: int, updates: int) -> int:
    """Origin pushes without a relay tree: one per subscriber per update.

    The degenerate tree — every subscriber is a direct child of the origin.
    """
    return tier_ingress_messages(subscribers, updates)


@dataclass(frozen=True)
class FanoutModel:
    """Closed-form per-tier traffic for one tree shape and update batch.

    ``tier_receivers`` lists, top-down, how many nodes receive each pushed
    object at every level below the origin: first the origin's direct
    children, then each deeper relay tier, and finally the subscribers.
    """

    subscribers: int
    updates: int
    tier_receivers: tuple[int, ...]
    bytes_per_update: float = DEFAULT_BYTES_PER_UPDATE

    def __post_init__(self) -> None:
        if not self.tier_receivers:
            raise ValueError("at least one tier of receivers is required")
        if self.tier_receivers[-1] != self.subscribers:
            raise ValueError(
                "the last receiver tier must be the subscribers: "
                f"{self.tier_receivers[-1]} != {self.subscribers}"
            )

    # ------------------------------------------------------------- messages
    def tier_messages(self) -> tuple[int, ...]:
        """Objects entering each tier (top-down, subscribers last)."""
        return tuple(
            tier_ingress_messages(receivers, self.updates) for receivers in self.tier_receivers
        )

    @property
    def origin_messages(self) -> int:
        """Objects the origin sends — O(branching factor), not O(subscribers)."""
        return self.tier_messages()[0]

    @property
    def unicast_messages(self) -> int:
        """Objects the origin would send without the tree."""
        return unicast_origin_messages(self.subscribers, self.updates)

    @property
    def total_messages(self) -> int:
        """Objects over all tree links (the tree's bandwidth cost)."""
        return sum(self.tier_messages())

    @property
    def origin_reduction_factor(self) -> float:
        """How much relay fan-out shrinks origin egress (>1 favours the tree)."""
        if self.origin_messages <= 0:
            return float("inf")
        return self.unicast_messages / self.origin_messages

    # ---------------------------------------------------------------- bytes
    def tier_bytes(self) -> tuple[float, ...]:
        """Wire bytes entering each tier (top-down, subscribers last)."""
        return tuple(messages * self.bytes_per_update for messages in self.tier_messages())

    @property
    def origin_egress_bytes(self) -> float:
        """Wire bytes the origin sends into the top tier."""
        return self.tier_bytes()[0]

    @property
    def unicast_origin_bytes(self) -> float:
        """Wire bytes the origin would send without the tree."""
        return self.unicast_messages * self.bytes_per_update


def fanout_model(
    subscribers: int,
    updates: int,
    tier_sizes: tuple[int, ...],
    bytes_per_update: float = DEFAULT_BYTES_PER_UPDATE,
) -> FanoutModel:
    """Model a tree whose relay tiers have ``tier_sizes`` nodes (top-down).

    Because relays aggregate, a relay with no subscribing descendants never
    subscribes upstream and receives nothing.  With round-robin subscriber
    placement a tier's *effective* receiver count is therefore capped by the
    active population below it: ``min(tier_size, active_below)``, computed
    bottom-up.  With ``subscribers >= tier_sizes[-1]`` every relay is active
    and the chain is simply the tier sizes followed by the subscribers.
    """
    receivers: list[int] = []
    active = subscribers
    for size in reversed(tier_sizes):
        active = min(size, active)
        receivers.append(active)
    receivers.reverse()
    return FanoutModel(
        subscribers=subscribers,
        updates=updates,
        tier_receivers=tuple(receivers) + (subscribers,),
        bytes_per_update=bytes_per_update,
    )


def relative_deviation(measured: float, predicted: float) -> float:
    """``|measured - predicted| / predicted`` (0 when both are zero)."""
    if predicted == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - predicted) / predicted
