"""Closed-form flash-crowd admission model (E16).

A storm of ``count`` subscribers joins a single leaf relay inside
``window`` seconds, evenly spaced, against an
:class:`~repro.relaynet.admission.AdmissionPolicy` token bucket
(``subscribe_rate`` admissions per second, burst ``bucket_depth``).  On
the simulated stack each join's first SUBSCRIBE reaches the relay a fixed
number of one-way link trips after the join fires:

1. QUIC handshake — 1 RTT (2 trips);
2. MoQT session setup (CLIENT_SETUP / SERVER_SETUP) — 1 RTT, elided when
   version negotiation rides the QUIC/TLS ALPN (§5.2's optimisation);
3. the SUBSCRIBE itself — half an RTT (1 trip).

An admitted SUBSCRIBE is answered half an RTT later, so an unthrottled
join costs 3 RTTs end to end — the same arithmetic as
:mod:`repro.analysis.churn`'s re-attach model.  A *rejected* SUBSCRIBE
rides the reservation contract instead: the relay hands back the exact
virtual token slot the subscriber owns as ``retry_after`` (rounded up to
whole milliseconds on the wire), the client waits exactly that long after
receiving the error, and the single retry is admitted unconditionally.
So the rejected join's timeline is::

    join -> (5 trips) SUBSCRIBE arrives, slot reserved
         -> (1 trip)  SUBSCRIBE_ERROR at client
         -> ceil_ms(retry_after) wait
         -> (1 trip)  retry SUBSCRIBE arrives, reservation honored
         -> (1 trip)  SUBSCRIBE_OK at client

The bucket arithmetic itself is *shared with the implementation*: the
model drives a fresh :class:`~repro.relaynet.admission.AdmissionController`
over the closed-form arrival times, so the float folds that decide
admit-vs-reserve (and each reservation's slot) are the same code the
relay executes — which is what makes the predicted completion time and
join-latency distribution **bit-exact** against the measured storm, the
same replay discipline as E15's constrained-path model.

Exactness preconditions (all enforced by the E16 experiment setup):

* one leaf relay, loss-free subscriber links with no bandwidth cap (no
  serialisation folds, no retransmissions, no spillover);
* the storm's track is pre-warmed (an earlier subscriber holds the
  relay's upstream subscription active), so every admitted SUBSCRIBE is
  answered synchronously instead of waiting on an upstream round trip;
* the policy advertises ``retry_after`` and the client retry budget
  covers one retry (the reservation contract needs exactly one);
* joins are evenly spaced with the same ``(i * window) / count`` fold
  :meth:`~repro.relaynet.topology.RelayTopology.flash_crowd` uses, from
  the same absolute start time (float addition is not translation
  invariant, so the model replays absolute simulator timestamps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.relaynet.admission import AdmissionController, AdmissionPolicy

#: One-way link trips from a join firing to its SUBSCRIBE arriving at the
#: relay: QUIC handshake (2) + MoQT setup (2) + the SUBSCRIBE itself (1).
TRIPS_TO_SUBSCRIBE = 5
#: Trips with ALPN version negotiation folding the setup round trip away.
TRIPS_TO_SUBSCRIBE_ALPN = 3


@dataclass(frozen=True)
class StormJoin:
    """One modelled subscriber's predicted admission timeline."""

    index: int
    joined_at: float
    first_arrival: float
    #: The reserved token slot, None when admitted on the first try.
    slot: float | None
    admitted_at: float

    @property
    def rejected(self) -> bool:
        """Whether this join needed the retry-after reservation path."""
        return self.slot is not None

    @property
    def join_latency(self) -> float:
        """Seconds from the join firing to SUBSCRIBE_OK at the client."""
        return self.admitted_at - self.joined_at


@dataclass(frozen=True)
class AdmissionModel:
    """Predicts a flash crowd's admission schedule from policy knobs.

    Attributes
    ----------
    count / window / start:
        The storm shape: joins fire at ``start + (i * window) / count``
        (``start`` is the absolute simulator time the storm was injected —
        passed through so float folds match the measured run).
    policy:
        The leaf relay's admission policy; must rate-limit and advertise
        ``retry_after`` for the reservation replay to apply.
    link_delay:
        One-way delay of the subscriber <-> leaf link, in seconds.
    alpn_version_negotiation:
        Whether MoQT version negotiation rides the QUIC/TLS ALPN, removing
        the dedicated SETUP round trip.
    """

    count: int
    window: float
    start: float
    policy: AdmissionPolicy
    link_delay: float
    alpn_version_negotiation: bool = False

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be at least 1: {self.count}")
        if self.window < 0:
            raise ValueError(f"window must be non-negative: {self.window}")
        if self.link_delay < 0:
            raise ValueError(f"link delay must be non-negative: {self.link_delay}")
        if self.policy.subscribe_rate is None:
            raise ValueError("the admission model needs a rate-limited policy")
        if not self.policy.advertise_retry_after:
            raise ValueError("the reservation replay needs advertised retry_after")

    @property
    def trips_to_subscribe(self) -> int:
        """One-way trips from a join to its SUBSCRIBE arriving at the relay."""
        if self.alpn_version_negotiation:
            return TRIPS_TO_SUBSCRIBE_ALPN
        return TRIPS_TO_SUBSCRIBE

    def joins(self) -> list[StormJoin]:
        """Replay the storm: per-join reserved slots and admission times.

        The returned list is in join order.  Slot decisions come from a
        fresh :class:`AdmissionController` driven over the closed-form
        arrival times, so the folds match the relay's bit for bit.
        """
        controller = AdmissionController(self.policy)
        delay = self.link_delay
        joins: list[StormJoin] = []
        for index in range(self.count):
            joined_at = self.start + (index * self.window) / self.count
            # Event times accumulate one hop at a time, exactly as the
            # simulator schedules them (each hop is a separate addition).
            arrival = joined_at
            for _ in range(self.trips_to_subscribe):
                arrival += delay
            decision = controller.decide(index, arrival, 0)
            if decision.admitted:
                joins.append(
                    StormJoin(
                        index=index,
                        joined_at=joined_at,
                        first_arrival=arrival,
                        slot=None,
                        admitted_at=arrival + delay,
                    )
                )
                continue
            # SUBSCRIBE_ERROR back (1 trip), the advertised wait (rounded
            # up to the wire's whole milliseconds), the retry (1 trip,
            # honored by the reservation), SUBSCRIBE_OK back (1 trip).
            error_at_client = arrival + delay
            retry_sent = error_at_client + decision.retry_after_ms / 1000.0
            retry_arrival = retry_sent + delay
            honored = controller.decide(index, retry_arrival, 0)
            if not honored.admitted:  # pragma: no cover - reservation contract
                raise AssertionError("reserved retry must be admitted")
            joins.append(
                StormJoin(
                    index=index,
                    joined_at=joined_at,
                    first_arrival=arrival,
                    slot=arrival + decision.retry_after,
                    admitted_at=retry_arrival + delay,
                )
            )
        return joins

    # ----------------------------------------------------------------- summary
    def completion_time(self) -> float:
        """Seconds from storm start to the last SUBSCRIBE_OK at a client."""
        return max(join.admitted_at for join in self.joins()) - self.start

    def rejections(self) -> int:
        """How many joins get rejected once (the reservation path)."""
        return sum(1 for join in self.joins() if join.rejected)

    def join_latencies(self) -> list[float]:
        """Per-join latencies in join order."""
        return [join.join_latency for join in self.joins()]

    def p99_join_latency(self) -> float:
        """Nearest-rank 99th-percentile join latency."""
        return percentile(self.join_latencies(), 0.99)

    def drain_time_lower_bound(self) -> float:
        """The token-bucket drain floor: ``(count - depth) / rate``.

        The analytic sanity anchor the replay must dominate: admitting
        ``count`` subscribers through a bucket that starts ``depth`` deep
        and refills at ``rate`` per second takes at least this long,
        before any propagation or handshake cost.
        """
        rate = self.policy.subscribe_rate
        excess = self.count - self.policy.bucket_depth
        if excess <= 0:
            return 0.0
        return excess / rate


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (the E16 reporting convention)."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1]: {fraction}")
    ordered = sorted(values)
    rank = math.ceil(fraction * len(ordered))
    return ordered[rank - 1]
