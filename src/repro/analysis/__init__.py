"""Analytical models for the paper's quantitative arguments (§5).

These closed-form models accompany the simulations: every experiment both
*measures* its quantity on the simulated protocol stack and *predicts* it
with the corresponding model here, so discrepancies are caught by tests.

* :mod:`repro.analysis.latency_model` — round-trip accounting for query
  latency over classic DNS and DNS-over-MoQT with each of the §5.2
  optimisations;
* :mod:`repro.analysis.staleness` — how long a resolver serves an outdated
  record under TTL-based caching vs. pub/sub push;
* :mod:`repro.analysis.traffic` — upstream request and update-push message
  counts for polling vs. pub/sub;
* :mod:`repro.analysis.usecases` — the §5.3 back-of-envelope estimates
  (Dynamic DNS, CDN load balancing, deep space);
* :mod:`repro.analysis.state_overhead` — per-endpoint state accounting for
  the §5.1 discussion;
* :mod:`repro.analysis.fanout` — unicast vs. relay-tree per-tier update
  traffic for the §3 fan-out argument;
* :mod:`repro.analysis.churn` — re-attach latency and FETCH gap-recovery
  bounds for relay failover under a live tree;
* :mod:`repro.analysis.detection` — in-band failure-detection latency
  (QUIC PTO-suspect and idle-timeout paths) stacked on the re-attach floor;
* :mod:`repro.analysis.promotion` — origin-promotion latency for the
  replicated origin: detection + election + the tier-0 re-attach floor.
"""

from repro.analysis.latency_model import (
    TransportScenario,
    lookup_round_trips,
    lookup_latency,
    recursive_lookup_latency,
    LatencyBreakdown,
)
from repro.analysis.staleness import (
    worst_case_staleness,
    expected_staleness_polling,
    pubsub_staleness,
    staleness_reduction_factor,
)
from repro.analysis.traffic import (
    polling_requests,
    pubsub_messages,
    traffic_comparison,
    TrafficComparison,
)
from repro.analysis.usecases import (
    ddns_update_traffic_bps,
    cdn_stub_traffic_bps,
    deep_space_update_traffic_bps,
    UseCaseEstimate,
)
from repro.analysis.state_overhead import (
    StateModel,
    endpoint_state_bytes,
    state_comparison,
)
from repro.analysis.fanout import (
    FanoutModel,
    fanout_model,
    unicast_origin_messages,
    tier_ingress_messages,
    relative_deviation,
)
from repro.analysis.churn import (
    RecoveryModel,
    recovery_model,
    expected_gap_objects,
)
from repro.analysis.detection import (
    DetectionModel,
    give_up_latency,
    pto_fire_offsets,
    suspect_latency,
)
from repro.analysis.promotion import (
    ELECTION_LATENCY,
    PromotionModel,
    promotion_model,
)

__all__ = [
    "TransportScenario",
    "lookup_round_trips",
    "lookup_latency",
    "recursive_lookup_latency",
    "LatencyBreakdown",
    "worst_case_staleness",
    "expected_staleness_polling",
    "pubsub_staleness",
    "staleness_reduction_factor",
    "polling_requests",
    "pubsub_messages",
    "traffic_comparison",
    "TrafficComparison",
    "ddns_update_traffic_bps",
    "cdn_stub_traffic_bps",
    "deep_space_update_traffic_bps",
    "UseCaseEstimate",
    "StateModel",
    "endpoint_state_bytes",
    "state_comparison",
    "FanoutModel",
    "fanout_model",
    "unicast_origin_messages",
    "tier_ingress_messages",
    "relative_deviation",
    "RecoveryModel",
    "recovery_model",
    "expected_gap_objects",
    "DetectionModel",
    "give_up_latency",
    "pto_fire_offsets",
    "suspect_latency",
    "ELECTION_LATENCY",
    "PromotionModel",
    "promotion_model",
]
