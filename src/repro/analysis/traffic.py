"""Upstream traffic: polling requests vs. pub/sub pushes (§2 and §5).

With request/response DNS, every interested resolver re-requests a record
once per TTL (when continuously interested), regardless of whether the record
changed.  With pub/sub, the authoritative server pushes one object per
*change* per subscriber, and no requests flow at all after the initial
subscription.  The crossover therefore depends on the ratio of the change
interval to the TTL and on the number of interested resolvers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def polling_requests(duration: float, ttl: float, resolvers: int = 1) -> float:
    """Number of upstream requests under TTL-driven polling.

    Each continuously interested resolver issues ``ceil(duration / ttl)``
    requests over the period (the first lookup plus one per expiry).
    """
    if duration < 0 or ttl <= 0 or resolvers < 0:
        raise ValueError("duration >= 0, ttl > 0 and resolvers >= 0 required")
    return resolvers * math.ceil(duration / ttl)


def pubsub_messages(
    duration: float, change_interval: float, resolvers: int = 1, include_setup: bool = True
) -> float:
    """Number of messages under pub/sub for the same period.

    One push per record change per subscribed resolver, plus (optionally) the
    initial subscribe+fetch exchange per resolver.
    """
    if duration < 0 or resolvers < 0:
        raise ValueError("duration >= 0 and resolvers >= 0 required")
    if change_interval <= 0:
        changes = 0.0
    else:
        changes = math.floor(duration / change_interval)
    setup = resolvers if include_setup else 0
    return resolvers * changes + setup


@dataclass(frozen=True)
class TrafficComparison:
    """Polling vs. pub/sub message counts for one record and period."""

    duration: float
    ttl: float
    change_interval: float
    resolvers: int
    polling: float
    pubsub: float

    @property
    def reduction_factor(self) -> float:
        """Polling messages divided by pub/sub messages (>1 favours pub/sub)."""
        if self.pubsub <= 0:
            return float("inf")
        return self.polling / self.pubsub

    @property
    def pubsub_wins(self) -> bool:
        """Whether pub/sub needs fewer messages over the period."""
        return self.pubsub < self.polling


def traffic_comparison(
    duration: float,
    ttl: float,
    change_interval: float,
    resolvers: int = 1,
    include_setup: bool = True,
) -> TrafficComparison:
    """Compare polling and pub/sub message counts for one record."""
    return TrafficComparison(
        duration=duration,
        ttl=ttl,
        change_interval=change_interval,
        resolvers=resolvers,
        polling=polling_requests(duration, ttl, resolvers),
        pubsub=pubsub_messages(duration, change_interval, resolvers, include_setup),
    )


def crossover_change_interval(ttl: float) -> float:
    """The change interval at which pub/sub and polling send equal traffic.

    Ignoring the one-off subscription setup, pub/sub sends fewer messages as
    soon as the record changes less often than once per TTL; the crossover is
    therefore at ``change_interval == ttl``.
    """
    if ttl <= 0:
        raise ValueError(f"ttl must be positive: {ttl}")
    return ttl
