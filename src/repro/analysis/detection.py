"""Closed-form model of in-band failure-detection latency (E13).

A crashed relay never announces anything: the only signals an orphan's
transport gives are the two QUIC timers, and which one fires first depends
entirely on whether the connection has ack-eliciting data outstanding when
the peer dies:

* **PTO-suspect path** — connections that keep sending (relay uplinks with
  keepalive PINGs enabled) notice through consecutive probe timeouts.  The
  first unacknowledged send arms the probe timer; with doubling backoff the
  n-th consecutive timeout fires ``pto * (2**n - 1)`` after that send, so
  suspicion (n = :data:`repro.quic.connection.QuicConnection.LIVENESS_SUSPECT_AFTER`)
  costs ``3 x pto`` at the default threshold of 2.  The total detection
  latency adds the phase of the keepalive schedule: the crash has to wait
  for the next PING before anything can go unacknowledged.
* **Idle-timeout path** — connections with nothing in flight (a subscriber
  that only ever receives) have no probe timer running; the idle timer,
  pushed back by every packet, runs out exactly ``idle_timeout`` after the
  last activity.  Detection latency is therefore the idle deadline at crash
  time minus the crash time.

Failover stacks on top: once detected, re-attaching through a new parent
costs the 3-RTT floor (QUIC handshake, MoQT SETUP, SUBSCRIBE) modelled by
:mod:`repro.analysis.churn` — so the subscriber-visible outage is
``detection + 3 x RTT`` (2 RTT with ALPN version negotiation), and the gap
that the recovery FETCH must fill is bounded by the publish rate times that
window.

The measured counterpart is :mod:`repro.experiments.failure_detection`,
which crashes relays silently (zero control-plane kill signals) under a
live CDN tree and compares the measured detection latency of both paths
against this model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.churn import RecoveryModel, recovery_model

#: The transport's defaults, restated here as independent closed-form
#: constants (this package deliberately never imports the implementation,
#: so model/implementation drift is caught by tests, not hidden by an
#: alias): suspect after 2 consecutive PTOs, backoff capped at 2**3 probe
#: intervals, give-up after 8 consecutive timeouts — matching
#: ``QuicConnection.LIVENESS_SUSPECT_AFTER`` /
#: ``PTO_BACKOFF_EXPONENT_CAP`` / ``MAX_CONSECUTIVE_LOSS_TIMEOUTS``.
DEFAULT_SUSPECT_AFTER = 2
DEFAULT_BACKOFF_CAP = 3
DEFAULT_MAX_TIMEOUTS = 8


def pto_fire_offsets(
    pto: float,
    count: int,
    backoff_cap: int = DEFAULT_BACKOFF_CAP,
) -> tuple[float, ...]:
    """Offsets (after the unacknowledged send) of consecutive PTO firings.

    The first probe fires ``pto`` after the send; each later one waits twice
    the previous interval, capped at ``2**backoff_cap`` probe intervals.
    """
    if pto <= 0:
        raise ValueError(f"probe timeout must be positive: {pto}")
    if count < 1:
        raise ValueError(f"need at least one firing: {count}")
    offsets: list[float] = []
    elapsed = 0.0
    for n in range(count):
        elapsed += pto * (2.0 ** min(n, backoff_cap))
        offsets.append(elapsed)
    return tuple(offsets)


def suspect_latency(
    pto: float,
    suspect_after: int = DEFAULT_SUSPECT_AFTER,
    backoff_cap: int = DEFAULT_BACKOFF_CAP,
) -> float:
    """Seconds from an unacknowledged send to the *suspect* transition.

    ``pto * (2**n - 1)`` below the backoff cap — ``3 x pto`` at the default
    threshold of two consecutive probe timeouts.
    """
    return pto_fire_offsets(pto, suspect_after, backoff_cap)[-1]


def give_up_latency(
    pto: float,
    max_timeouts: int = DEFAULT_MAX_TIMEOUTS,
    backoff_cap: int = DEFAULT_BACKOFF_CAP,
) -> float:
    """Seconds from an unacknowledged send to the PTO give-up (*dead*).

    The connection abandons the peer on the ``max_timeouts + 1``-th
    consecutive firing.
    """
    return pto_fire_offsets(pto, max_timeouts + 1, backoff_cap)[-1]


@dataclass(frozen=True)
class DetectionModel:
    """Predicted in-band detection latency for one orphan connection.

    Instantiated from the orphan's transport state *at crash time* — the
    experiment reads the live connection's probe timeout and timer
    deadlines just before injecting the fault, then checks the measured
    detection latency against these closed forms.

    Attributes
    ----------
    crashed_at:
        Virtual time the peer silently crashed.
    probe_timeout:
        The connection's probe-timeout base interval at crash time
        (``max(2.5 x smoothed_rtt, 0.02)``).
    next_send_at:
        When the orphan will next send ack-eliciting data (the keepalive
        deadline for a PING-driven uplink); None when it never will.
    idle_deadline:
        The idle timer's absolute deadline at crash time.  Only final for
        a connection that never sends again: every later transmission
        (the keepalive PING and each PTO retransmission) restarts the
        idle timer, which the detection walk accounts for.
    suspect_after:
        Consecutive PTOs before the suspect transition.
    idle_timeout:
        The connection's ``max_idle_timeout`` — needed to track the idle
        deadline as sends keep restarting it.  When None, probing is
        assumed to keep the connection from idling (exact whenever the
        idle timeout exceeds the largest backoff gap).
    """

    crashed_at: float
    probe_timeout: float
    next_send_at: float | None
    idle_deadline: float
    suspect_after: int = DEFAULT_SUSPECT_AFTER
    backoff_cap: int = DEFAULT_BACKOFF_CAP
    idle_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.idle_deadline < self.crashed_at:
            raise ValueError("idle deadline predates the crash")
        if self.next_send_at is not None and self.next_send_at < self.crashed_at:
            raise ValueError("next send predates the crash")
        if self.idle_timeout is not None and self.idle_timeout <= 0:
            raise ValueError(f"idle timeout must be positive: {self.idle_timeout}")

    @property
    def pto_suspect_at(self) -> float | None:
        """Absolute time of the suspect transition (None without sends)."""
        if self.next_send_at is None:
            return None
        return self.next_send_at + suspect_latency(
            self.probe_timeout, self.suspect_after, self.backoff_cap
        )

    @property
    def idle_dead_at(self) -> float:
        """When the idle timer fires if nothing is ever sent again."""
        return self.idle_deadline

    def _detection(self) -> tuple[float, str]:
        """Walk the send/backoff schedule to the first in-band signal.

        The crash-time idle deadline only holds until the next send: the
        keepalive PING and every PTO retransmission restart the idle
        timer, so past that point the idle path can fire only inside a
        backoff gap longer than the idle timeout.
        """
        if self.next_send_at is None or self.idle_dead_at <= self.next_send_at:
            return self.idle_dead_at, "idle-timeout"
        last_send = self.next_send_at
        for offset in pto_fire_offsets(
            self.probe_timeout, self.suspect_after, self.backoff_cap
        ):
            fire_at = self.next_send_at + offset
            if (
                self.idle_timeout is not None
                and last_send + self.idle_timeout < fire_at
            ):
                return last_send + self.idle_timeout, "idle-timeout"
            last_send = fire_at
        return last_send, "pto-suspect"

    @property
    def detected_at(self) -> float:
        """Whichever in-band signal fires first."""
        return self._detection()[0]

    @property
    def path(self) -> str:
        """Which signal wins: ``"pto-suspect"`` or ``"idle-timeout"``."""
        return self._detection()[1]

    @property
    def detection_latency(self) -> float:
        """Seconds from the silent crash to the first in-band signal."""
        return self.detected_at - self.crashed_at

    def failover_latency(
        self, link_delay: float, alpn_version_negotiation: bool = False
    ) -> float:
        """Detection stacked on the 3-RTT re-attach floor of :mod:`~repro.analysis.churn`."""
        return self.detection_latency + self.reattach_model(
            link_delay, alpn_version_negotiation
        ).reattach_latency

    @staticmethod
    def reattach_model(
        link_delay: float, alpn_version_negotiation: bool = False
    ) -> RecoveryModel:
        """The re-attach floor an orphan pays after detection."""
        return recovery_model(link_delay, alpn_version_negotiation)
