"""Record staleness: TTL-bounded caching vs. pub/sub push (§2 and §5).

The paper's central benefit claim is that pub/sub "can considerably reduce
the time it takes for a resolver to receive the latest version of a record".
With TTL-based caching, a resolver keeps serving the old version until its
cached copy expires; in the worst case a record is as old as *the number of
caches in the lookup path multiplied by the TTL* (§1).  With pub/sub, a new
version reaches every subscribed resolver after one propagation delay per
hop.
"""

from __future__ import annotations


def worst_case_staleness(ttl: float, cache_layers: int = 1) -> float:
    """Worst-case age of a record under TTL caching (§1).

    Each cache layer can have refreshed its copy just before the upstream
    copy changed, so the ages add up: ``cache_layers * ttl``.
    """
    if ttl < 0:
        raise ValueError(f"TTL must be non-negative: {ttl}")
    if cache_layers < 1:
        raise ValueError(f"cache_layers must be at least 1: {cache_layers}")
    return cache_layers * ttl


def expected_staleness_polling(ttl: float, cache_layers: int = 1) -> float:
    """Expected time until a caching resolver learns about a change.

    A change happens at a time uniformly distributed within the resolver's
    current TTL window, so the resolver re-fetches after ``ttl / 2`` on
    average; with several independent cache layers the expected residual
    waits add up layer by layer.
    """
    if ttl < 0:
        raise ValueError(f"TTL must be non-negative: {ttl}")
    if cache_layers < 1:
        raise ValueError(f"cache_layers must be at least 1: {cache_layers}")
    return cache_layers * ttl / 2.0


def pubsub_staleness(propagation_delays: list[float]) -> float:
    """Time until a subscribed resolver has the new version.

    The update is pushed hop by hop (authoritative → recursive → stub), so
    the staleness equals the sum of the one-way delays on the path.
    """
    if any(delay < 0 for delay in propagation_delays):
        raise ValueError("propagation delays must be non-negative")
    return sum(propagation_delays)


def staleness_reduction_factor(
    ttl: float, propagation_delays: list[float], cache_layers: int = 1
) -> float:
    """How much faster pub/sub delivers the latest version than polling.

    Defined as expected polling staleness divided by pub/sub staleness; a
    factor of 100 means a subscribed resolver is up to date two orders of
    magnitude sooner.
    """
    push = pubsub_staleness(propagation_delays)
    poll = expected_staleness_polling(ttl, cache_layers)
    if push <= 0:
        return float("inf")
    return poll / push
