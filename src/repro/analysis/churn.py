"""Closed-form recovery model for relay failover (E12).

When a relay dies mid-stream, every orphan (child relay or subscriber)
re-homes by opening a fresh session to its new parent and re-subscribing.
On the simulated stack that costs a fixed number of round trips on the
orphan <-> new-parent link:

1. QUIC handshake — 1 RTT;
2. MoQT session setup (CLIENT_SETUP / SERVER_SETUP) — 1 RTT, elided when
   version negotiation rides the QUIC/TLS ALPN (§5.2's optimisation);
3. SUBSCRIBE / SUBSCRIBE_OK — 1 RTT.

So re-attach latency is ``3 x RTT`` (or ``2 x RTT`` with ALPN version
negotiation), independent of tree size — which is what makes relay churn
tolerable at CDN scale: killing a mid-tier relay under 1,000 subscribers
costs each orphaned edge the same three metro round trips it would cost
under ten.

Gap recovery adds one more round trip: the FETCH against the new parent's
cache is issued once SUBSCRIBE_OK arrives, and (for a warm cache) its
answer completes one RTT later.  A cold cache forwards the FETCH one tier
up, adding the upstream RTT.  The number of objects the FETCH must return
is bounded by the publish rate times the outage window.

The measured counterpart is :mod:`repro.experiments.relay_churn`, which
kills relays under a live 1,000-subscriber CDN tree and compares per-tier
re-attach latencies against this model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Round trips consumed before the re-SUBSCRIBE can be sent.
QUIC_HANDSHAKE_RTTS = 1
MOQT_SETUP_RTTS = 1
SUBSCRIBE_RTTS = 1


@dataclass(frozen=True)
class RecoveryModel:
    """Re-attach and gap-recovery latency for one orphan class.

    Attributes
    ----------
    link_delay:
        One-way delay of the orphan <-> new-parent link, in seconds.
    alpn_version_negotiation:
        Whether MoQT version negotiation rides the QUIC/TLS ALPN, removing
        the dedicated SETUP round trip.
    """

    link_delay: float
    alpn_version_negotiation: bool = False

    def __post_init__(self) -> None:
        if self.link_delay < 0:
            raise ValueError(f"link delay must be non-negative: {self.link_delay}")

    @property
    def rtt(self) -> float:
        """Round-trip time on the orphan <-> new-parent link."""
        return 2.0 * self.link_delay

    @property
    def setup_round_trips(self) -> int:
        """Round trips before the orphan can re-SUBSCRIBE."""
        if self.alpn_version_negotiation:
            return QUIC_HANDSHAKE_RTTS
        return QUIC_HANDSHAKE_RTTS + MOQT_SETUP_RTTS

    @property
    def reattach_round_trips(self) -> int:
        """Round trips until the new parent has accepted the subscription."""
        return self.setup_round_trips + SUBSCRIBE_RTTS

    @property
    def reattach_latency(self) -> float:
        """Seconds from failover start to an accepted re-subscription."""
        return self.reattach_round_trips * self.rtt

    def gap_fill_latency(self, upstream_rtt: float = 0.0) -> float:
        """Seconds until the gap FETCH has been answered.

        The FETCH goes out when SUBSCRIBE_OK arrives and costs one more
        RTT against a warm cache; ``upstream_rtt`` accounts for a cold
        cache forwarding it one tier up.
        """
        return self.reattach_latency + self.rtt + upstream_rtt


def recovery_model(link_delay: float, alpn_version_negotiation: bool = False) -> RecoveryModel:
    """Model an orphan re-homing over a link with the given one-way delay."""
    return RecoveryModel(link_delay=link_delay, alpn_version_negotiation=alpn_version_negotiation)


def expected_gap_objects(outage: float, update_interval: float) -> int:
    """Upper bound on objects published while an orphan was detached.

    ``outage`` is the window between losing the old parent and the first
    live delivery from the new one (re-attach latency plus any in-flight
    slack); with updates every ``update_interval`` seconds at most
    ``ceil(outage / update_interval)`` objects need recovering via FETCH.
    """
    if outage < 0 or update_interval <= 0:
        raise ValueError("outage must be >= 0 and update_interval > 0")
    return math.ceil(outage / update_interval)
