"""Round-trip accounting for query latency (§5.2).

The paper's argument is purely in round trips:

* classic DNS over UDP resolves a name from an authoritative server in a
  single round trip;
* DNS over MoQT with no existing connection needs at least three — one for
  the QUIC handshake, one for the MoQT session setup, one for the
  subscription/fetch;
* reusing an established connection and session brings it back to one;
* QUIC 0-RTT removes the connection round trip (two remain with today's
  MoQT);
* moving MoQT version negotiation into ALPN (a future protocol change)
  combined with 0-RTT brings even the first contact down to one round trip.

These functions turn round-trip counts into latencies for the hop RTTs an
experiment uses, including the full recursive chain a stub resolver
experiences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TransportScenario(enum.Enum):
    """The lookup scenarios compared in §5.2."""

    UDP = "udp"
    MOQT_COLD = "moqt-cold"
    MOQT_REUSED_SESSION = "moqt-reused"
    MOQT_0RTT = "moqt-0rtt"
    MOQT_0RTT_ALPN = "moqt-0rtt-alpn"


#: Round trips from "resolver decides to ask a server" to "answer received".
_ROUND_TRIPS = {
    TransportScenario.UDP: 1.0,
    TransportScenario.MOQT_COLD: 3.0,
    TransportScenario.MOQT_REUSED_SESSION: 1.0,
    TransportScenario.MOQT_0RTT: 2.0,
    TransportScenario.MOQT_0RTT_ALPN: 1.0,
}


def lookup_round_trips(scenario: TransportScenario) -> float:
    """Round trips needed for one lookup to one server in a scenario."""
    return _ROUND_TRIPS[scenario]


def lookup_latency(scenario: TransportScenario, rtt: float) -> float:
    """Latency of one lookup to one server over a link with the given RTT."""
    if rtt < 0:
        raise ValueError(f"RTT must be non-negative: {rtt}")
    return lookup_round_trips(scenario) * rtt


@dataclass(frozen=True)
class LatencyBreakdown:
    """Latency of a full stub-observed lookup, split by segment."""

    stub_to_recursive: float
    recursive_to_authorities: float

    @property
    def total(self) -> float:
        """Total stub-observed latency."""
        return self.stub_to_recursive + self.recursive_to_authorities


def recursive_lookup_latency(
    scenario: TransportScenario,
    stub_rtt: float,
    upstream_rtts: list[float],
    recursive_cache_hit: bool = False,
    stub_scenario: TransportScenario | None = None,
) -> LatencyBreakdown:
    """Stub-observed latency of a recursive lookup.

    Parameters
    ----------
    scenario:
        Transport scenario between the recursive resolver and each upstream
        authority (root, TLD, authoritative, ...).
    stub_rtt:
        RTT between the stub (or forwarder) and the recursive resolver.
    upstream_rtts:
        RTTs between the recursive resolver and each authority it must
        contact, in resolution order; empty when the answer is cached.
    recursive_cache_hit:
        When True the upstream segment is skipped entirely.
    stub_scenario:
        Transport scenario on the stub-to-recursive hop; defaults to the same
        scenario as upstream.
    """
    stub = stub_scenario if stub_scenario is not None else scenario
    downstream = lookup_latency(stub, stub_rtt)
    if recursive_cache_hit:
        return LatencyBreakdown(stub_to_recursive=downstream, recursive_to_authorities=0.0)
    upstream = sum(lookup_latency(scenario, rtt) for rtt in upstream_rtts)
    return LatencyBreakdown(stub_to_recursive=downstream, recursive_to_authorities=upstream)


def scenario_table(rtt: float, levels: int = 3) -> dict[str, float]:
    """First-lookup latency of every scenario for a uniform per-hop RTT.

    ``levels`` is the number of authorities contacted (root, TLD,
    authoritative = 3).  Used by the §5.2 experiment to print the comparison
    table next to the simulated measurements.
    """
    table = {}
    for scenario in TransportScenario:
        breakdown = recursive_lookup_latency(scenario, rtt, [rtt] * levels)
        table[scenario.value] = breakdown.total
    return table
