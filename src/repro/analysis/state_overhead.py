"""Per-endpoint state accounting (§5.1).

DNS over UDP is stateless; DNS over MoQT requires each endpoint to hold a
QUIC connection, a MoQT session and one subscription per tracked DNS
question.  The model below turns those counts into approximate memory
figures so the state-overhead experiment can compare policies; the byte
constants are rough (order-of-magnitude) but configurable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StateModel:
    """Approximate per-item state sizes in bytes."""

    bytes_per_connection: int = 8_192
    bytes_per_session: int = 1_024
    bytes_per_subscription: int = 256
    bytes_per_cache_entry: int = 192


def endpoint_state_bytes(
    connections: int,
    sessions: int,
    subscriptions: int,
    cache_entries: int = 0,
    model: StateModel | None = None,
) -> int:
    """Approximate state held by one endpoint."""
    sizes = model if model is not None else StateModel()
    if min(connections, sessions, subscriptions, cache_entries) < 0:
        raise ValueError("state counts must be non-negative")
    return (
        connections * sizes.bytes_per_connection
        + sessions * sizes.bytes_per_session
        + subscriptions * sizes.bytes_per_subscription
        + cache_entries * sizes.bytes_per_cache_entry
    )


def state_comparison(
    tracked_questions: int,
    upstream_servers: int,
    model: StateModel | None = None,
) -> dict[str, int]:
    """State of a resolver under classic DNS vs. DNS over MoQT.

    Classic DNS keeps only cache entries; DNS over MoQT additionally keeps a
    connection and session per upstream server plus a subscription per
    tracked question (§5.1).
    """
    sizes = model if model is not None else StateModel()
    classic = endpoint_state_bytes(0, 0, 0, cache_entries=tracked_questions, model=sizes)
    moqt = endpoint_state_bytes(
        connections=upstream_servers,
        sessions=upstream_servers,
        subscriptions=tracked_questions,
        cache_entries=tracked_questions,
        model=sizes,
    )
    return {
        "classic_bytes": classic,
        "moqt_bytes": moqt,
        "extra_bytes": moqt - classic,
        "tracked_questions": tracked_questions,
        "upstream_servers": upstream_servers,
    }
