"""The §5.3 back-of-envelope use-case estimates.

The paper works through three deployment scenarios:

* **Dynamic DNS** — 100 M users, 1 000 interested parties each, 5 MoQ relays
  on the path, 2 IP address updates per day, 300 B per update →
  ≈ 5.5 Gbit/s of globally distributed application-layer update traffic
  ("negligible at global scale").
* **CDN load balancing** — a stub resolver subscribed to 1 000 domains, all
  updated at the lowest observed clustered TTL of 10 s with 300 B per update
  → ≈ 240 kbit/s of downstream update traffic per stub.
* **Deep space** — the same push mechanism with throttling of
  high-update-rate domains, since load-balancing freshness is pointless at
  interplanetary RTTs.

The estimators below reproduce those numbers exactly and expose every input
so the experiments can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class UseCaseEstimate:
    """A named traffic estimate with its inputs."""

    name: str
    bits_per_second: float
    inputs: tuple[tuple[str, float], ...]

    @property
    def gbps(self) -> float:
        """The estimate in gigabits per second."""
        return self.bits_per_second / 1e9

    @property
    def kbps(self) -> float:
        """The estimate in kilobits per second."""
        return self.bits_per_second / 1e3

    def as_dict(self) -> dict[str, float]:
        """Inputs plus the result as a flat dictionary."""
        result = dict(self.inputs)
        result["bits_per_second"] = self.bits_per_second
        return result


def ddns_update_traffic_bps(
    users: float = 100e6,
    interested_per_user: float = 1_000.0,
    relay_hops: float = 1.0,
    updates_per_day: float = 2.0,
    update_size_bytes: float = 300.0,
) -> UseCaseEstimate:
    """Global application-layer update traffic for the Dynamic DNS scenario.

    The paper's 5.5 Gbit/s figure counts each update delivered once per
    interested party (100 M users x 2 updates/day x 1 000 interested x 300 B
    x 8 / 86 400 s ≈ 5.5 Gbit/s); the 5 MoQ relays describe the distribution
    path but do not multiply the delivered volume in that arithmetic, so
    ``relay_hops`` defaults to 1.  Set it higher to count every relay-hop
    transmission instead.
    """
    updates_per_second = users * updates_per_day / SECONDS_PER_DAY
    bits_per_update_delivery = update_size_bytes * 8.0
    bits_per_second = (
        updates_per_second * interested_per_user * relay_hops * bits_per_update_delivery
    )
    return UseCaseEstimate(
        name="ddns-global-update-traffic",
        bits_per_second=bits_per_second,
        inputs=(
            ("users", users),
            ("interested_per_user", interested_per_user),
            ("relay_hops", relay_hops),
            ("updates_per_day", updates_per_day),
            ("update_size_bytes", update_size_bytes),
        ),
    )


def cdn_stub_traffic_bps(
    subscribed_domains: float = 1_000.0,
    update_interval_seconds: float = 10.0,
    update_size_bytes: float = 300.0,
) -> UseCaseEstimate:
    """Downstream update traffic at one stub for the CDN scenario.

    Conservatively assumes every subscribed domain is updated once per
    ``update_interval_seconds`` (the lowest observed clustered TTL).
    """
    if update_interval_seconds <= 0:
        raise ValueError("update interval must be positive")
    updates_per_second = subscribed_domains / update_interval_seconds
    bits_per_second = updates_per_second * update_size_bytes * 8.0
    return UseCaseEstimate(
        name="cdn-stub-update-traffic",
        bits_per_second=bits_per_second,
        inputs=(
            ("subscribed_domains", subscribed_domains),
            ("update_interval_seconds", update_interval_seconds),
            ("update_size_bytes", update_size_bytes),
        ),
    )


def deep_space_update_traffic_bps(
    subscribed_domains: float = 10_000.0,
    update_interval_seconds: float = 3_600.0,
    update_size_bytes: float = 300.0,
    throttled_fraction: float = 0.9,
    throttled_interval_seconds: float = 86_400.0,
) -> UseCaseEstimate:
    """Update traffic towards a deep-space site with throttling.

    A fraction of domains (those with high update rates, e.g. CDN load
    balancing) is throttled down to a much longer forwarding interval, as
    §5.3 suggests, since choosing the closest CDN node is meaningless at
    interplanetary distances.
    """
    if not 0.0 <= throttled_fraction <= 1.0:
        raise ValueError("throttled_fraction must be within [0, 1]")
    unthrottled = subscribed_domains * (1.0 - throttled_fraction) / update_interval_seconds
    throttled = subscribed_domains * throttled_fraction / throttled_interval_seconds
    bits_per_second = (unthrottled + throttled) * update_size_bytes * 8.0
    return UseCaseEstimate(
        name="deep-space-update-traffic",
        bits_per_second=bits_per_second,
        inputs=(
            ("subscribed_domains", subscribed_domains),
            ("update_interval_seconds", update_interval_seconds),
            ("update_size_bytes", update_size_bytes),
            ("throttled_fraction", throttled_fraction),
            ("throttled_interval_seconds", throttled_interval_seconds),
        ),
    )
