"""Closed-form delivery latency on bandwidth-constrained relay paths (E15).

With finite per-tier bandwidths, every fan-out hop adds a *serialisation*
term ``wire_bytes * 8 / bandwidth`` on top of its propagation delay.  The
E15 experiment (:mod:`repro.experiments.constrained_tiers`) sweeps tier
bandwidths downwards and charts the knee where the serialisation sum
overtakes the propagation sum — the regime boundary the HotNets paper's
latency argument lives on one side of.

The model here is *exact*, not approximate: relays forward synchronously at
arrival, and as long as each update's per-hop serialisation is shorter than
the push interval the link FIFO is always idle when an update arrives, so
the simulator computes an update's delivery time as the literal left-to-right
fold

    t = push_time
    for each hop:  t = t + wire_bytes * 8 / bandwidth;  t = t + delay

:meth:`ConstrainedPathModel.delivery_latency` replays that fold with the
same float operations in the same order, which is why the experiment can
gate on bit-exact equality between measured and modelled latency rather
than a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HopSpec:
    """One fan-out hop: propagation delay plus optional bandwidth."""

    delay: float
    bandwidth: float | None = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative: {self.delay}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth}")


@dataclass(frozen=True)
class ConstrainedPathModel:
    """Exact per-update delivery latency along a chain of constrained hops.

    ``wire_bytes`` is the on-the-wire size of one pushed update on every hop
    (identical per hop — the relays re-encode each object into the same
    framing, which E11's exact tier tables pin), calibrated from a minimal
    run just like the fan-out byte model.
    """

    hops: tuple[HopSpec, ...]
    wire_bytes: int

    def __post_init__(self) -> None:
        if not self.hops:
            raise ValueError("at least one hop is required")
        if self.wire_bytes <= 0:
            raise ValueError(f"wire_bytes must be positive: {self.wire_bytes}")

    # -------------------------------------------------------------- latency
    def delivery_time(self, push_time: float) -> float:
        """Absolute delivery time of an update pushed at ``push_time``,
        bit-exact to the simulator.

        The fold mirrors :meth:`repro.netsim.link.Link.transmit` hop by hop:
        an idle FIFO starts serialising at the forwarding instant, so each
        hop contributes ``size * 8 / bandwidth`` then ``delay``, in that
        order, accumulated left to right.  Float addition is not
        associative, so exactness only holds for *absolute* times computed
        from the same starting value the simulator used — which is why the
        experiment gates on ``delivered_at == delivery_time(push_time)``
        rather than comparing latencies.
        """
        t = push_time
        bits = self.wire_bytes * 8
        for hop in self.hops:
            if hop.bandwidth is not None:
                t = t + bits / hop.bandwidth
            t = t + hop.delay
        return t

    def delivery_latency(self) -> float:
        """Push-to-delivery latency of one update pushed at time zero."""
        return self.delivery_time(0.0)

    @property
    def propagation_seconds(self) -> float:
        """Sum of the hops' propagation delays (the bandwidth-free floor)."""
        total = 0.0
        for hop in self.hops:
            total = total + hop.delay
        return total

    @property
    def serialisation_seconds(self) -> float:
        """Sum of the hops' serialisation delays for one update."""
        total = 0.0
        bits = self.wire_bytes * 8
        for hop in self.hops:
            if hop.bandwidth is not None:
                total = total + bits / hop.bandwidth
        return total

    @property
    def serialisation_dominates(self) -> bool:
        """Whether serialisation has overtaken propagation on this path."""
        return self.serialisation_seconds >= self.propagation_seconds

    def no_queueing_below(self, push_interval: float) -> bool:
        """Whether the exactness precondition holds: every hop drains one
        update faster than the push interval, so the FIFO never backlogs."""
        bits = self.wire_bytes * 8
        return all(
            hop.bandwidth is None or bits / hop.bandwidth < push_interval
            for hop in self.hops
        )


def knee_index(models: "list[ConstrainedPathModel] | tuple[ConstrainedPathModel, ...]") -> int:
    """First index of a descending-bandwidth sweep where serialisation
    dominates propagation; ``-1`` when it never does."""
    for index, model in enumerate(models):
        if model.serialisation_dominates:
            return index
    return -1
