"""Closed-form model of origin promotion latency (E14).

When the *origin* itself dies silently, recovery is the composition of
three phases, each already modelled in this package:

1. **Detection** — a tier-0 relay's keepalive'd uplink notices the dead
   active through consecutive probe timeouts (or, for a send-less uplink,
   an idle expiry): :class:`repro.analysis.detection.DetectionModel`.
2. **Election** — the first detector's report deposes the active and
   promotes the lowest-index alive standby.  The election is a
   deterministic local computation at the topology controller — no ballots
   cross the wire, no quorum is awaited — so on the simulated stack it
   costs **zero** virtual time.  The term is kept explicit (rather than
   folded away) because any distributed election — leases, a consensus
   round — would land exactly here, and the model should name the seam.
3. **Re-attach** — every tier-0 relay switches its uplink to the promoted
   standby over the pre-established link, paying the same 3-RTT floor
   (QUIC handshake, MoQT SETUP, SUBSCRIBE — 2 RTT with ALPN version
   negotiation) as any relay-tier failover:
   :class:`repro.analysis.churn.RecoveryModel`.

So the subscriber-visible promotion latency is ``detection + election +
3 x RTT`` on the origin <-> tier-0 link, independent of the audience size —
the whole population below tier 0 rides along untouched, which is what
makes a replicated origin free at CDN scale.  The gap the tier-0 relays'
FETCH must fill against the standby's warm cache is bounded by the publish
rate times that window (:func:`repro.analysis.churn.expected_gap_objects`).

The measured counterpart is :mod:`repro.experiments.origin_failover`,
which silently crashes the active origin under a live 1,000-subscriber CDN
tree and compares the measured promotion latency against this closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.churn import RecoveryModel, recovery_model
from repro.analysis.detection import DetectionModel

#: Virtual-time cost of the election itself on the simulated stack: the
#: first in-band detector promotes synchronously, so no time passes between
#: the detection signal and the deposed/promoted role swap.
ELECTION_LATENCY = 0.0


@dataclass(frozen=True)
class PromotionModel:
    """Predicted end-to-end promotion latency for one origin death.

    Attributes
    ----------
    detection:
        The first detector's in-band detection model, instantiated from
        that tier-0 uplink's transport state at crash time (the experiment
        snapshots every tier-0 uplink and takes the earliest signal —
        first detector wins, exactly like the implementation).
    reattach:
        The re-attach floor a tier-0 relay pays against the promoted
        standby (3-RTT on the origin link; 2-RTT with ALPN negotiation).
    election_latency:
        Seconds between the detection signal and the completed role swap;
        :data:`ELECTION_LATENCY` (zero) for the synchronous local election.
    """

    detection: DetectionModel
    reattach: RecoveryModel
    election_latency: float = ELECTION_LATENCY

    def __post_init__(self) -> None:
        if self.election_latency < 0:
            raise ValueError(
                f"election latency must be non-negative: {self.election_latency}"
            )

    @property
    def detection_latency(self) -> float:
        """Seconds from the silent crash to the first in-band signal."""
        return self.detection.detection_latency

    @property
    def path(self) -> str:
        """The winning detection path (``"pto-suspect"`` / ``"idle-timeout"``)."""
        return self.detection.path

    @property
    def promoted_at(self) -> float:
        """Absolute virtual time the standby holds the active role."""
        return self.detection.detected_at + self.election_latency

    @property
    def reattach_latency(self) -> float:
        """The per-relay re-attach floor after the promotion."""
        return self.reattach.reattach_latency

    @property
    def promotion_latency(self) -> float:
        """Seconds from the silent crash to tier-0 re-subscribed through
        the promoted standby: detection + election + the re-attach floor."""
        return self.detection_latency + self.election_latency + self.reattach_latency


def promotion_model(
    detection: DetectionModel,
    link_delay: float,
    alpn_version_negotiation: bool = False,
    election_latency: float = ELECTION_LATENCY,
) -> PromotionModel:
    """Model a promotion detected by ``detection`` with tier-0 relays
    re-attaching over a link with the given one-way delay."""
    return PromotionModel(
        detection=detection,
        reattach=recovery_model(link_delay, alpn_version_negotiation),
        election_latency=election_latency,
    )
