"""Deterministic discrete-event network simulator.

The simulator provides a virtual clock and event scheduler (:class:`Simulator`),
hosts with numbered ports (:class:`~repro.netsim.node.Host`), point-to-point
links with configurable one-way delay, bandwidth and loss
(:class:`~repro.netsim.link.Link`), and a :class:`~repro.netsim.network.Network`
that wires hosts together and routes datagrams between them.

All protocol layers in this repository (UDP DNS, QUIC, MoQT, DNS-over-MoQT)
exchange :class:`~repro.netsim.packet.Datagram` objects through this module,
which makes every experiment fully deterministic and reproducible.
"""

from repro.netsim.simulator import Simulator, Event
from repro.netsim.packet import Datagram, Address
from repro.netsim.link import Link, LinkConfig
from repro.netsim.node import Host, PortHandler
from repro.netsim.network import Network
from repro.netsim.trace import TraceRecorder, TraceEvent
from repro.netsim.stats import Counter, SummaryStatistics

__all__ = [
    "Simulator",
    "Event",
    "Datagram",
    "Address",
    "Link",
    "LinkConfig",
    "Host",
    "PortHandler",
    "Network",
    "TraceRecorder",
    "TraceEvent",
    "Counter",
    "SummaryStatistics",
]
