"""Small statistics helpers shared by experiments and analysis modules.

Only plain-Python implementations are used so that the statistics behave
identically regardless of the numerical backend; numpy is reserved for the
heavier measurement-study analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable


class Counter:
    """A named group of integer counters."""

    def __init__(self) -> None:
        self._values: dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to the counter and return the new value."""
        self._values[name] = self._values.get(name, 0) + amount
        return self._values[name]

    def get(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        return self._values.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._values)

    def reset(self) -> None:
        """Zero every counter."""
        self._values.clear()


@dataclass
class SummaryStatistics:
    """Streaming summary of a sample: count, mean, min/max and percentiles.

    Samples are retained so exact percentiles can be computed; the sample
    sizes in this repository (thousands of values) make that affordable.
    """

    samples: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Add a sample."""
        self.samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        """Add several samples."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        """Number of samples."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        """Largest sample (0.0 when empty)."""
        return max(self.samples) if self.samples else 0.0

    @property
    def stddev(self) -> float:
        """Population standard deviation (0.0 for fewer than two samples)."""
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        variance = sum((x - mean) ** 2 for x in self.samples) / len(self.samples)
        return math.sqrt(variance)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 <= q <= 100) with linear interpolation."""
        if not self.samples:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        weight = rank - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.percentile(50.0)

    def summary(self) -> dict[str, float]:
        """A dictionary of the common summary values."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.maximum,
        }


def cumulative_distribution(samples: Iterable[float]) -> list[tuple[float, float]]:
    """Empirical CDF as a list of ``(value, fraction <= value)`` points."""
    ordered = sorted(samples)
    if not ordered:
        return []
    total = len(ordered)
    points: list[tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / total)
        else:
            points.append((value, index / total))
    return points


def histogram(samples: Iterable[float], bins: Iterable[float]) -> dict[float, int]:
    """Count samples equal to each bin value (exact matching).

    The TTL experiment uses this for clustered TTL values; it is not a
    range-based histogram.
    """
    counts = {bin_value: 0 for bin_value in bins}
    for sample in samples:
        if sample in counts:
            counts[sample] += 1
    return counts
