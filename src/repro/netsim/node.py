"""Hosts and port handlers.

A :class:`Host` is an endpoint in the simulated network.  Protocol endpoints
(a classic DNS server, a QUIC endpoint, ...) bind to numbered ports on a host
by registering a :class:`PortHandler`; incoming datagrams addressed to that
port are dispatched to the handler's :meth:`PortHandler.datagram_received`.
"""

from __future__ import annotations

from typing import Protocol

from repro.netsim.packet import Address, Datagram
from repro.netsim.simulator import Simulator


class NetworkInterface(Protocol):
    """Interface the host uses to hand datagrams to the network."""

    def route(self, datagram: Datagram) -> None:
        """Deliver ``datagram`` towards its destination."""


class PortHandler(Protocol):
    """Anything that can be bound to a host port."""

    def datagram_received(self, datagram: Datagram) -> None:
        """Handle a datagram addressed to the bound port."""


class PortInUseError(Exception):
    """Raised when binding to a port that already has a handler."""


class HostNotAttachedError(Exception):
    """Raised when a host sends before being attached to a network."""


class Host:
    """An endpoint in the simulated network.

    Parameters
    ----------
    simulator:
        The owning simulator.
    address:
        A unique host address string (e.g. ``"resolver.example"`` or an IP
        literal); purely symbolic.
    """

    __slots__ = ("simulator", "address", "_ports", "_network", "_next_ephemeral")

    def __init__(self, simulator: Simulator, address: str) -> None:
        self.simulator = simulator
        self.address = address
        self._ports: dict[int, PortHandler] = {}
        self._network: NetworkInterface | None = None
        self._next_ephemeral = 49152

    def attach(self, network: NetworkInterface) -> None:
        """Attach this host to a network (called by :class:`Network`)."""
        self._network = network

    @property
    def is_attached(self) -> bool:
        """Whether the host is attached to a network."""
        return self._network is not None

    @property
    def network(self) -> NetworkInterface | None:
        """The network this host is attached to (None before attachment)."""
        return self._network

    def bind(self, port: int, handler: PortHandler) -> Address:
        """Bind ``handler`` to ``port`` and return the resulting address."""
        if port in self._ports:
            raise PortInUseError(f"port {port} already bound on {self.address}")
        self._ports[port] = handler
        return Address(self.address, port)

    def bind_ephemeral(self, handler: PortHandler) -> Address:
        """Bind ``handler`` to the next free ephemeral port."""
        while self._next_ephemeral in self._ports:
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return self.bind(port, handler)

    def unbind(self, port: int) -> None:
        """Release a port binding; unknown ports are ignored."""
        self._ports.pop(port, None)

    def bound_ports(self) -> list[int]:
        """Ports that currently have a handler."""
        return sorted(self._ports)

    def send(self, datagram: Datagram) -> None:
        """Send a datagram into the network."""
        if self._network is None:
            raise HostNotAttachedError(f"host {self.address} is not attached")
        self._network.route(datagram)

    def deliver(self, datagram: Datagram) -> None:
        """Deliver an incoming datagram to the bound handler, if any.

        Datagrams for unbound ports are silently dropped, mirroring a closed
        UDP port with ICMP suppressed; counting such drops is left to traces.
        """
        handler = self._ports.get(datagram.destination.port)
        if handler is not None:
            handler.datagram_received(datagram)
