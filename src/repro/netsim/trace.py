"""Event tracing for simulations.

Every experiment records protocol-level events (datagram sent, subscription
established, record updated, ...) through a :class:`TraceRecorder`.  Traces
are kept in memory as :class:`TraceEvent` entries and can be filtered,
counted and rendered as message-sequence text — the latter is how the Fig. 2
lookup-sequence experiment prints its output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.netsim.simulator import Simulator


@dataclass(frozen=True)
class TraceEvent:
    """A single trace entry."""

    time: float
    kind: str
    attributes: tuple[tuple[str, Any], ...]

    def attribute(self, key: str, default: Any = None) -> Any:
        """Look up an attribute by key."""
        for name, value in self.attributes:
            if name == key:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        """Return ``{"time": ..., "kind": ..., **attributes}``."""
        result: dict[str, Any] = {"time": self.time, "kind": self.kind}
        result.update(dict(self.attributes))
        return result


class TraceRecorder:
    """Collects :class:`TraceEvent` entries during a simulation run."""

    def __init__(self, simulator: Simulator) -> None:
        self._simulator = simulator
        self._events: list[TraceEvent] = []
        self._listeners: list[Callable[[TraceEvent], None]] = []

    def record(self, kind: str, **attributes: Any) -> TraceEvent:
        """Append an event timestamped at the current virtual time."""
        event = TraceEvent(
            time=self._simulator.now,
            kind=kind,
            attributes=tuple(sorted(attributes.items())),
        )
        self._events.append(event)
        for listener in self._listeners:
            listener(event)
        return event

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked for every future event."""
        self._listeners.append(listener)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """All events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def count(self, kind: str | None = None) -> int:
        """Number of events of the given kind (or all events)."""
        return len(self.events(kind))

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """Events matching an arbitrary predicate."""
        return [event for event in self._events if predicate(event)]

    def kinds(self) -> list[str]:
        """Distinct event kinds in order of first occurrence."""
        seen: list[str] = []
        for event in self._events:
            if event.kind not in seen:
                seen.append(event.kind)
        return seen


def format_sequence(
    events: Iterable[TraceEvent],
    columns: tuple[str, ...] = ("source", "destination", "detail"),
) -> str:
    """Render events as a textual message-sequence chart.

    Each line shows the timestamp, the event kind and selected attributes;
    used by the Fig. 2 experiment and the quickstart example to show the
    recursive lookup sequence.
    """
    lines = []
    for event in events:
        parts = [f"{event.time * 1000:9.3f}ms", f"{event.kind:<24}"]
        for column in columns:
            value = event.attribute(column)
            if value is not None:
                parts.append(f"{column}={value}")
        lines.append("  ".join(parts))
    return "\n".join(lines)
