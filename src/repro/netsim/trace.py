"""Event tracing for simulations.

Every experiment records protocol-level events (datagram sent, subscription
established, record updated, ...) through a :class:`TraceRecorder`.  Traces
are kept in memory as :class:`TraceEvent` entries and can be filtered,
counted and rendered as message-sequence text — the latter is how the Fig. 2
lookup-sequence experiment prints its output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.netsim.simulator import Simulator


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """A single trace entry."""

    time: float
    kind: str
    attributes: tuple[tuple[str, Any], ...]

    def attribute(self, key: str, default: Any = None) -> Any:
        """Look up an attribute by key."""
        for name, value in self.attributes:
            if name == key:
                return value
        return default

    def as_dict(self) -> dict[str, Any]:
        """Return ``{"time": ..., "kind": ..., **attributes}``."""
        result: dict[str, Any] = {"time": self.time, "kind": self.kind}
        result.update(dict(self.attributes))
        return result


class TraceRecorder:
    """Collects :class:`TraceEvent` entries during a simulation run.

    Recording sits on the per-datagram fast path, so :meth:`record` only
    appends a raw ``(time, kind, attributes)`` tuple; :class:`TraceEvent`
    objects (with their canonically sorted attribute tuples) are materialised
    lazily the first time the trace is read.
    """

    #: Hot callers (the network layer) may skip building record arguments
    #: entirely when this is False (see :class:`NullTraceRecorder`).
    enabled = True

    def __init__(self, simulator: Simulator) -> None:
        self._simulator = simulator
        self._raw: list[tuple[float, str, dict[str, Any]]] = []
        self._materialized: list[TraceEvent] = []
        self._listeners: list[Callable[[TraceEvent], None]] = []
        # Incremental per-kind tally: experiments call count(kind) in loops,
        # which used to rescan the whole raw list every time.
        self._kind_counts: dict[str, int] = {}

    def record(self, kind: str, **attributes: Any) -> None:
        """Append an event timestamped at the current virtual time."""
        self._raw.append((self._simulator.now, kind, attributes))
        counts = self._kind_counts
        counts[kind] = counts.get(kind, 0) + 1
        if self._listeners:
            event = self._events_list()[-1]
            for listener in self._listeners:
                listener(event)

    def _events_list(self) -> list[TraceEvent]:
        """Materialise (and cache) TraceEvent objects for all raw entries."""
        materialized = self._materialized
        raw = self._raw
        if len(materialized) < len(raw):
            for time, kind, attributes in raw[len(materialized):]:
                materialized.append(
                    TraceEvent(
                        time=time,
                        kind=kind,
                        attributes=tuple(sorted(attributes.items())),
                    )
                )
        return materialized

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked for every future event."""
        self._listeners.append(listener)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """All events, optionally filtered by kind."""
        if kind is None:
            return list(self._events_list())
        return [event for event in self._events_list() if event.kind == kind]

    def count(self, kind: str | None = None) -> int:
        """Number of events of the given kind (or all events) — O(1)."""
        if kind is None:
            return len(self._raw)
        return self._kind_counts.get(kind, 0)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._raw.clear()
        self._materialized.clear()
        self._kind_counts.clear()

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """Events matching an arbitrary predicate."""
        return [event for event in self._events_list() if predicate(event)]

    def kinds(self) -> list[str]:
        """Distinct event kinds in order of first occurrence."""
        # dicts preserve insertion order, so the incremental tally already
        # holds the kinds in first-occurrence order.
        return list(self._kind_counts)


class NullTraceRecorder(TraceRecorder):
    """A recorder that drops everything.

    For throughput-oriented simulations (large fan-out benchmarks) that never
    read their traces: per-datagram recording is pure overhead there.
    Listeners are unsupported — subscribing raises, so silently losing events
    is impossible.
    """

    enabled = False

    def record(self, kind: str, **attributes: Any) -> None:
        """Drop the event."""

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        raise RuntimeError("NullTraceRecorder drops events; attach a TraceRecorder instead")


def format_sequence(
    events: Iterable[TraceEvent],
    columns: tuple[str, ...] = ("source", "destination", "detail"),
) -> str:
    """Render events as a textual message-sequence chart.

    Each line shows the timestamp, the event kind and selected attributes;
    used by the Fig. 2 experiment and the quickstart example to show the
    recursive lookup sequence.
    """
    lines = []
    for event in events:
        parts = [f"{event.time * 1000:9.3f}ms", f"{event.kind:<24}"]
        for column in columns:
            value = event.attribute(column)
            if value is not None:
                parts.append(f"{column}={value}")
        lines.append("  ".join(parts))
    return "\n".join(lines)
