"""Datagrams and addresses exchanged through the simulated network.

The simulator models an idealised IP/UDP layer: endpoints are identified by a
host address (a string such as ``"10.0.0.1"`` or a symbolic name) and a
numeric port, and payloads are opaque byte strings.  Higher layers (classic
DNS, QUIC) build their own framing inside the payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Address:
    """A (host, port) endpoint address in the simulated network."""

    host: str
    port: int

    def __str__(self) -> str:
        # Rendered twice per datagram by the trace layer; cache on first use.
        try:
            return self._str  # type: ignore[attr-defined]
        except AttributeError:
            text = f"{self.host}:{self.port}"
            object.__setattr__(self, "_str", text)
            return text


@dataclass(slots=True)
class Datagram:
    """A single datagram in flight between two addresses.

    Attributes
    ----------
    source / destination:
        Endpoint addresses.
    payload:
        Opaque application bytes.
    protocol:
        A label used only for tracing and statistics (e.g. ``"udp-dns"``,
        ``"quic"``).
    metadata:
        Free-form per-datagram annotations; ``None`` until a writer needs
        them, so the common (annotation-free) datagram carries no dict.
    """

    source: Address
    destination: Address
    payload: bytes
    protocol: str = "udp"
    metadata: dict[str, Any] | None = None

    @property
    def size(self) -> int:
        """Size of the payload in bytes (headers are not modelled)."""
        return len(self.payload)

    def reply(self, payload: bytes, protocol: str | None = None) -> "Datagram":
        """Build a datagram going back from destination to source."""
        return Datagram(
            source=self.destination,
            destination=self.source,
            payload=payload,
            protocol=protocol if protocol is not None else self.protocol,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Datagram({self.source}->{self.destination}, "
            f"{self.size}B, proto={self.protocol})"
        )
