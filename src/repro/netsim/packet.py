"""Datagrams and addresses exchanged through the simulated network.

The simulator models an idealised IP/UDP layer: endpoints are identified by a
host address (a string such as ``"10.0.0.1"`` or a symbolic name) and a
numeric port, and payloads are opaque byte strings.  Higher layers (classic
DNS, QUIC) build their own framing inside the payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Address:
    """A (host, port) endpoint address in the simulated network."""

    host: str
    port: int

    def __str__(self) -> str:
        # Rendered twice per datagram by the trace layer; cache on first use.
        try:
            return self._str  # type: ignore[attr-defined]
        except AttributeError:
            text = f"{self.host}:{self.port}"
            object.__setattr__(self, "_str", text)
            return text


@dataclass(slots=True)
class Datagram:
    """A single datagram in flight between two addresses.

    Attributes
    ----------
    source / destination:
        Endpoint addresses.
    payload:
        Opaque application bytes (``bytes`` or a ``memoryview`` over a pooled
        buffer for pool-managed datagrams).
    protocol:
        A label used only for tracing and statistics (e.g. ``"udp-dns"``,
        ``"quic"``).
    metadata:
        Free-form per-datagram annotations; ``None`` until a writer needs
        them, so the common (annotation-free) datagram carries no dict.

    Pool-managed datagrams (created by :meth:`DatagramPool.acquire`) are
    refcounted: the network holds one reference while the datagram is in
    flight and releases it after final delivery.  A consumer that keeps the
    datagram (or a view of its payload) beyond the delivery callback must
    :meth:`retain` it and :meth:`release` it later; datagrams built directly
    (no pool) ignore both calls.
    """

    source: Address
    destination: Address
    payload: bytes
    protocol: str = "udp"
    metadata: dict[str, Any] | None = None
    _pool: "DatagramPool | None" = None
    _buffer: bytearray | None = None
    _refs: int = 0

    @property
    def size(self) -> int:
        """Size of the payload in bytes (headers are not modelled)."""
        return len(self.payload)

    def reply(self, payload: bytes, protocol: str | None = None) -> "Datagram":
        """Build a datagram going back from destination to source."""
        return Datagram(
            source=self.destination,
            destination=self.source,
            payload=payload,
            protocol=protocol if protocol is not None else self.protocol,
        )

    def retain(self) -> "Datagram":
        """Add a reference, keeping a pooled datagram (and payload) alive."""
        if self._pool is not None:
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop one reference; at zero a pooled datagram returns to its pool."""
        pool = self._pool
        if pool is None:
            return
        self._refs -= 1
        if self._refs <= 0:
            pool._reclaim(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Datagram({self.source}->{self.destination}, "
            f"{self.size}B, proto={self.protocol})"
        )


#: Free lists larger than this stop growing; beyond the cap, released
#: datagrams and buffers are simply dropped for the garbage collector.  The
#: cap bounds pool memory after a burst (e.g. 100k simultaneous handshakes)
#: while still covering the steady-state in-flight population.
_POOL_FREE_LIST_CAP = 32768


class DatagramPool:
    """A slotted free-list pool of :class:`Datagram` shells and send buffers.

    The fan-out hot path sends one datagram per subscriber per object; without
    pooling, every one of them allocates a fresh :class:`Datagram` plus a
    fresh ``bytes`` payload.  The pool recycles both:

    * :meth:`acquire` returns a reset datagram shell from the free list (or a
      new one when the list is empty), refcounted so it returns automatically
      after final delivery;
    * :meth:`acquire_buffer` returns an empty ``bytearray`` senders serialise
      packets into; passing it back via ``acquire(..., buffer=...)`` makes the
      pool reclaim it together with the datagram.

    Safety: a reclaimed buffer is only reused once every exported
    ``memoryview`` over it has been released.  If a consumer still holds a
    view (it should have called :meth:`Datagram.retain`), the buffer is
    abandoned to the garbage collector instead of being recycled — a stale
    view can therefore never observe a later send's bytes.
    """

    __slots__ = (
        "_free",
        "_free_buffers",
        "datagrams_allocated",
        "datagrams_reused",
        "buffers_allocated",
        "buffers_reused",
        "buffers_abandoned",
    )

    def __init__(self) -> None:
        self._free: list[Datagram] = []
        self._free_buffers: list[bytearray] = []
        self.datagrams_allocated = 0
        self.datagrams_reused = 0
        self.buffers_allocated = 0
        self.buffers_reused = 0
        self.buffers_abandoned = 0

    def acquire(
        self,
        source: Address,
        destination: Address,
        payload: bytes,
        protocol: str = "udp",
        buffer: bytearray | None = None,
    ) -> Datagram:
        """Get a datagram shell, reset and holding one reference.

        ``buffer`` is the pooled ``bytearray`` backing ``payload`` (when the
        payload is a ``memoryview`` produced by :meth:`acquire_buffer`); the
        pool reclaims it when the datagram's refcount drops to zero.
        """
        free = self._free
        if free:
            datagram = free.pop()
            self.datagrams_reused += 1
            datagram.source = source
            datagram.destination = destination
            datagram.payload = payload
            datagram.protocol = protocol
            datagram.metadata = None
            datagram._buffer = buffer
            datagram._refs = 1
            return datagram
        self.datagrams_allocated += 1
        return Datagram(
            source, destination, payload, protocol, None, self, buffer, 1
        )

    def acquire_buffer(self) -> bytearray:
        """Get an empty send buffer (recycled when possible)."""
        free = self._free_buffers
        while free:
            buffer = free.pop()
            try:
                buffer.clear()
            except BufferError:
                # A consumer still exports a view over this buffer; abandon
                # it rather than ever mutating bytes someone can observe.
                self.buffers_abandoned += 1
                continue
            self.buffers_reused += 1
            return buffer
        self.buffers_allocated += 1
        return bytearray()

    def _reclaim(self, datagram: Datagram) -> None:
        buffer = datagram._buffer
        payload = datagram.payload
        datagram.payload = b""
        datagram.metadata = None
        datagram._buffer = None
        datagram._refs = 0
        if buffer is not None:
            if type(payload) is memoryview:
                try:
                    payload.release()
                except BufferError:
                    # Sub-views of the payload are still alive somewhere;
                    # leave the buffer to the garbage collector.
                    self.buffers_abandoned += 1
                    buffer = None
            if buffer is not None and len(self._free_buffers) < _POOL_FREE_LIST_CAP:
                self._free_buffers.append(buffer)
        if len(self._free) < _POOL_FREE_LIST_CAP:
            self._free.append(datagram)

    def counters(self) -> dict[str, int]:
        """Allocation/reuse counters for benchmark output."""
        return {
            "datagrams_allocated": self.datagrams_allocated,
            "datagrams_reused": self.datagrams_reused,
            "buffers_allocated": self.buffers_allocated,
            "buffers_reused": self.buffers_reused,
            "buffers_abandoned": self.buffers_abandoned,
        }
