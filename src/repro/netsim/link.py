"""Point-to-point links with delay, bandwidth and loss.

A :class:`Link` models one direction of a point-to-point connection between
two hosts.  Datagrams entering the link experience:

* serialisation delay (``size / bandwidth``) when a bandwidth is configured,
* a fixed propagation delay (``delay`` seconds, one way),
* independent random loss with probability ``loss_rate``.

Links keep simple counters (datagrams/bytes carried and dropped) that the
traffic experiments read back.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.netsim.packet import Datagram
from repro.netsim.simulator import Simulator


class BatchSink(Protocol):
    """Collects datagrams sent during a code region for batched transmission.

    Implemented by :class:`~repro.netsim.network.Network`; passed to
    :meth:`Link.transmit_many` so delivery callbacks that send replies (ACKs,
    handshake answers) feed a new batch instead of scheduling per-datagram
    events.
    """

    def begin_batch(self) -> None:
        """Start (or nest into) a batching region."""

    def end_batch(self) -> None:
        """Leave the region; the outermost exit flushes collected datagrams."""


_fallback_warning_issued = False


def note_batch_fallback(batch_sink: "BatchSink | None") -> None:
    """Record one batched wave degrading to per-datagram transmission.

    The degradation used to be silent — and silently forfeited every
    fan-out win whenever a link had bandwidth or loss configured.  Standard
    links no longer trigger it at all; when an explicitly non-batchable
    link does, the wave is counted on the batch sink's
    ``link_batch_fallback_waves`` attribute (exported as the
    ``net_link_batch_fallback_waves`` telemetry gauge and gated to zero in
    the perf harness) and a :class:`RuntimeWarning` is issued once per
    process so regressions of the old bug cannot hide again.
    """
    global _fallback_warning_issued
    if not _fallback_warning_issued:
        _fallback_warning_issued = True
        warnings.warn(
            "Link.transmit_many degraded to per-datagram transmission for a "
            "wave containing a non-batchable link; fan-out batching is "
            "forfeited for this wave (counted in link_batch_fallback_waves)",
            RuntimeWarning,
            stacklevel=3,
        )
    if batch_sink is not None:
        counter = getattr(batch_sink, "link_batch_fallback_waves", None)
        if counter is not None:
            batch_sink.link_batch_fallback_waves = counter + 1


@dataclass(frozen=True)
class LinkConfig:
    """Configuration of one direction of a link.

    Attributes
    ----------
    delay:
        One-way propagation delay in seconds.
    bandwidth:
        Bandwidth in bits per second; ``None`` means infinite (no
        serialisation delay).
    loss_rate:
        Independent per-datagram drop probability in ``[0, 1)``.
        ``loss_rate == 1.0`` is rejected: a link that drops everything is a
        partition, which the experiments model by crashing/abandoning the
        peer instead — and a guaranteed drop would still consume one RNG
        draw per datagram, distorting every seeded stream for no signal.

    RNG draw-order contract (frozen)
    --------------------------------
    Loss is decided at *enqueue* time with **exactly one**
    ``simulator.rng.random()`` draw per datagram on a lossy link
    (``loss_rate > 0``) and **zero** draws on a loss-free link.  Draws
    happen in transmission order: per-datagram :meth:`Link.transmit` draws
    when called, and a batched fan-out wave
    (:meth:`Link.transmit_many` / the network's batching regions) draws
    once per entry in first-collected (FIFO) order when the wave is
    flushed — the same sequence of draws a loop of per-datagram
    ``transmit`` calls at the flush instant would make.  Serialisation
    never draws: the FIFO busy time is advanced deterministically, and a
    *dropped* datagram does not advance it (loss is decided before the
    datagram would occupy the wire).  Seeded experiment outputs are frozen
    on this ordering; see the draw-order regression test in
    ``tests/test_constrained_batch.py``.
    """

    delay: float = 0.010
    bandwidth: float | None = None
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative: {self.delay}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {self.loss_rate}")


@dataclass(slots=True)
class LinkStatistics:
    """Counters accumulated by a link."""

    datagrams_sent: int = 0
    datagrams_delivered: int = 0
    datagrams_dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0

    def as_dict(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "datagrams_sent": self.datagrams_sent,
            "datagrams_delivered": self.datagrams_delivered,
            "datagrams_dropped": self.datagrams_dropped,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
        }


class Link:
    """One direction of a point-to-point link.

    Parameters
    ----------
    simulator:
        The owning simulator (provides the clock and randomness).
    config:
        Delay / bandwidth / loss parameters.
    deliver:
        Callback invoked with each datagram that survives the link, after the
        configured delays.
    """

    __slots__ = (
        "_simulator",
        "_config",
        "_deliver",
        "_busy_until",
        "_delay",
        "_bandwidth",
        "_loss_rate",
        "batchable",
        "statistics",
        "multiplicity",
        "_extra_bytes",
    )

    def __init__(
        self,
        simulator: Simulator,
        config: LinkConfig,
        deliver: Callable[[Datagram], None],
    ) -> None:
        self._simulator = simulator
        self._config = config
        self._deliver = deliver
        self._busy_until = 0.0
        # The config is frozen; hoisting its fields saves three attribute
        # chains per transmitted datagram.
        self._delay = config.delay
        self._bandwidth = config.bandwidth
        self._loss_rate = config.loss_rate
        #: Whether this link qualifies for batched transmission.  True for
        #: every standard link: the batch path replays per-datagram semantics
        #: exactly — per-entry loss draws in FIFO order, FIFO serialisation
        #: with dropped datagrams not advancing the busy time — grouping a
        #: wave into one heap event per distinct arrival instant (links with
        #: bandwidth or loss used to force a per-datagram fallback; that
        #: fallback forfeited every fan-out win the moment a link was
        #: realistic).  A link subclass or test may clear the flag to opt
        #: out; such entries degrade :meth:`transmit_many` to per-datagram
        #: :meth:`transmit` and bump the observable fallback counter.
        self.batchable = True
        self.statistics = LinkStatistics()
        #: How many identical physical links this one stands in for.  1 for
        #: ordinary links; an aggregate-leaf representative's access link
        #: carries its group's member count, and network-wide totals multiply
        #: the counters by it at collection time (per-datagram behaviour is
        #: unaffected — the link itself stays a single FIFO).
        self.multiplicity = 1
        self._extra_bytes = 0

    @property
    def config(self) -> LinkConfig:
        """The link configuration."""
        return self._config

    @property
    def extra_bytes(self) -> int:
        """Additive byte correction applied (once, not multiplied) on top of
        the multiplied totals.  An aggregate representative's handshake
        carries one concrete TLS ticket id; the counted members' dense
        handshakes would have carried different decimal widths, and the
        exact difference — known at attach time — lands here.

        The correction is *accounting only*: it is added to byte totals at
        collection time but never enters serialisation delay (the counted
        members' handshakes were never on this wire).  The setter therefore
        rejects a non-zero correction on a constrained link — there the
        missing serialisation time would make aggregate and dense runs
        silently diverge, so such populations must stay dense.
        """
        return self._extra_bytes

    @extra_bytes.setter
    def extra_bytes(self, value: int) -> None:
        if value and (self._bandwidth is not None or self._loss_rate > 0.0):
            raise ValueError(
                "extra_bytes is an accounting-only correction and cannot be "
                "applied to a bandwidth- or loss-constrained link: the "
                "counted bytes would be missing from serialisation delay "
                f"(bandwidth={self._bandwidth}, loss_rate={self._loss_rate})"
            )
        self._extra_bytes = value

    def transmit(self, datagram: Datagram) -> None:
        """Send a datagram across the link.

        Loss is decided at enqueue time; surviving datagrams are delivered
        after serialisation plus propagation delay.  Serialisation is modelled
        as a FIFO: a datagram cannot start transmitting before the previous
        one has finished.
        """
        size = len(datagram.payload)
        statistics = self.statistics
        statistics.datagrams_sent += 1
        statistics.bytes_sent += size
        if self._loss_rate > 0.0:
            if self._simulator.rng.random() < self._loss_rate:
                statistics.datagrams_dropped += 1
                datagram.release()  # pooled shells recycle on drop, too
                return
        start = max(self._simulator.now, self._busy_until)
        if self._bandwidth is not None:
            serialisation = size * 8 / self._bandwidth
        else:
            serialisation = 0.0
        self._busy_until = start + serialisation
        arrival = self._busy_until + self._delay
        # Scheduling the bound method with the datagram as an event argument
        # avoids allocating one closure per datagram on the hottest path.
        self._simulator.call_at(arrival, self._arrive, datagram)

    def _arrive(self, datagram: Datagram) -> None:
        statistics = self.statistics
        statistics.datagrams_delivered += 1
        statistics.bytes_delivered += len(datagram.payload)
        self._deliver(datagram)

    # -------------------------------------------------------------- batch form
    @staticmethod
    def transmit_many(
        simulator: Simulator,
        entries: list[tuple["Link", Datagram]],
        batch_sink: "BatchSink | None" = None,
    ) -> None:
        """Send many (link, datagram) pairs, one heap event per arrival slot.

        The batch form of :meth:`transmit` for fan-out: an edge relay pushing
        one object to N subscribers over N same-configuration links schedules
        a single event carrying the recipient list instead of N events.  The
        batch path is bandwidth- and loss-aware: per-recipient delivery
        order, delivery times, byte counters and the seeded RNG stream are
        preserved exactly for *any* standard link (see
        :meth:`_transmit_batched` for the argument).  Entries over links
        explicitly marked non-batchable make the whole call degrade to
        per-datagram :meth:`transmit`; the degradation is observable — it
        bumps ``link_batch_fallback_waves`` on the batch sink and warns once
        per process — because a silent fallback here once forfeited every
        fan-out win on constrained links.

        ``batch_sink`` (usually the owning :class:`~repro.netsim.network.Network`)
        is re-entered around the delivery callbacks so that datagrams sent in
        response — ACKs, handshake replies — are batched as well.
        """
        if not all(link.batchable for link, _ in entries):
            note_batch_fallback(batch_sink)
            for link, datagram in entries:
                link.transmit(datagram)
            return
        Link._transmit_batched(simulator, entries, batch_sink)

    @staticmethod
    def _transmit_batched(
        simulator: Simulator,
        entries: list[tuple["Link", Datagram]],
        batch_sink: "BatchSink | None",
    ) -> None:
        """:meth:`transmit_many` minus the batchability guard — for callers
        (the network's batching region) that only ever collect batchable
        links.

        Equivalence to a loop of per-datagram :meth:`transmit` calls at the
        flush instant, entry by entry in FIFO order:

        * the loss draw (one ``rng.random()`` per entry on a lossy link,
          none otherwise) happens in entry order, exactly as the loop's
          sequential ``transmit`` calls would draw — nothing else touches
          the simulator RNG between the entries of a wave;
        * the FIFO serialisation state advances identically:
          ``start = max(now, busy_until)``, ``busy_until = start + size·8/bw``,
          with dropped entries *not* advancing it — the same statements, in
          the same float-operation order, as :meth:`transmit`;
        * each surviving entry's arrival instant is therefore bit-identical
          to the per-datagram path's; entries are grouped by that instant in
          first-seen order and each group scheduled as one heap event.  The
          heap orders events by ``(time, sequence)`` and a group's
          deliveries run in entry order, so the realised delivery sequence
          — across groups and within them — is exactly the per-datagram
          one, with N heap events collapsed into one per distinct arrival
          slot (unconstrained same-delay fan-out keeps its single wave
          event; a bandwidth-limited link serialises into per-entry slots
          but still costs one event per slot, not per datagram).
        """
        groups: dict[float, list[tuple[Link, Datagram]]] = {}
        now = simulator.now
        for entry in entries:
            link = entry[0]
            size = len(entry[1].payload)
            statistics = link.statistics
            statistics.datagrams_sent += 1
            statistics.bytes_sent += size
            if link._loss_rate > 0.0:
                if simulator.rng.random() < link._loss_rate:
                    statistics.datagrams_dropped += 1
                    entry[1].release()  # pooled shells recycle on drop, too
                    continue
            if link._bandwidth is not None:
                start = max(now, link._busy_until)
                serialisation = size * 8 / link._bandwidth
                link._busy_until = start + serialisation
                arrival = link._busy_until + link._delay
            else:
                arrival = now + link._delay
            group = groups.get(arrival)
            if group is None:
                groups[arrival] = group = []
            group.append(entry)
        for arrival, group in groups.items():
            simulator.call_at(arrival, Link._arrive_many, group, batch_sink)

    @staticmethod
    def _arrive_many(
        entries: list[tuple["Link", Datagram]], batch_sink: "BatchSink | None"
    ) -> None:
        if batch_sink is not None:
            batch_sink.begin_batch()
        try:
            for link, datagram in entries:
                statistics = link.statistics
                statistics.datagrams_delivered += 1
                statistics.bytes_delivered += len(datagram.payload)
                link._deliver(datagram)
        finally:
            if batch_sink is not None:
                batch_sink.end_batch()


@dataclass
class LinkPair:
    """Both directions of a bidirectional link between two hosts."""

    forward: Link
    backward: Link

    def statistics(self) -> dict[str, LinkStatistics]:
        """Per-direction statistics."""
        return {"forward": self.forward.statistics, "backward": self.backward.statistics}


def symmetric_config(
    rtt: float,
    *,
    bandwidth: float | None = None,
    loss_rate: float = 0.0,
) -> LinkConfig:
    """Build a :class:`LinkConfig` whose one-way delay is half of ``rtt``.

    Convenience used by experiments that are parameterised in terms of
    round-trip time.
    """
    return LinkConfig(delay=rtt / 2.0, bandwidth=bandwidth, loss_rate=loss_rate)
