"""Point-to-point links with delay, bandwidth and loss.

A :class:`Link` models one direction of a point-to-point connection between
two hosts.  Datagrams entering the link experience:

* serialisation delay (``size / bandwidth``) when a bandwidth is configured,
* a fixed propagation delay (``delay`` seconds, one way),
* independent random loss with probability ``loss_rate``.

Links keep simple counters (datagrams/bytes carried and dropped) that the
traffic experiments read back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.netsim.packet import Datagram
from repro.netsim.simulator import Simulator


@dataclass(frozen=True)
class LinkConfig:
    """Configuration of one direction of a link.

    Attributes
    ----------
    delay:
        One-way propagation delay in seconds.
    bandwidth:
        Bandwidth in bits per second; ``None`` means infinite (no
        serialisation delay).
    loss_rate:
        Independent per-datagram drop probability in ``[0, 1)``.
    """

    delay: float = 0.010
    bandwidth: float | None = None
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative: {self.delay}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {self.loss_rate}")


@dataclass
class LinkStatistics:
    """Counters accumulated by a link."""

    datagrams_sent: int = 0
    datagrams_delivered: int = 0
    datagrams_dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0

    def as_dict(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "datagrams_sent": self.datagrams_sent,
            "datagrams_delivered": self.datagrams_delivered,
            "datagrams_dropped": self.datagrams_dropped,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
        }


class Link:
    """One direction of a point-to-point link.

    Parameters
    ----------
    simulator:
        The owning simulator (provides the clock and randomness).
    config:
        Delay / bandwidth / loss parameters.
    deliver:
        Callback invoked with each datagram that survives the link, after the
        configured delays.
    """

    def __init__(
        self,
        simulator: Simulator,
        config: LinkConfig,
        deliver: Callable[[Datagram], None],
    ) -> None:
        self._simulator = simulator
        self._config = config
        self._deliver = deliver
        self._busy_until = 0.0
        # The config is frozen; hoisting its fields saves three attribute
        # chains per transmitted datagram.
        self._delay = config.delay
        self._bandwidth = config.bandwidth
        self._loss_rate = config.loss_rate
        self.statistics = LinkStatistics()

    @property
    def config(self) -> LinkConfig:
        """The link configuration."""
        return self._config

    def transmit(self, datagram: Datagram) -> None:
        """Send a datagram across the link.

        Loss is decided at enqueue time; surviving datagrams are delivered
        after serialisation plus propagation delay.  Serialisation is modelled
        as a FIFO: a datagram cannot start transmitting before the previous
        one has finished.
        """
        size = len(datagram.payload)
        statistics = self.statistics
        statistics.datagrams_sent += 1
        statistics.bytes_sent += size
        if self._loss_rate > 0.0:
            if self._simulator.rng.random() < self._loss_rate:
                statistics.datagrams_dropped += 1
                return
        start = max(self._simulator.now, self._busy_until)
        if self._bandwidth is not None:
            serialisation = size * 8 / self._bandwidth
        else:
            serialisation = 0.0
        self._busy_until = start + serialisation
        arrival = self._busy_until + self._delay
        # Scheduling the bound method with the datagram as an event argument
        # avoids allocating one closure per datagram on the hottest path.
        self._simulator.call_at(arrival, self._arrive, datagram)

    def _arrive(self, datagram: Datagram) -> None:
        statistics = self.statistics
        statistics.datagrams_delivered += 1
        statistics.bytes_delivered += len(datagram.payload)
        self._deliver(datagram)


@dataclass
class LinkPair:
    """Both directions of a bidirectional link between two hosts."""

    forward: Link
    backward: Link

    def statistics(self) -> dict[str, LinkStatistics]:
        """Per-direction statistics."""
        return {"forward": self.forward.statistics, "backward": self.backward.statistics}


def symmetric_config(
    rtt: float,
    *,
    bandwidth: float | None = None,
    loss_rate: float = 0.0,
) -> LinkConfig:
    """Build a :class:`LinkConfig` whose one-way delay is half of ``rtt``.

    Convenience used by experiments that are parameterised in terms of
    round-trip time.
    """
    return LinkConfig(delay=rtt / 2.0, bandwidth=bandwidth, loss_rate=loss_rate)
