"""Point-to-point links with delay, bandwidth and loss.

A :class:`Link` models one direction of a point-to-point connection between
two hosts.  Datagrams entering the link experience:

* serialisation delay (``size / bandwidth``) when a bandwidth is configured,
* a fixed propagation delay (``delay`` seconds, one way),
* independent random loss with probability ``loss_rate``.

Links keep simple counters (datagrams/bytes carried and dropped) that the
traffic experiments read back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.netsim.packet import Datagram
from repro.netsim.simulator import Simulator


class BatchSink(Protocol):
    """Collects datagrams sent during a code region for batched transmission.

    Implemented by :class:`~repro.netsim.network.Network`; passed to
    :meth:`Link.transmit_many` so delivery callbacks that send replies (ACKs,
    handshake answers) feed a new batch instead of scheduling per-datagram
    events.
    """

    def begin_batch(self) -> None:
        """Start (or nest into) a batching region."""

    def end_batch(self) -> None:
        """Leave the region; the outermost exit flushes collected datagrams."""


@dataclass(frozen=True)
class LinkConfig:
    """Configuration of one direction of a link.

    Attributes
    ----------
    delay:
        One-way propagation delay in seconds.
    bandwidth:
        Bandwidth in bits per second; ``None`` means infinite (no
        serialisation delay).
    loss_rate:
        Independent per-datagram drop probability in ``[0, 1)``.
    """

    delay: float = 0.010
    bandwidth: float | None = None
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative: {self.delay}")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {self.bandwidth}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {self.loss_rate}")


@dataclass(slots=True)
class LinkStatistics:
    """Counters accumulated by a link."""

    datagrams_sent: int = 0
    datagrams_delivered: int = 0
    datagrams_dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0

    def as_dict(self) -> dict[str, int]:
        """Return the counters as a plain dictionary."""
        return {
            "datagrams_sent": self.datagrams_sent,
            "datagrams_delivered": self.datagrams_delivered,
            "datagrams_dropped": self.datagrams_dropped,
            "bytes_sent": self.bytes_sent,
            "bytes_delivered": self.bytes_delivered,
        }


class Link:
    """One direction of a point-to-point link.

    Parameters
    ----------
    simulator:
        The owning simulator (provides the clock and randomness).
    config:
        Delay / bandwidth / loss parameters.
    deliver:
        Callback invoked with each datagram that survives the link, after the
        configured delays.
    """

    __slots__ = (
        "_simulator",
        "_config",
        "_deliver",
        "_busy_until",
        "_delay",
        "_bandwidth",
        "_loss_rate",
        "batchable",
        "statistics",
        "multiplicity",
        "extra_bytes",
    )

    def __init__(
        self,
        simulator: Simulator,
        config: LinkConfig,
        deliver: Callable[[Datagram], None],
    ) -> None:
        self._simulator = simulator
        self._config = config
        self._deliver = deliver
        self._busy_until = 0.0
        # The config is frozen; hoisting its fields saves three attribute
        # chains per transmitted datagram.
        self._delay = config.delay
        self._bandwidth = config.bandwidth
        self._loss_rate = config.loss_rate
        #: Whether this link qualifies for batched transmission: without a
        #: bandwidth limit or loss there is no FIFO serialisation state and no
        #: RNG draw per datagram, so N same-delay transmissions collapse into
        #: one heap event without changing delivery times, order or the
        #: seeded random stream.
        self.batchable = config.bandwidth is None and config.loss_rate == 0.0
        self.statistics = LinkStatistics()
        #: How many identical physical links this one stands in for.  1 for
        #: ordinary links; an aggregate-leaf representative's access link
        #: carries its group's member count, and network-wide totals multiply
        #: the counters by it at collection time (per-datagram behaviour is
        #: unaffected — the link itself stays a single FIFO).
        self.multiplicity = 1
        #: Additive byte correction applied (once, not multiplied) on top of
        #: the multiplied totals.  An aggregate representative's handshake
        #: carries one concrete TLS ticket id; the counted members' dense
        #: handshakes would have carried different decimal widths, and the
        #: exact difference — known at attach time — lands here.
        self.extra_bytes = 0

    @property
    def config(self) -> LinkConfig:
        """The link configuration."""
        return self._config

    def transmit(self, datagram: Datagram) -> None:
        """Send a datagram across the link.

        Loss is decided at enqueue time; surviving datagrams are delivered
        after serialisation plus propagation delay.  Serialisation is modelled
        as a FIFO: a datagram cannot start transmitting before the previous
        one has finished.
        """
        size = len(datagram.payload)
        statistics = self.statistics
        statistics.datagrams_sent += 1
        statistics.bytes_sent += size
        if self._loss_rate > 0.0:
            if self._simulator.rng.random() < self._loss_rate:
                statistics.datagrams_dropped += 1
                datagram.release()  # pooled shells recycle on drop, too
                return
        start = max(self._simulator.now, self._busy_until)
        if self._bandwidth is not None:
            serialisation = size * 8 / self._bandwidth
        else:
            serialisation = 0.0
        self._busy_until = start + serialisation
        arrival = self._busy_until + self._delay
        # Scheduling the bound method with the datagram as an event argument
        # avoids allocating one closure per datagram on the hottest path.
        self._simulator.call_at(arrival, self._arrive, datagram)

    def _arrive(self, datagram: Datagram) -> None:
        statistics = self.statistics
        statistics.datagrams_delivered += 1
        statistics.bytes_delivered += len(datagram.payload)
        self._deliver(datagram)

    # -------------------------------------------------------------- batch form
    @staticmethod
    def transmit_many(
        simulator: Simulator,
        entries: list[tuple["Link", Datagram]],
        batch_sink: "BatchSink | None" = None,
    ) -> None:
        """Send many (link, datagram) pairs, one heap event per delay value.

        The batch form of :meth:`transmit` for fan-out: an edge relay pushing
        one object to N subscribers over N same-configuration links schedules
        a single event carrying the recipient list instead of N events.  Per-
        recipient delivery order, delivery times and the seeded RNG stream
        are preserved exactly **when every link is batchable** (no bandwidth
        limit, no loss); entries over non-batchable links make the whole call
        degrade to per-datagram :meth:`transmit` so the FIFO-serialisation
        and loss semantics (including RNG draw order) cannot drift.

        ``batch_sink`` (usually the owning :class:`~repro.netsim.network.Network`)
        is re-entered around the delivery callbacks so that datagrams sent in
        response — ACKs, handshake replies — are batched as well.
        """
        if not all(link.batchable for link, _ in entries):
            for link, datagram in entries:
                link.transmit(datagram)
            return
        Link._transmit_batched(simulator, entries, batch_sink)

    @staticmethod
    def _transmit_batched(
        simulator: Simulator,
        entries: list[tuple["Link", Datagram]],
        batch_sink: "BatchSink | None",
    ) -> None:
        """:meth:`transmit_many` minus the batchability guard — for callers
        (the network's batching region) that only ever collect batchable
        links.

        Entries are grouped by delay, preserving first-seen order.  Same-delay
        entries share one event; different delays arrive at different
        instants, so scheduling the groups in first-seen order keeps
        (time, sequence) ordering identical to per-datagram transmission.
        """
        groups: dict[float, list[tuple[Link, Datagram]]] = {}
        for entry in entries:
            link = entry[0]
            statistics = link.statistics
            statistics.datagrams_sent += 1
            statistics.bytes_sent += len(entry[1].payload)
            group = groups.get(link._delay)
            if group is None:
                groups[link._delay] = group = []
            group.append(entry)
        now = simulator.now
        for delay, group in groups.items():
            simulator.call_at(now + delay, Link._arrive_many, group, batch_sink)

    @staticmethod
    def _arrive_many(
        entries: list[tuple["Link", Datagram]], batch_sink: "BatchSink | None"
    ) -> None:
        if batch_sink is not None:
            batch_sink.begin_batch()
        try:
            for link, datagram in entries:
                statistics = link.statistics
                statistics.datagrams_delivered += 1
                statistics.bytes_delivered += len(datagram.payload)
                link._deliver(datagram)
        finally:
            if batch_sink is not None:
                batch_sink.end_batch()


@dataclass
class LinkPair:
    """Both directions of a bidirectional link between two hosts."""

    forward: Link
    backward: Link

    def statistics(self) -> dict[str, LinkStatistics]:
        """Per-direction statistics."""
        return {"forward": self.forward.statistics, "backward": self.backward.statistics}


def symmetric_config(
    rtt: float,
    *,
    bandwidth: float | None = None,
    loss_rate: float = 0.0,
) -> LinkConfig:
    """Build a :class:`LinkConfig` whose one-way delay is half of ``rtt``.

    Convenience used by experiments that are parameterised in terms of
    round-trip time.
    """
    return LinkConfig(delay=rtt / 2.0, bandwidth=bandwidth, loss_rate=loss_rate)
