"""Virtual clock and event scheduler for the discrete-event simulator.

The :class:`Simulator` owns the virtual time and a priority queue of pending
events.  Protocol code never sleeps; it schedules callbacks with
:meth:`Simulator.call_later` or :meth:`Simulator.call_at` and the simulator
advances the clock to the next event when :meth:`Simulator.run` is called.

Determinism: events scheduled for the same instant fire in the order in which
they were scheduled (FIFO tie-breaking via a monotonically increasing sequence
number), and all randomness in the simulator is drawn from an explicitly
seeded :class:`random.Random` owned by the simulator.

Performance: this module is the innermost loop of every experiment and
benchmark, so the event queue is engineered for constant-factor speed:

* heap entries are plain ``(time, sequence, event)`` tuples, so ``heapq``
  comparisons resolve on C-level int/float compares (the sequence number is
  unique, the :class:`Event` object itself is never compared);
* :class:`Event` uses ``__slots__`` and carries optional positional
  arguments, so hot callers (the link layer) schedule bound methods directly
  instead of allocating a closure per datagram;
* cancellation is lazy — cancelled entries stay in the heap and are skipped
  at pop time — but the queue is compacted whenever more than half of it is
  dead, so timer-churn-heavy runs (retransmission and idle timers restarting
  on every packet) do not grow the heap without bound;
* :attr:`Simulator.pending_events` is a live counter, not an O(n) scan.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable


class SimulationError(Exception):
    """Raised for invalid interactions with the simulator."""


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, sequence)`` so that simultaneous events run
    in scheduling order.  Cancelled events stay in the heap but are skipped
    when popped; the owning simulator compacts the heap when too many
    cancelled entries accumulate.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled", "_simulator")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        simulator: "Simulator",
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._simulator = simulator

    def cancel(self) -> None:
        """Mark the event so it will not run when its time comes."""
        if self.cancelled:
            return
        self.cancelled = True
        self._simulator._note_cancelled()


#: Heaps smaller than this are never compacted — rebuilding a handful of
#: entries costs more than lazily skipping them.
_COMPACT_MIN_QUEUE = 64


class Simulator:
    """Discrete-event simulator with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  All protocol
        components must use :attr:`rng` (never the global ``random`` module)
        so that runs are reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        #: Current virtual time in seconds.  Read-only by convention: only
        #: the run loop advances it (a plain attribute because the hot paths
        #: read it hundreds of thousands of times per simulated second).
        self.now = 0.0
        self._sequence = 0
        #: Min-heap of ``(time, sequence, event)`` tuples.
        self._queue: list[tuple[float, int, Event]] = []
        #: Live count of scheduled, not-yet-cancelled, not-yet-run events.
        self._pending = 0
        #: Count of cancelled entries still sitting in the heap.
        self._dead_in_queue = 0
        #: Number of times the heap has been compacted (cancelled entries
        #: dropped and the queue re-heapified).  Compaction work was invisible
        #: in the scheduler counters before this; the perf harness surfaces it.
        self.compactions = 0
        self._running = False
        self.rng = random.Random(seed)

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._pending

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the sequence counter, O(1)).

        Batched fan-out exists to keep this number from growing with the
        subscriber population; the macro-benchmarks report it so a regression
        back to one-event-per-datagram is visible in the JSON.
        """
        return self._sequence

    def _note_cancelled(self) -> None:
        self._pending -= 1
        self._dead_in_queue += 1
        queue = self._queue
        if len(queue) >= _COMPACT_MIN_QUEUE and self._dead_in_queue * 2 > len(queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Rebuilding preserves ordering exactly: entries compare by their
        ``(time, sequence)`` prefix, which is unique per event.
        """
        self._queue = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._dead_in_queue = 0
        self.compactions += 1

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < {self.now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(when, sequence, callback, args, self)
        heapq.heappush(self._queue, (when, sequence, event))
        self._pending += 1
        return event

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run at the current virtual time."""
        return self.call_at(self.now, callback, *args)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains or a bound is hit.

        Parameters
        ----------
        until:
            Stop once the next event would occur strictly after this time.
            The clock is advanced to ``until`` when provided.
        max_events:
            Safety bound on the number of events executed.

        Returns
        -------
        int
            The number of events executed.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                if max_events is not None and executed >= max_events:
                    break
                time, _, event = queue[0]
                if event.cancelled:
                    pop(queue)
                    self._dead_in_queue -= 1
                    continue
                if until is not None and time > until:
                    break
                pop(queue)
                self._pending -= 1
                # Consumed: a late cancel() must not touch the counters.
                event.cancelled = True
                if time > self.now:
                    self.now = time
                event.callback(*event.args)
                executed += 1
                queue = self._queue  # _compact() may have replaced the list
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return executed

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        return self.run(max_events=max_events)

    def advance(self, delta: float) -> int:
        """Advance the clock by ``delta`` seconds, running due events."""
        if delta < 0:
            raise SimulationError(f"cannot advance by negative delta: {delta}")
        return self.run(until=self.now + delta)


class Timer:
    """A restartable one-shot timer bound to a :class:`Simulator`.

    Protocol components use timers for idle timeouts, retransmissions and
    periodic refresh.  A timer may be (re)started, stopped and queried; the
    callback fires once per start unless restarted.

    Restarts are lazy: timers like a connection's idle timeout are pushed
    back on every packet, so re-arming eagerly would cancel and re-insert a
    heap entry per packet.  Instead, extending the deadline only updates a
    float; the already-armed event wakes at the old deadline, notices the
    deadline moved, and re-arms itself for the remainder.  Shrinking the
    deadline still replaces the armed event, so the callback never fires
    late.
    """

    __slots__ = ("_simulator", "_callback", "_event", "_deadline")

    def __init__(self, simulator: Simulator, callback: Callable[[], None]) -> None:
        self._simulator = simulator
        self._callback = callback
        self._event: Event | None = None
        self._deadline: float | None = None

    @property
    def is_running(self) -> bool:
        """Whether the timer is armed and has not yet fired."""
        return self._event is not None and not self._event.cancelled

    @property
    def deadline(self) -> float | None:
        """Absolute time at which the timer will fire, if armed."""
        if self.is_running:
            return self._deadline
        return None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        deadline = self._simulator.now + delay
        event = self._event
        if event is not None and not event.cancelled and event.time <= deadline:
            # The armed wake fires at or before the new deadline; _fire will
            # re-arm for the remainder.  No heap traffic on the hot path.
            self._deadline = deadline
            return
        if event is not None:
            event.cancel()
        self._deadline = deadline
        self._event = self._simulator.call_later(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer if it is running."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._deadline = None

    def _fire(self) -> None:
        deadline = self._deadline
        if deadline is not None and deadline > self._simulator.now:
            # The deadline was pushed back while the wake was armed.
            self._event = self._simulator.call_at(deadline, self._fire)
            return
        self._event = None
        self._deadline = None
        self._callback()


class PeriodicTask:
    """Repeatedly invokes a callback at a fixed virtual-time interval."""

    __slots__ = ("_simulator", "_interval", "_callback", "_event", "_stopped")

    def __init__(
        self,
        simulator: Simulator,
        interval: float,
        callback: Callable[[], None],
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval}")
        self._simulator = simulator
        self._interval = interval
        self._callback = callback
        self._event: Event | None = None
        self._stopped = True

    @property
    def is_running(self) -> bool:
        """Whether the periodic task is active."""
        return not self._stopped

    def start(self, initial_delay: float | None = None) -> None:
        """Start firing; the first invocation happens after ``initial_delay``.

        Restarting an already-running task cancels the armed tick first —
        otherwise the old chain would keep rescheduling itself alongside the
        new one and the callback would fire twice per interval.
        """
        delay = self._interval if initial_delay is None else initial_delay
        if self._event is not None:
            self._event.cancel()
        self._stopped = False
        self._event = self._simulator.call_later(delay, self._tick)

    def stop(self) -> None:
        """Stop firing."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if self._stopped:
            return
        self._event = None
        self._callback()
        # The callback may have called start() itself (re-phasing the task);
        # arming a second chain on top of that one would double-fire.
        if not self._stopped and self._event is None:
            self._event = self._simulator.call_later(self._interval, self._tick)


def format_time(seconds: float) -> str:
    """Render a virtual timestamp as a human-readable string.

    >>> format_time(0.01)
    '10.000ms'
    >>> format_time(12.5)
    '12.500s'
    """
    if seconds < 1.0:
        return f"{seconds * 1000:.3f}ms"
    return f"{seconds:.3f}s"
