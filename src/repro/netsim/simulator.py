"""Virtual clock and event scheduler for the discrete-event simulator.

The :class:`Simulator` owns the virtual time and a priority queue of pending
events.  Protocol code never sleeps; it schedules callbacks with
:meth:`Simulator.call_later` or :meth:`Simulator.call_at` and the simulator
advances the clock to the next event when :meth:`Simulator.run` is called.

Determinism: events scheduled for the same instant fire in the order in which
they were scheduled (FIFO tie-breaking via a monotonically increasing sequence
number), and all randomness in the simulator is drawn from an explicitly
seeded :class:`random.Random` owned by the simulator.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationError(Exception):
    """Raised for invalid interactions with the simulator."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, sequence)`` so that simultaneous events run
    in scheduling order.  Cancelled events stay in the heap but are skipped
    when popped.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so it will not run when its time comes."""
        self.cancelled = True


class Simulator:
    """Discrete-event simulator with a virtual clock.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  All protocol
        components must use :attr:`rng` (never the global ``random`` module)
        so that runs are reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._sequence = 0
        self._queue: list[Event] = []
        self._running = False
        self.rng = random.Random(seed)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < {self._now}"
            )
        event = Event(time=when, sequence=self._sequence, callback=callback)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def call_later(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback)

    def call_soon(self, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run at the current virtual time."""
        return self.call_at(self._now, callback)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events until the queue drains or a bound is hit.

        Parameters
        ----------
        until:
            Stop once the next event would occur strictly after this time.
            The clock is advanced to ``until`` when provided.
        max_events:
            Safety bound on the number of events executed.

        Returns
        -------
        int
            The number of events executed.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = max(self._now, event.time)
                event.callback()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return executed

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        return self.run(max_events=max_events)

    def advance(self, delta: float) -> int:
        """Advance the clock by ``delta`` seconds, running due events."""
        if delta < 0:
            raise SimulationError(f"cannot advance by negative delta: {delta}")
        return self.run(until=self._now + delta)


class Timer:
    """A restartable one-shot timer bound to a :class:`Simulator`.

    Protocol components use timers for idle timeouts, retransmissions and
    periodic refresh.  A timer may be (re)started, stopped and queried; the
    callback fires once per start unless restarted.
    """

    def __init__(self, simulator: Simulator, callback: Callable[[], None]) -> None:
        self._simulator = simulator
        self._callback = callback
        self._event: Event | None = None

    @property
    def is_running(self) -> bool:
        """Whether the timer is armed and has not yet fired."""
        return self._event is not None and not self._event.cancelled

    @property
    def deadline(self) -> float | None:
        """Absolute time at which the timer will fire, if armed."""
        if self.is_running and self._event is not None:
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.stop()
        self._event = self._simulator.call_later(delay, self._fire)

    def stop(self) -> None:
        """Disarm the timer if it is running."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTask:
    """Repeatedly invokes a callback at a fixed virtual-time interval."""

    def __init__(
        self,
        simulator: Simulator,
        interval: float,
        callback: Callable[[], None],
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"interval must be positive: {interval}")
        self._simulator = simulator
        self._interval = interval
        self._callback = callback
        self._event: Event | None = None
        self._stopped = True

    @property
    def is_running(self) -> bool:
        """Whether the periodic task is active."""
        return not self._stopped

    def start(self, initial_delay: float | None = None) -> None:
        """Start firing; the first invocation happens after ``initial_delay``."""
        delay = self._interval if initial_delay is None else initial_delay
        self._stopped = False
        self._event = self._simulator.call_later(delay, self._tick)

    def stop(self) -> None:
        """Stop firing."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._event = self._simulator.call_later(self._interval, self._tick)


def format_time(seconds: float) -> str:
    """Render a virtual timestamp as a human-readable string.

    >>> format_time(0.01)
    '10.000ms'
    >>> format_time(12.5)
    '12.500s'
    """
    if seconds < 1.0:
        return f"{seconds * 1000:.3f}ms"
    return f"{seconds:.3f}s"
