"""Network topology: hosts wired together by links.

The :class:`Network` owns hosts and the links between them and routes
datagrams.  Two routing modes are supported:

* direct links — if a link exists between source and destination hosts the
  datagram traverses exactly that link;
* multi-hop — otherwise the network computes the least-total-delay path over
  the link graph (using a simple Dijkstra over configured delays) and the
  datagram traverses every link on the path in sequence.

Multi-hop routing is what lets the deep-space and relay experiments place
intermediaries between resolvers without modelling routers explicitly.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.netsim.link import Link, LinkConfig, note_batch_fallback
from repro.netsim.node import Host
from repro.netsim.packet import Datagram, DatagramPool
from repro.netsim.simulator import Simulator
from repro.netsim.trace import TraceRecorder
from repro.telemetry import Telemetry


class UnknownHostError(Exception):
    """Raised when routing to or creating a link for an unknown host."""


class NoRouteError(Exception):
    """Raised when no path exists between two hosts."""


class Network:
    """A set of hosts connected by point-to-point links."""

    def __init__(
        self,
        simulator: Simulator,
        trace: TraceRecorder | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.simulator = simulator
        self.trace = trace if trace is not None else TraceRecorder(simulator)
        #: The observability bundle protocol layers read through
        #: ``host.network.telemetry``.  The default is free: a no-op metrics
        #: registry and no span tracer (see :mod:`repro.telemetry`).
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._hosts: dict[str, Host] = {}
        # Keyed by (source, destination) host-address tuples: plain tuples
        # hash faster than any wrapper object on the per-datagram route path.
        self._links: dict[tuple[str, str], Link] = {}
        #: Shared pool of datagram shells and send buffers; endpoints sending
        #: heavy traffic (QUIC) draw from it so the steady-state fan-out path
        #: recycles rather than allocates.
        self.datagram_pool = DatagramPool()
        #: Master switch for fan-out batching (the determinism canary runs
        #: with it off to prove batched and unbatched delivery are identical).
        self.batching_enabled = True
        self._batch_depth = 0
        self._batch: list[tuple[Link, Datagram]] = []
        #: Waves (outermost batching regions) in which at least one datagram
        #: degraded to per-datagram transmission because its link was marked
        #: non-batchable.  Standard links are always batchable — bandwidth
        #: and loss included — so this stays zero in every shipped scenario;
        #: it is exported as the ``net_link_batch_fallback_waves`` gauge and
        #: gated to zero in the perf harness so the old silent-fallback bug
        #: cannot regress unnoticed.
        self.link_batch_fallback_waves = 0
        self._batch_fallback_pending = False

    # ------------------------------------------------------------------ hosts
    def add_host(self, address: str) -> Host:
        """Create a host with the given address and attach it."""
        if address in self._hosts:
            raise ValueError(f"host already exists: {address}")
        host = Host(self.simulator, address)
        host.attach(self)
        self._hosts[address] = host
        return host

    def add_hosts(self, prefix: str, count: int) -> list[Host]:
        """Create ``count`` hosts named ``{prefix}-0`` … ``{prefix}-{count-1}``.

        Bulk creation keeps large fan-out topologies (one host per relay or
        subscriber) readable; the relay-tree builder uses it for every tier.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative: {count}")
        return [self.add_host(f"{prefix}-{index}") for index in range(count)]

    def host(self, address: str) -> Host:
        """Look up a host by address."""
        try:
            return self._hosts[address]
        except KeyError:
            raise UnknownHostError(address) from None

    def hosts(self) -> list[Host]:
        """All hosts, in insertion order."""
        return list(self._hosts.values())

    # ------------------------------------------------------------------ links
    def connect(
        self,
        first: str | Host,
        second: str | Host,
        config: LinkConfig | None = None,
        reverse_config: LinkConfig | None = None,
    ) -> None:
        """Create a bidirectional link between two hosts.

        ``config`` applies to the ``first -> second`` direction and, unless
        ``reverse_config`` is given, to the reverse direction as well.
        """
        first_addr = first.address if isinstance(first, Host) else first
        second_addr = second.address if isinstance(second, Host) else second
        for address in (first_addr, second_addr):
            if address not in self._hosts:
                raise UnknownHostError(address)
        forward_config = config if config is not None else LinkConfig()
        backward_config = reverse_config if reverse_config is not None else forward_config
        self._links[(first_addr, second_addr)] = Link(
            self.simulator, forward_config, self._make_delivery(second_addr)
        )
        self._links[(second_addr, first_addr)] = Link(
            self.simulator, backward_config, self._make_delivery(first_addr)
        )

    def connect_star(
        self,
        hub: str | Host,
        peripherals: Iterable[str | Host],
        config: LinkConfig | None = None,
        reverse_config: LinkConfig | None = None,
    ) -> None:
        """Connect every peripheral host to ``hub`` with identical links.

        ``config`` applies hub -> peripheral (the fan-out direction) and, as
        in :meth:`connect`, to the reverse direction unless ``reverse_config``
        is given.
        """
        for peripheral in peripherals:
            self.connect(hub, peripheral, config, reverse_config)

    def link(self, source: str, destination: str) -> Link:
        """The link carrying traffic from ``source`` to ``destination``."""
        try:
            return self._links[(source, destination)]
        except KeyError:
            raise NoRouteError(f"no link {source} -> {destination}") from None

    def has_link(self, source: str, destination: str) -> bool:
        """Whether a direct link exists from ``source`` to ``destination``."""
        return (source, destination) in self._links

    def _make_delivery(self, destination: str):
        def deliver(datagram: Datagram) -> None:
            self._deliver_final(destination, datagram)

        return deliver

    # -------------------------------------------------------------- batching
    def begin_batch(self) -> None:
        """Enter a batching region: direct-link datagrams sent over batchable
        links are collected and flushed as link-batch events on the outermost
        :meth:`end_batch` (see :meth:`Link.transmit_many`).  Regions nest; the
        fan-out code paths (relay forwarding, bulk subscribe, batched arrival
        processing) wrap their send loops in one."""
        self._batch_depth += 1

    def end_batch(self) -> None:
        """Leave a batching region, flushing on the outermost exit."""
        self._batch_depth -= 1
        if self._batch_depth == 0:
            if self._batch_fallback_pending:
                self._batch_fallback_pending = False
                note_batch_fallback(self)
            if self._batch:
                entries, self._batch = self._batch, []
                # route() only collects batchable links, so the guard in
                # transmit_many would be a wasted O(n) scan here.
                Link._transmit_batched(self.simulator, entries, self)

    # ---------------------------------------------------------------- routing
    def route(self, datagram: Datagram) -> None:
        """Route a datagram from its source host towards its destination."""
        source = datagram.source.host
        destination = datagram.destination.host
        if destination not in self._hosts:
            raise UnknownHostError(destination)
        trace = self.trace
        if trace.enabled:
            trace.record(
                "datagram-sent",
                source=str(datagram.source),
                destination=str(datagram.destination),
                protocol=datagram.protocol,
                size=len(datagram.payload),
            )
        if source == destination:
            # Loopback delivery happens "immediately" on the next event.
            self.simulator.call_soon(self._deliver_final, destination, datagram)
            return
        link = self._links.get((source, destination))
        if link is not None:
            if self._batch_depth and self.batching_enabled:
                if link.batchable:
                    self._batch.append((link, datagram))
                else:
                    # Explicitly non-batchable link inside a batching region:
                    # transmit per-datagram now (preserving RNG draw order
                    # relative to the surrounding sends) and mark the wave so
                    # the outermost end_batch records one observable fallback.
                    self._batch_fallback_pending = True
                    link.transmit(datagram)
            else:
                link.transmit(datagram)
            return
        path = self.shortest_path(source, destination)
        self._forward_along(path, 0, datagram)

    def _forward_along(self, path: list[str], index: int, datagram: Datagram) -> None:
        """Transmit the datagram across the ``index``-th hop of ``path``."""
        link = self.link(path[index], path[index + 1])
        if index + 2 == len(path):
            link.transmit(datagram)
        else:
            # Intermediate hop: on arrival, keep forwarding.  We wrap the
            # datagram delivery so intermediate hosts do not see the payload.
            original_deliver = link._deliver  # noqa: SLF001 - internal chaining

            def forward(d: Datagram, _next_index: int = index + 1) -> None:
                self._forward_along(path, _next_index, d)

            # Build a temporary link-like transmission: we cannot replace the
            # link's deliver callback permanently (other flows share it), so
            # we emulate the hop with an explicit arrival callback.
            del original_deliver
            self._transmit_via(link, datagram, forward)

    def _transmit_via(self, link: Link, datagram: Datagram, on_arrival) -> None:
        """Send ``datagram`` over ``link`` but divert the arrival callback."""
        link.statistics.datagrams_sent += 1
        link.statistics.bytes_sent += datagram.size
        if link.config.loss_rate > 0.0 and self.simulator.rng.random() < link.config.loss_rate:
            link.statistics.datagrams_dropped += 1
            datagram.release()
            return
        if link.config.bandwidth is not None:
            serialisation = datagram.size * 8 / link.config.bandwidth
        else:
            serialisation = 0.0
        arrival = self.simulator.now + serialisation + link.config.delay
        self.simulator.call_at(arrival, self._arrive_via, link, datagram, on_arrival)

    @staticmethod
    def _arrive_via(link: Link, datagram: Datagram, on_arrival) -> None:
        link.statistics.datagrams_delivered += 1
        link.statistics.bytes_delivered += datagram.size
        on_arrival(datagram)

    def shortest_path(self, source: str, destination: str) -> list[str]:
        """Least-total-delay path between two hosts (Dijkstra)."""
        distances: dict[str, float] = {source: 0.0}
        previous: dict[str, str] = {}
        queue: list[tuple[float, str]] = [(0.0, source)]
        visited: set[str] = set()
        while queue:
            distance, address = heapq.heappop(queue)
            if address in visited:
                continue
            visited.add(address)
            if address == destination:
                break
            for (edge_source, edge_destination), link in self._links.items():
                if edge_source != address:
                    continue
                candidate = distance + link.config.delay
                if candidate < distances.get(edge_destination, float("inf")):
                    distances[edge_destination] = candidate
                    previous[edge_destination] = address
                    heapq.heappush(queue, (candidate, edge_destination))
        if destination not in distances:
            raise NoRouteError(f"no route {source} -> {destination}")
        path = [destination]
        while path[-1] != source:
            path.append(previous[path[-1]])
        path.reverse()
        return path

    # --------------------------------------------------------------- delivery
    def _deliver_final(self, destination: str, datagram: Datagram) -> None:
        trace = self.trace
        if trace.enabled:
            trace.record(
                "datagram-delivered",
                source=str(datagram.source),
                destination=str(datagram.destination),
                protocol=datagram.protocol,
                size=len(datagram.payload),
            )
        self._hosts[destination].deliver(datagram)
        # Pool-managed datagrams return to the pool once fully processed (the
        # whole receive path ran synchronously above); consumers that keep the
        # payload must have retained the datagram.  Plain datagrams ignore
        # the call.
        datagram.release()

    # ------------------------------------------------------------- statistics
    def total_link_statistics(self) -> dict[str, int]:
        """Aggregate counters over every link direction.

        Counters are scaled by each link's :attr:`~repro.netsim.link.Link.multiplicity`
        so a counted aggregate-leaf access link contributes exactly what its
        group's N dense links would have.
        """
        totals = {
            "datagrams_sent": 0,
            "datagrams_delivered": 0,
            "datagrams_dropped": 0,
            "bytes_sent": 0,
            "bytes_delivered": 0,
        }
        for link in self._links.values():
            multiplicity = link.multiplicity
            for key, value in link.statistics.as_dict().items():
                totals[key] += value * multiplicity
            # Handshake-width correction: the counted members' ServerHellos
            # would have carried wider ticket ids than the representative's
            # (decimal encoding), a per-group constant recorded at attach.
            totals["bytes_sent"] += link.extra_bytes
            totals["bytes_delivered"] += link.extra_bytes
        return totals
