"""DNS over Media-over-QUIC Transport (MoQT) — a publish-subscribe DNS.

This package reproduces the system described in "From req/res to pub/sub:
Exploring Media over QUIC Transport for DNS" (HotNets '25).  It contains:

``repro.netsim``
    A deterministic discrete-event network simulator (virtual clock, hosts,
    links with delay/bandwidth/loss) that every other subsystem runs on.

``repro.dns``
    A full DNS substrate: wire-format names and messages, resource-record
    types, zones, caches, authoritative servers and recursive resolvers using
    classic UDP/TCP transports.

``repro.quic``
    A simulated QUIC transport: varints, frames, streams, 1-RTT handshake,
    0-RTT session resumption, datagrams and idle timeouts.

``repro.moqt``
    Media over QUIC Transport (draft-ietf-moq-transport-12 subset): control
    message codec, track naming, the object model, sessions, publishers,
    subscribers and relays.

``repro.core``
    The paper's contribution: the DNS-to-MoQT mapping, an authoritative
    MoQT nameserver, a recursive MoQT resolver, a forwarder, subscription
    management, and compatibility fallbacks.

``repro.relaynet``
    Hierarchical relay fan-out trees (§3, §5.3): declarative tree specs
    (star, k-ary, CDN origin/mid/edge), a builder that instantiates tiered
    ``MoqtRelay`` hierarchies on the simulated network, and per-tier
    statistics aggregation — the subsystem that scales one authoritative
    server to CDN-sized subscriber populations.

``repro.workload`` / ``repro.measurement`` / ``repro.analysis`` /
``repro.experiments``
    Workload models calibrated to the paper's measurement study, the
    measurement pipeline itself, analytical models for latency/staleness/
    traffic, and one experiment driver per figure or quantitative claim.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
