"""Instantiating relay hierarchies on the simulated network.

The :class:`RelayTreeBuilder` turns a declarative
:class:`~repro.relaynet.spec.RelayTreeSpec` into a live :class:`RelayTree`:
one host and one :class:`~repro.moqt.relay.MoqtRelay` per node, each wired to
its parent with the tier's uplink configuration.  Tier 0 relays subscribe at
the origin publisher; deeper tiers subscribe through the tier above them, so
one origin push reaches every subscriber through payload-oblivious fan-out
(§3 of the paper) while the origin only ever serves its direct children.

Subscribers — plain MoQT client sessions — attach below the leaf tier with
:meth:`RelayTree.attach_subscribers`, distributed round-robin so load spreads
evenly across edge relays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.moqt.objectmodel import MoqtObject
from repro.moqt.relay import DEFAULT_MOQT_PORT, MOQT_ALPN, MoqtRelay
from repro.moqt.session import MoqtSession, MoqtSessionConfig, Subscription
from repro.moqt.track import FullTrackName
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Address
from repro.quic.connection import ConnectionConfig
from repro.quic.endpoint import QuicEndpoint
from repro.relaynet.spec import RelayTreeSpec


@dataclass
class RelayNode:
    """One relay in a built tree."""

    tier_index: int
    tier_name: str
    index: int
    host: Host
    relay: MoqtRelay
    parent: "RelayNode | None"

    @property
    def address(self) -> Address:
        """Address downstream sessions (children or subscribers) connect to."""
        return self.relay.address

    @property
    def upstream_host(self) -> str:
        """Host address of the node's parent (origin for tier 0)."""
        return self.relay.upstream_address.host


@dataclass
class TreeSubscriber:
    """A leaf MoQT client attached below an edge relay."""

    index: int
    host: Host
    session: MoqtSession
    leaf: RelayNode


class RelayTree:
    """A built relay hierarchy plus the subscribers attached to it."""

    def __init__(
        self,
        spec: RelayTreeSpec,
        network: Network,
        origin: Address,
        tiers: list[list[RelayNode]],
        session_config: MoqtSessionConfig,
    ) -> None:
        self.spec = spec
        self.network = network
        self.origin = origin
        self.tiers = tiers
        self.session_config = session_config
        self.subscribers: list[TreeSubscriber] = []

    # ------------------------------------------------------------- structure
    def nodes(self) -> list[RelayNode]:
        """Every relay node, top tier first."""
        return [node for tier in self.tiers for node in tier]

    def leaves(self) -> list[RelayNode]:
        """The relays subscribers attach to (the last tier)."""
        return list(self.tiers[-1])

    def tier(self, name: str) -> list[RelayNode]:
        """All nodes of the tier with the given name."""
        for tier_spec, nodes in zip(self.spec.tiers, self.tiers):
            if tier_spec.name == name:
                return list(nodes)
        raise KeyError(f"no tier named {name!r}")

    @property
    def relay_count(self) -> int:
        """Total number of relays in the tree."""
        return sum(len(tier) for tier in self.tiers)

    # ----------------------------------------------------------- subscribers
    def attach_subscribers(
        self,
        count: int,
        session_config: MoqtSessionConfig | None = None,
        host_prefix: str = "sub",
    ) -> list[TreeSubscriber]:
        """Create ``count`` subscriber hosts below the leaf tier.

        Subscribers are assigned to leaf relays round-robin and each opens an
        MoQT session to its relay immediately.  Call repeatedly to grow the
        population; host names continue from the current subscriber count.
        """
        leaves = self.leaves()
        config = session_config if session_config is not None else self.session_config
        created: list[TreeSubscriber] = []
        start = len(self.subscribers)
        for offset in range(count):
            index = start + offset
            leaf = leaves[index % len(leaves)]
            host = self.network.add_host(f"{host_prefix}-{index}")
            self.network.connect(leaf.host, host, self.spec.subscriber_link)
            endpoint = QuicEndpoint(host)
            connection = endpoint.connect(
                leaf.address, ConnectionConfig(alpn_protocols=(MOQT_ALPN,))
            )
            session = MoqtSession(connection, is_client=True, config=config)
            created.append(TreeSubscriber(index=index, host=host, session=session, leaf=leaf))
        self.subscribers.extend(created)
        return created

    def subscribe_all(
        self,
        full_track_name: FullTrackName,
        on_object: Callable[[TreeSubscriber, MoqtObject], None] | None = None,
        subscribers: list[TreeSubscriber] | None = None,
    ) -> list[Subscription]:
        """Subscribe every (given or attached) subscriber to one track."""
        targets = subscribers if subscribers is not None else self.subscribers
        subscriptions: list[Subscription] = []
        for subscriber in targets:
            callback = None
            if on_object is not None:
                callback = lambda obj, sub=subscriber: on_object(sub, obj)
            subscriptions.append(subscriber.session.subscribe(full_track_name, on_object=callback))
        return subscriptions


class RelayTreeBuilder:
    """Builds :class:`RelayTree` instances on a network.

    Parameters
    ----------
    network:
        The network to create relay hosts and links on.
    origin:
        Address of the origin MoQT publisher; its host must already exist on
        the network.
    session_config:
        MoQT session configuration shared by all relays (and, by default, by
        subscribers attached later).
    port:
        Port every relay accepts downstream sessions on.
    """

    def __init__(
        self,
        network: Network,
        origin: Address,
        session_config: MoqtSessionConfig | None = None,
        port: int = DEFAULT_MOQT_PORT,
    ) -> None:
        self.network = network
        self.origin = origin
        self.session_config = session_config if session_config is not None else MoqtSessionConfig()
        self.port = port
        # Fail fast if the origin host is missing rather than at first subscribe.
        network.host(origin.host)

    def build(self, spec: RelayTreeSpec) -> RelayTree:
        """Create hosts, links and relays for every tier of ``spec``."""
        tiers: list[list[RelayNode]] = []
        for tier_index, tier_spec in enumerate(spec.tiers):
            hosts = self.network.add_hosts(
                f"{spec.host_prefix}-{tier_spec.name}", tier_spec.relays
            )
            if tier_index == 0:
                # The whole top tier hangs off the origin: a star.
                self.network.connect_star(self.origin.host, hosts, tier_spec.uplink)
            nodes: list[RelayNode] = []
            for index, host in enumerate(hosts):
                if tier_index == 0:
                    parent = None
                    upstream = self.origin
                else:
                    parent = tiers[tier_index - 1][index % len(tiers[tier_index - 1])]
                    upstream = parent.address
                    self.network.connect(parent.host, host, tier_spec.uplink)
                relay = MoqtRelay(
                    host,
                    upstream=upstream,
                    port=self.port,
                    session_config=self.session_config,
                    tier=tier_spec.name,
                )
                nodes.append(
                    RelayNode(
                        tier_index=tier_index,
                        tier_name=tier_spec.name,
                        index=index,
                        host=host,
                        relay=relay,
                        parent=parent,
                    )
                )
            tiers.append(nodes)
        return RelayTree(spec, self.network, self.origin, tiers, self.session_config)
