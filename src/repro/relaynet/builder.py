"""Thin construction fronts over the live relay topology.

Since the livetree refactor the tree's structure — tiers, parents,
subscriber placement, join/leave/failover — lives in
:class:`~repro.relaynet.topology.RelayTopology`.  This module keeps the
original PR 1 construction API:

* :class:`RelayTreeBuilder` turns a declarative
  :class:`~repro.relaynet.spec.RelayTreeSpec` into a live tree on a
  simulated network (one host and one
  :class:`~repro.moqt.relay.MoqtRelay` per node, each wired to its parent
  with the tier's uplink configuration);
* :class:`RelayTree` wraps the topology with the accessors the
  experiments, benchmarks and statistics use, and forwards membership
  operations (``add_relay`` / ``remove_relay`` / ``kill_relay``) to it.

Tier 0 relays subscribe at the origin publisher; deeper tiers subscribe
through the tier above them, so one origin push reaches every subscriber
through payload-oblivious fan-out (§3 of the paper) while the origin only
ever serves its direct children.  Subscribers attach below the leaf tier
with :meth:`RelayTree.attach_subscribers`, placed on the least-loaded
alive leaf (identical to the historical round-robin while no relay has
died, so seeded static runs keep their exact wire trace).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.moqt.objectmodel import MoqtObject
from repro.moqt.relay import DEFAULT_MOQT_PORT
from repro.moqt.session import MoqtSessionConfig, Subscription
from repro.moqt.track import FullTrackName
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.quic.connection import ConnectionConfig
from repro.relaynet.admission import AdmissionPolicy
from repro.relaynet.aggregate import AggregateLeaf
from repro.relaynet.spec import RelayTreeSpec
from repro.relaynet.topology import (
    FailoverEvent,
    FailoverPolicy,
    RelayNode,
    RelayTopology,
    TreeSubscriber,
)

if TYPE_CHECKING:
    from repro.relaynet.origincluster import OriginCluster

__all__ = [
    "RelayNode",
    "RelayTree",
    "RelayTreeBuilder",
    "TreeSubscriber",
]


class RelayTree:
    """A built relay hierarchy plus the subscribers attached to it.

    A thin view over :class:`~repro.relaynet.topology.RelayTopology`: all
    structure and membership state lives there (``tree.topology`` exposes
    it directly for churn experiments)."""

    def __init__(self, topology: RelayTopology) -> None:
        self.topology = topology

    # ------------------------------------------------------------ delegation
    @property
    def spec(self) -> RelayTreeSpec:
        return self.topology.spec

    @property
    def network(self) -> Network:
        return self.topology.network

    @property
    def origin(self) -> Address:
        return self.topology.origin

    @property
    def session_config(self) -> MoqtSessionConfig:
        return self.topology.session_config

    @property
    def tiers(self) -> list[list[RelayNode]]:
        return self.topology.tiers

    @property
    def subscribers(self) -> list[TreeSubscriber]:
        return self.topology.subscribers

    @property
    def aggregates(self) -> "list[AggregateLeaf]":
        """Aggregate-leaf groups (empty for dense trees)."""
        return self.topology.aggregates

    @property
    def subscriber_population(self) -> int:
        """Total subscribers represented (dense count plus multiplicities)."""
        return self.topology.subscriber_population

    def split_subscriber(self, subscriber_index: int) -> TreeSubscriber:
        """Materialise one aggregated member as a live dense subscriber."""
        return self.topology.split_subscriber(subscriber_index)

    # ------------------------------------------------------------- structure
    def nodes(self) -> list[RelayNode]:
        """Every relay node, top tier first."""
        return self.topology.nodes()

    def leaves(self) -> list[RelayNode]:
        """The relays subscribers attach to (the last tier)."""
        return self.topology.leaves()

    def tier(self, name: str) -> list[RelayNode]:
        """All nodes of the tier with the given name."""
        return self.topology.tier(name)

    @property
    def relay_count(self) -> int:
        """Total number of relays in the tree."""
        return self.topology.relay_count

    # ----------------------------------------------------------- subscribers
    def attach_subscribers(
        self,
        count: int,
        session_config: MoqtSessionConfig | None = None,
        host_prefix: str = "sub",
    ) -> list[TreeSubscriber]:
        """Create ``count`` subscriber hosts below the leaf tier."""
        return self.topology.attach_subscribers(count, session_config, host_prefix)

    def subscribe_all(
        self,
        full_track_name: FullTrackName,
        on_object: Callable[[TreeSubscriber, MoqtObject], None] | None = None,
        subscribers: list[TreeSubscriber] | None = None,
    ) -> list[Subscription]:
        """Subscribe every (given or attached) subscriber to one track."""
        return self.topology.subscribe_all(full_track_name, on_object, subscribers)

    def flash_crowd(self, count: int, window: float, full_track_name: FullTrackName, **kwargs):
        """Inject a subscribe storm (see :meth:`RelayTopology.flash_crowd`)."""
        return self.topology.flash_crowd(count, window, full_track_name, **kwargs)

    # ------------------------------------------------------------ membership
    def add_relay(self, tier: str | int, parent: RelayNode | None = None) -> RelayNode:
        """Grow a tier by one relay while the tree runs."""
        return self.topology.add_relay(tier, parent)

    def remove_relay(self, node: RelayNode, reason: str = "relay leaving") -> FailoverEvent:
        """Gracefully drain a relay out of the tree."""
        return self.topology.remove_relay(node, reason)

    def kill_relay(self, node: RelayNode, reason: str = "relay crashed") -> FailoverEvent:
        """Crash a relay mid-stream and fail its subtree over."""
        return self.topology.kill_relay(node, reason)


class RelayTreeBuilder:
    """Builds :class:`RelayTree` instances on a network.

    Parameters
    ----------
    network:
        The network to create relay hosts and links on.
    origin:
        Address of the origin MoQT publisher; its host must already exist on
        the network.
    session_config:
        MoQT session configuration shared by all relays (and, by default, by
        subscribers attached later).
    port:
        Port every relay accepts downstream sessions on.
    failover_policy:
        How orphans pick a new parent when a relay dies
        (:class:`~repro.relaynet.topology.SiblingFailover` by default).
    uplink_connection / subscriber_connection / downstream_connection:
        QUIC configurations forwarded to the topology (in-band liveness
        detection enables keepalives / short idle timeouts on the first
        two; a congestion controller for the fan-out sender side is
        installed via the third).
    origin_cluster:
        The replicated origin the tree hangs off, when one exists
        (:class:`~repro.relaynet.origincluster.OriginCluster`); forwarded
        to the topology so tier-0 failover can promote a standby.
    aggregate_leaves:
        When True, subscriber attaches run in counted aggregate-leaf mode
        (:mod:`repro.relaynet.aggregate`): one live connection per leaf
        group, statistics multiplied out at collection time, dense
        materialisation on demand.
    """

    def __init__(
        self,
        network: Network,
        origin: Address,
        session_config: MoqtSessionConfig | None = None,
        port: int = DEFAULT_MOQT_PORT,
        failover_policy: FailoverPolicy | None = None,
        uplink_connection: ConnectionConfig | None = None,
        subscriber_connection: ConnectionConfig | None = None,
        downstream_connection: ConnectionConfig | None = None,
        origin_cluster: "OriginCluster | None" = None,
        aggregate_leaves: bool = False,
        admission: "AdmissionPolicy | None" = None,
    ) -> None:
        self.network = network
        self.origin = origin
        self.session_config = session_config if session_config is not None else MoqtSessionConfig()
        self.port = port
        self.failover_policy = failover_policy
        self.uplink_connection = uplink_connection
        self.subscriber_connection = subscriber_connection
        self.downstream_connection = downstream_connection
        self.origin_cluster = origin_cluster
        self.aggregate_leaves = aggregate_leaves
        self.admission = admission
        # Fail fast if the origin host is missing rather than at first subscribe.
        network.host(origin.host)

    def build(self, spec: RelayTreeSpec) -> RelayTree:
        """Create hosts, links and relays for every tier of ``spec``."""
        return RelayTree(
            RelayTopology(
                network=self.network,
                origin=self.origin,
                spec=spec,
                session_config=self.session_config,
                port=self.port,
                failover_policy=self.failover_policy,
                uplink_connection=self.uplink_connection,
                subscriber_connection=self.subscriber_connection,
                downstream_connection=self.downstream_connection,
                origin_cluster=self.origin_cluster,
                aggregate_leaves=self.aggregate_leaves,
                admission=self.admission,
            )
        )
