"""Live relay topology: membership, failover and load-aware placement.

PR 1 built relay trees once and never touched them again; real CDN edges
join, leave and crash mid-stream.  :class:`RelayTopology` is the membership
registry a running tree lives in:

* :meth:`RelayTopology.add_relay` grows a tier while traffic flows — the new
  relay attaches below the least-loaded parent and starts aggregating as
  soon as its first subscriber arrives;
* :meth:`RelayTopology.remove_relay` drains a relay gracefully: its subtree
  is re-homed first (children switch their uplink, subscribers re-attach),
  then the relay shuts down;
* :meth:`RelayTopology.kill_relay` simulates a crash with a control-plane
  oracle: the relay vanishes silently and the topology re-homes every
  orphan in the same instant through a pluggable :class:`FailoverPolicy` —
  the least-loaded *sibling* of the dead relay by default, its
  *grandparent* (or the origin) when no sibling survives;
* :meth:`RelayTopology.crash_relay` is the oracle-free fault injector: the
  relay vanishes and *nobody is told*.  Failover waits until some orphan's
  QUIC transport notices — consecutive probe timeouts on a keepalive'd
  uplink, or an idle expiry on a receive-only subscriber session — and the
  wired liveness handlers call :meth:`RelayTopology.report_failure`, the
  in-band entry point to the same evacuation machinery (E13).

Re-homed relays keep their established downstream subscriptions: the MoQT
layer (:meth:`repro.moqt.relay.MoqtRelay.switch_upstream`) re-subscribes
each live track through the new parent, fills the gap between the last
delivered and the first live object with a FETCH against the new parent's
cache, and deduplicates by (group, object) ID so subscribers observe a
gapless, duplicate-free sequence across the failure.  Orphaned subscribers
get the same treatment one layer down: a fresh session to the least-loaded
surviving leaf, a re-subscribe, and a gap FETCH.

Subscriber placement is load-aware: :meth:`RelayTopology.attach_subscribers`
assigns each new subscriber to the least-loaded alive leaf (ties broken by
relay age), which degenerates to PR 1's round-robin while all leaves live —
the static-tree wire trace is unchanged — but steers load away from hot or
dying edges the moment the tree stops being static.

Every failover produces a :class:`FailoverEvent` whose per-orphan
:class:`FailoverRecord` timestamps measure re-attach latency; the E12 churn
experiment (:mod:`repro.experiments.relay_churn`) reports them per tier and
checks them against the closed-form model in :mod:`repro.analysis.churn`.
"""

from __future__ import annotations

import random
from bisect import insort
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol

from repro.moqt.errors import AdmissionRejectedError, SubscribeErrorCode
from repro.moqt.objectmodel import Location, MoqtObject
from repro.moqt.relay import (
    DEDUPE_PRUNE_THRESHOLD,
    DEFAULT_MOQT_PORT,
    MOQT_ALPN,
    OPEN_RANGE_END,
    MoqtRelay,
    RecoveryBuffer,
    prune_seen_locations,
)
from repro.moqt.session import MoqtSession, MoqtSessionConfig, Subscription
from repro.moqt.track import FullTrackName
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Address
from repro.quic.connection import ConnectionConfig
from repro.quic.endpoint import QuicEndpoint
from repro.relaynet.admission import AdmissionPolicy, RetryPolicy
from repro.relaynet.aggregate import AggregateLeaf, plan_leaf_assignments
from repro.relaynet.spec import RelayTreeSpec

if TYPE_CHECKING:
    from repro.relaynet.origincluster import ClusterOrigin, OriginCluster


@dataclass(eq=False)
class RelayNode:
    """One relay in a live topology."""

    tier_index: int
    tier_name: str
    index: int
    host: Host
    relay: MoqtRelay
    parent: "RelayNode | None"
    #: False once the relay has left (gracefully or by crash); dead nodes
    #: stay listed so indices and history remain stable, but they are never
    #: chosen as parents or leaves again.
    alive: bool = True
    #: Direct downstream attachments (child relays + subscribers) — the
    #: quantity load-aware placement minimises.
    load: int = 0
    #: When :meth:`RelayTopology.crash_relay` silently crashed this node
    #: (None for announced leaves/kills) — the reference point in-band
    #: detection latency is measured from.
    crashed_at: float | None = None
    #: The failover event that evacuated this node's subtree, once one ran
    #: (makes :meth:`RelayTopology.report_failure` idempotent when several
    #: orphans detect the same death).
    failure_event: "FailoverEvent | None" = None

    @property
    def address(self) -> Address:
        """Address downstream sessions (children or subscribers) connect to."""
        return self.relay.address

    @property
    def upstream_host(self) -> str:
        """Host address of the node's parent (origin for tier 0)."""
        return self.relay.upstream_address.host


@dataclass(slots=True)
class _SubscriberTrack:
    """One track a subscriber follows, with dedupe and re-attach state."""

    full_track_name: FullTrackName
    on_object: Callable[[MoqtObject], None] | None
    subscription: Subscription | None = None
    seen: set[Location] = field(default_factory=set)
    largest: Location | None = None
    #: Monotonic count of distinct objects handed to the application (the
    #: ``seen`` dedupe set is pruned, so its size is not a delivery count).
    delivered: int = 0
    duplicates_dropped: int = 0
    #: While a gap FETCH is outstanding after a re-attach, live objects are
    #: buffered so the recovered gap is delivered first, in order (same
    #: machinery as the relay's upstream-switch recovery).
    recovery: RecoveryBuffer = field(default_factory=RecoveryBuffer)


@dataclass(eq=False, slots=True)
class TreeSubscriber:
    """A leaf MoQT client attached below an edge relay.

    The subscriber owns the client-side half of churn tolerance: it dedupes
    deliveries by (group, object) ID, and after a re-attach it buffers the
    new leaf's live stream until the gap FETCH has been delivered, so the
    application callback observes every object exactly once, in order, no
    matter how many relays died in between.
    """

    index: int
    host: Host
    session: MoqtSession
    leaf: RelayNode
    config: MoqtSessionConfig | None = None
    tracks: list[_SubscriberTrack] = field(default_factory=list)
    reattach_count: int = 0
    gap_fetches: int = 0
    #: How many subscribers this object stands in for.  1 for every dense
    #: subscriber; an aggregate-leaf representative carries its group's
    #: member count, and every statistic collectors read off it (bytes,
    #: objects, QUIC counters) is multiplied by this at collection time.
    multiplicity: int = 1

    # ---------------------------------------------------------- subscriptions
    def subscribe_track(
        self,
        full_track_name: FullTrackName,
        on_object: Callable[[MoqtObject], None] | None = None,
        on_response: Callable[[Subscription], None] | None = None,
    ) -> Subscription:
        """Subscribe to a track with duplicate-free delivery to ``on_object``.

        ``on_response`` fires with the answered subscription — the hook the
        topology's admission retry-with-backoff machinery hangs off.
        """
        track = _SubscriberTrack(full_track_name=full_track_name, on_object=on_object)
        self.tracks.append(track)
        track.subscription = self.session.subscribe(
            full_track_name,
            on_object=lambda obj, t=track: self.deliver(t, obj),
            on_response=on_response,
        )
        return track.subscription

    # --------------------------------------------------------------- delivery
    def deliver(self, track: _SubscriberTrack, obj: MoqtObject) -> None:
        if track.recovery.intercept(obj):
            return
        self._deliver_now(track, obj)

    def _deliver_now(self, track: _SubscriberTrack, obj: MoqtObject) -> None:
        if obj.location in track.seen:
            track.duplicates_dropped += 1
            return
        track.seen.add(obj.location)
        track.delivered += 1
        if track.largest is None or obj.location > track.largest:
            track.largest = obj.location
        if len(track.seen) > DEDUPE_PRUNE_THRESHOLD:
            track.seen = prune_seen_locations(track.seen, track.largest)
        # Span tracing (delivery leg): observational only.  getattr guards
        # stub hosts/networks used by unit tests.
        host = self.host
        network = host.network if host is not None else None
        telemetry = getattr(network, "telemetry", None)
        if telemetry is not None and telemetry.spans is not None:
            telemetry.spans.record_delivery(
                obj.location,
                self.leaf.host.address,
                self.index,
                host.simulator.now,
            )
        if track.on_object is not None:
            track.on_object(obj)

    def flush_track(self, track: _SubscriberTrack) -> None:
        """Release buffered live objects (ordered, deduplicated)."""
        track.recovery.release(lambda obj: self._deliver_now(track, obj))

    def finish_gap_fetch(
        self, track: _SubscriberTrack, fetch_request, session: MoqtSession | None = None
    ) -> None:
        """Deliver a completed gap FETCH, then the buffered live stream.

        ``session`` is the session the fetch was issued on.  A fetch that
        *failed because that session died* (closed mid-flight, or already
        replaced by a newer re-attach) must not release the recovery buffer:
        flushing would advance the dedupe high-water mark past the
        unrecovered gap and the next re-attach's resume point would skip it
        forever.  The next re-attach re-arms or flushes the buffer itself.
        """
        if (
            not fetch_request.succeeded
            and session is not None
            and (session.closed or session is not self.session)
        ):
            return
        if fetch_request.succeeded:
            for obj in sorted(fetch_request.objects, key=lambda o: o.location):
                self._deliver_now(track, obj)
        self.flush_track(track)

    # ------------------------------------------------------------- statistics
    @property
    def duplicates_dropped(self) -> int:
        """Duplicate deliveries suppressed across all tracks."""
        return sum(track.duplicates_dropped for track in self.tracks)

    @property
    def objects_delivered(self) -> int:
        """Distinct objects handed to application callbacks."""
        return sum(track.delivered for track in self.tracks)


# ------------------------------------------------------------------- failover
class FailoverPolicy(Protocol):
    """Chooses the new parent for a relay orphaned by a failed node.

    Returning ``None`` delegates to the structural fallback: the dead
    relay's own parent (the orphan's grandparent), or the origin when the
    dead relay sat directly below it.
    """

    def choose_parent(
        self, topology: "RelayTopology", orphan: RelayNode, dead: RelayNode
    ) -> RelayNode | None:
        """Pick a new parent for ``orphan`` after ``dead`` failed."""


class SiblingFailover:
    """Re-home orphans under the least-loaded surviving sibling of the dead
    relay (same tier), falling back to the grandparent when the whole tier
    is gone.  Keeps the tree's depth — and therefore its fan-out arithmetic —
    intact across failures."""

    def choose_parent(
        self, topology: "RelayTopology", orphan: RelayNode, dead: RelayNode
    ) -> RelayNode | None:
        siblings = [
            node
            for node in topology.tiers[dead.tier_index]
            if node.alive and node is not dead
        ]
        if not siblings:
            return None
        return min(siblings, key=lambda node: (node.load, node.index))


class GrandparentFailover:
    """Always re-home orphans under the dead relay's own parent (or the
    origin).  Shortens the orphan's path at the price of concentrating load
    one tier up — the policy to compare sibling failover against."""

    def choose_parent(
        self, topology: "RelayTopology", orphan: RelayNode, dead: RelayNode
    ) -> RelayNode | None:
        return None


@dataclass
class FailoverRecord:
    """One orphan's journey to its new parent."""

    kind: str  # "relay" | "subscriber"
    name: str
    tier: str
    new_parent: str
    detached_at: float
    reattached_at: float | None = None

    def mark_reattached(self, now: float) -> None:
        """Record the first successful re-subscription (idempotent)."""
        if self.reattached_at is None:
            self.reattached_at = now

    @property
    def reattach_latency(self) -> float | None:
        """Seconds from failure to an accepted re-subscription."""
        if self.reattached_at is None:
            return None
        return self.reattached_at - self.detached_at


@dataclass
class FailoverEvent:
    """Everything one join/leave/kill/detected-failure did to the tree."""

    cause: str  # "kill" | "leave" | "detected"
    node: str
    tier: str
    at: float
    records: list[FailoverRecord] = field(default_factory=list)
    #: Operator-supplied diagnostic for announced kills/leaves (a silent
    #: crash sends no reason anywhere — that is its defining property).
    reason: str = ""
    #: How the failure surfaced when ``cause == "detected"``: the transport
    #: liveness cause of the first orphan to notice (``"pto-suspect"``,
    #: ``"idle-timeout"`` or ``"pto-give-up"``).
    detected_via: str = ""
    #: Seconds from the silent crash (:attr:`RelayNode.crashed_at`) to the
    #: first in-band report; None for control-plane-announced events.
    detection_latency: float | None = None
    #: Structured terminal failure, when the evacuation could not re-home
    #: every orphan: ``"no-surviving-parent"`` (relay orphans with a dead
    #: origin as the only fallback, or subscribers with no alive leaf) or
    #: ``"no-surviving-origin"`` (an origin death with no standby left).
    #: Stranded orphans carry an empty ``new_parent`` in their records.
    error: str = ""
    #: The origin-cluster epoch this event promoted *to*, for origin-tier
    #: events that elected a successor; None everywhere else.
    epoch: int | None = None

    @property
    def complete(self) -> bool:
        """Whether every orphan has re-attached."""
        return all(record.reattached_at is not None for record in self.records)

    def orphans(self, kind: str | None = None) -> list[FailoverRecord]:
        """All orphan records, optionally filtered by kind."""
        if kind is None:
            return list(self.records)
        return [record for record in self.records if record.kind == kind]

    def latencies_by_tier(self) -> dict[str, list[float]]:
        """Re-attach latencies grouped by the orphan's tier."""
        grouped: dict[str, list[float]] = {}
        for record in self.records:
            latency = record.reattach_latency
            if latency is None:
                continue
            grouped.setdefault(record.tier, []).append(latency)
        return grouped


class NoSurvivingParentError(RuntimeError):
    """A failover found orphans with nowhere alive to re-attach.

    Raised by :meth:`RelayTopology.report_failure` /
    :meth:`RelayTopology.report_origin_failure` *after* the failover event
    has been fully recorded: ``event.error`` names the condition and each
    stranded orphan has a :class:`FailoverRecord` with an empty
    ``new_parent``, so the terminal state is observable whether or not the
    caller can propagate the exception.  The wired in-band liveness handlers
    swallow it — a transport callback must never unwind the event loop —
    which is why the event, not the exception, is the source of truth.
    """

    def __init__(self, message: str, event: FailoverEvent) -> None:
        super().__init__(message)
        self.event = event


# ------------------------------------------------------------------- admission
@dataclass
class AdmissionRecord:
    """One flash-crowd subscriber's journey through admission control.

    The admission-side sibling of :class:`FailoverRecord`: joined/admitted
    timestamps bracket the join latency, and the retry schedule (absolute
    simulator times each retry was scheduled for) is what the determinism
    property tests compare across seeded replays.
    """

    name: str
    leaf: str
    joined_at: float
    attempts: int = 0
    rejections: int = 0
    queue_rejections: int = 0
    spillovers: int = 0
    #: Absolute simulator times retries were scheduled to fire at, in order.
    retry_schedule: list[float] = field(default_factory=list)
    admitted_at: float | None = None
    #: True once the retry budget ran out: this subscriber will never be
    #: admitted and :meth:`FlashCrowdStorm.raise_for_failures` reports it.
    terminal: bool = False

    def mark_admitted(self, now: float) -> None:
        """Record the first accepted SUBSCRIBE (idempotent)."""
        if self.admitted_at is None:
            self.admitted_at = now

    @property
    def join_latency(self) -> float | None:
        """Seconds from the join to an accepted subscription."""
        if self.admitted_at is None:
            return None
        return self.admitted_at - self.joined_at


@dataclass
class FlashCrowdStorm:
    """Everything one :meth:`RelayTopology.flash_crowd` injection produced."""

    count: int
    window: float
    started_at: float
    full_track_name: FullTrackName
    records: list[AdmissionRecord] = field(default_factory=list)
    subscribers: list[TreeSubscriber] = field(default_factory=list)

    @property
    def admitted(self) -> int:
        """Stormers whose subscription was eventually accepted."""
        return sum(1 for record in self.records if record.admitted_at is not None)

    @property
    def rejections(self) -> int:
        """Total SUBSCRIBE_ERROR(TOO_MANY_SUBSCRIBERS) answers observed."""
        return sum(record.rejections + record.queue_rejections for record in self.records)

    @property
    def retries(self) -> int:
        """Total retry SUBSCRIBEs issued (attempts beyond each first try)."""
        return sum(max(0, record.attempts - 1) for record in self.records)

    @property
    def spillovers(self) -> int:
        """Total sibling-leaf re-routes performed before admission."""
        return sum(record.spillovers for record in self.records)

    @property
    def complete(self) -> bool:
        """Whether every stormer has been admitted."""
        return self.admitted == len(self.records)

    @property
    def completion_time(self) -> float | None:
        """Seconds from storm start to the last admission (None while open)."""
        if not self.records or not self.complete:
            return None
        return max(record.admitted_at for record in self.records) - self.started_at

    def join_latencies(self) -> list[float]:
        """Per-stormer join latencies, in join order (admitted only)."""
        return [
            record.join_latency
            for record in self.records
            if record.join_latency is not None
        ]

    def raise_for_failures(self) -> None:
        """Surface the first terminal rejection as an exception.

        Retry exhaustion is detected inside transport callbacks, which must
        never unwind the event loop (the :class:`NoSurvivingParentError`
        precedent), so the terminal state lands on the record; callers
        invoke this after the simulation settles to turn it into a raised
        :class:`~repro.moqt.errors.AdmissionRejectedError`.
        """
        for record in self.records:
            if record.terminal:
                raise AdmissionRejectedError(self.full_track_name, record.attempts)


# ------------------------------------------------------------------- topology
class RelayTopology:
    """The live membership view of a relay hierarchy.

    Owns the tiers, the parent/child structure, subscriber placement and
    failover.  :class:`~repro.relaynet.builder.RelayTree` and
    :class:`~repro.relaynet.builder.RelayTreeBuilder` are thin construction
    fronts over this class.

    Parameters
    ----------
    network:
        The network relay hosts and links live on.
    origin:
        Address of the origin MoQT publisher; its host must already exist.
    spec:
        The declarative shape to instantiate initially.
    session_config:
        MoQT session configuration shared by relays (and, by default, by
        subscribers attached later).
    port:
        Port every relay accepts downstream sessions on.
    failover_policy:
        How orphans pick a new parent; :class:`SiblingFailover` by default.
    uplink_connection:
        QUIC configuration for every relay's uplink.  In-band failure
        detection (E13) enables keepalives here so a silently crashed parent
        is noticed through probe timeouts; the default (None) keeps the
        historical wire-identical configuration.
    subscriber_connection:
        QUIC configuration for subscriber sessions; E13 shortens the idle
        timeout here so orphaned subscribers notice a dead leaf in-band.
    downstream_connection:
        QUIC configuration applied to every relay's *accepted* downstream
        connections — the sender side of each fan-out hop.  E15 installs a
        NewReno congestion controller here so constrained, lossy access
        links are driven with a real window; the default (None) keeps the
        historical wire-identical configuration.
    origin_cluster:
        The replicated origin this tree hangs off, when the origin is a
        :class:`~repro.relaynet.origincluster.OriginCluster` rather than a
        singleton.  Tier-0 relays get pre-established links to every
        standby (links only — no traffic, so a never-failing run stays
        wire-identical), and a tier-0 uplink death is routed through
        :meth:`report_origin_failure` instead of being unreportable.
    """

    def __init__(
        self,
        network: Network,
        origin: Address,
        spec: RelayTreeSpec,
        session_config: MoqtSessionConfig | None = None,
        port: int = DEFAULT_MOQT_PORT,
        failover_policy: FailoverPolicy | None = None,
        uplink_connection: ConnectionConfig | None = None,
        subscriber_connection: ConnectionConfig | None = None,
        downstream_connection: ConnectionConfig | None = None,
        origin_cluster: "OriginCluster | None" = None,
        aggregate_leaves: bool = False,
        admission: AdmissionPolicy | None = None,
    ) -> None:
        self.network = network
        self.origin = origin
        self.origin_cluster = origin_cluster
        self.spec = spec
        self.session_config = session_config if session_config is not None else MoqtSessionConfig()
        self.port = port
        self.failover_policy = failover_policy if failover_policy is not None else SiblingFailover()
        self.uplink_connection = uplink_connection
        self.subscriber_connection = subscriber_connection
        self.downstream_connection = downstream_connection
        #: Admission policy installed on every relay (each relay gets its own
        #: controller state).  None — the default — is the historical
        #: admit-everything behaviour with zero overhead and unchanged wire
        #: bytes; flash-crowd deployments pass a limited policy here.
        self.admission = admission
        #: When True, :meth:`attach_subscribers` collapses each leaf's
        #: homogeneous population into one counted representative
        #: (:mod:`repro.relaynet.aggregate`); span-sampled indices and
        #: churned members still run dense.
        self.aggregate_leaves = aggregate_leaves
        self.tiers: list[list[RelayNode]] = []
        self.subscribers: list[TreeSubscriber] = []
        #: Aggregate groups created by counted attaches (dissolved groups
        #: stay listed, inert, so split history remains inspectable).
        self.aggregates: list[AggregateLeaf] = []
        #: Fired as ``hook(member, representative)`` the moment an
        #: aggregated member is materialised, before it sees any new
        #: traffic — experiments use it to copy per-subscriber accumulator
        #: state (delivery sequences) from the representative.
        self.on_subscriber_split: Callable[[TreeSubscriber, TreeSubscriber], None] | None = None
        #: Every join/leave/kill/detected failover applied to the tree, in order.
        self.events: list[FailoverEvent] = []
        self._tier_created: list[int] = []
        self._subscribers_created = 0
        self._nodes_by_relay: dict[MoqtRelay, RelayNode] = {}
        self._groups_by_rep: dict[TreeSubscriber, AggregateLeaf] = {}
        # Fail fast if the origin host is missing rather than at first subscribe.
        network.host(origin.host)
        self._build(spec)

    # ------------------------------------------------------------ construction
    def _build(self, spec: RelayTreeSpec) -> None:
        """Instantiate the initial tree (identical wiring order to PR 1's
        builder, so seeded runs stay bit-identical on the wire)."""
        for tier_index, tier_spec in enumerate(spec.tiers):
            hosts = self.network.add_hosts(
                f"{spec.host_prefix}-{tier_spec.name}", tier_spec.relays
            )
            if tier_index == 0:
                # The whole top tier hangs off the origin: a star.
                self.network.connect_star(self.origin.host, hosts, tier_spec.uplink)
            nodes: list[RelayNode] = []
            self.tiers.append(nodes)
            self._tier_created.append(0)
            for host in hosts:
                self._add_node(tier_index, host, parent=None, connect=tier_index > 0)

    def _add_node(
        self,
        tier_index: int,
        host: Host,
        parent: RelayNode | None,
        connect: bool,
    ) -> RelayNode:
        tier_spec = self.spec.tiers[tier_index]
        if tier_index == 0:
            parent = None
            upstream = self.origin
            self._prewire_standby_links(host, tier_spec.uplink)
        else:
            if parent is None:
                parent = self._pick_parent(tier_index)
            upstream = parent.address
        if connect:
            anchor = parent.host if parent is not None else self.network.host(self.origin.host)
            self.network.connect(anchor, host, tier_spec.uplink)
        relay = MoqtRelay(
            host,
            upstream=upstream,
            port=self.port,
            session_config=self.session_config,
            tier=tier_spec.name,
            upstream_connection=self.uplink_connection,
            downstream_connection=self.downstream_connection,
            admission=self.admission,
        )
        relay.on_uplink_dying = self._on_relay_uplink_dying
        index = self._tier_created[tier_index]
        self._tier_created[tier_index] = index + 1
        node = RelayNode(
            tier_index=tier_index,
            tier_name=tier_spec.name,
            index=index,
            host=host,
            relay=relay,
            parent=parent,
        )
        if parent is not None:
            parent.load += 1
        self.tiers[tier_index].append(node)
        self._nodes_by_relay[relay] = node
        return node

    def _prewire_standby_links(self, host: Host, uplink) -> None:
        """Pre-establish links from a tier-0 relay host to every standby.

        Links only — no connections, no traffic, no scheduled events — so a
        cluster that never fails adds zero wire bytes; but when a promotion
        re-points tier-0 uplinks at a standby, the path already exists and
        the re-attach pays pure handshake RTTs, exactly like a relay-tier
        failover.
        """
        if self.origin_cluster is None:
            return
        for origin in self.origin_cluster.origins:
            if origin.index == 0:
                continue  # the initial active is linked by connect_star
            if not self.network.has_link(origin.host.address, host.address):
                self.network.connect(origin.host, host, uplink)

    # -------------------------------------------------------------- structure
    def nodes(self) -> list[RelayNode]:
        """Every relay node ever created, top tier first (including dead)."""
        return [node for tier in self.tiers for node in tier]

    def alive_nodes(self) -> list[RelayNode]:
        """Every relay currently part of the tree."""
        return [node for node in self.nodes() if node.alive]

    def leaves(self) -> list[RelayNode]:
        """The relays subscribers attach to (the last tier)."""
        return list(self.tiers[-1])

    def alive_leaves(self) -> list[RelayNode]:
        """Last-tier relays still accepting subscribers."""
        return [node for node in self.tiers[-1] if node.alive]

    def tier(self, name: str) -> list[RelayNode]:
        """All nodes of the tier with the given name."""
        for tier_spec, nodes in zip(self.spec.tiers, self.tiers):
            if tier_spec.name == name:
                return list(nodes)
        raise KeyError(f"no tier named {name!r}")

    def children(self, node: RelayNode) -> list[RelayNode]:
        """Alive child relays currently attached below ``node``."""
        if node.tier_index + 1 >= len(self.tiers):
            return []
        return [
            child
            for child in self.tiers[node.tier_index + 1]
            if child.alive and child.parent is node
        ]

    @property
    def relay_count(self) -> int:
        """Total number of relays ever built (including departed ones)."""
        return sum(len(tier) for tier in self.tiers)

    @property
    def alive_relay_count(self) -> int:
        """Relays currently part of the tree."""
        return len(self.alive_nodes())

    def _tier_index(self, tier: str | int) -> int:
        if isinstance(tier, int):
            if not 0 <= tier < len(self.tiers):
                raise IndexError(f"no tier {tier}")
            return tier
        for index, tier_spec in enumerate(self.spec.tiers):
            if tier_spec.name == tier:
                return index
        raise KeyError(f"no tier named {tier!r}")

    # --------------------------------------------------------------- placement
    def _pick_parent(self, tier_index: int) -> RelayNode:
        """Least-loaded alive relay in the tier above (ties: oldest first)."""
        candidates = [node for node in self.tiers[tier_index - 1] if node.alive]
        if not candidates:
            raise RuntimeError(
                f"tier {self.spec.tiers[tier_index - 1].name!r} has no alive relays"
            )
        return min(candidates, key=lambda node: (node.load, node.index))

    def _pick_leaf(self) -> RelayNode:
        """Least-loaded alive leaf (ties: oldest first).

        With every leaf alive and subscribers only ever added, this is
        exactly round-robin — the static fan-out experiments keep their
        wire-identical placement — but it skips dead leaves and absorbs
        imbalance the moment the tree churns.
        """
        candidates = self.alive_leaves()
        if not candidates:
            raise RuntimeError("no alive leaf relays to attach subscribers to")
        return min(candidates, key=lambda node: (node.load, node.index))

    # ------------------------------------------------------------- subscribers
    def attach_subscribers(
        self,
        count: int,
        session_config: MoqtSessionConfig | None = None,
        host_prefix: str = "sub",
    ) -> list[TreeSubscriber]:
        """Create ``count`` subscriber hosts below the leaf tier.

        Each subscriber lands on the least-loaded alive leaf and opens an
        MoQT session to it immediately.  Call repeatedly to grow the
        population; host names continue from the total ever created.

        With :attr:`aggregate_leaves` set, the same placement runs counted:
        one representative per leaf group, dense materialisation only for
        span-sampled indices (see :meth:`_attach_subscribers_aggregate`).
        """
        config = session_config if session_config is not None else self.session_config
        if self.aggregate_leaves:
            return self._attach_subscribers_aggregate(count, config, host_prefix)
        created: list[TreeSubscriber] = []
        # One batching region around the whole population: every subscriber's
        # first handshake flight collapses into one link-batch event instead
        # of one heap event per subscriber (the replies batch recursively).
        self.network.begin_batch()
        try:
            for _ in range(count):
                index = self._subscribers_created
                self._subscribers_created += 1
                leaf = self._pick_leaf()
                host = self.network.add_host(f"{host_prefix}-{index}")
                self.network.connect(leaf.host, host, self.spec.subscriber_link)
                session = self._open_subscriber_session(host, leaf, config)
                subscriber = TreeSubscriber(
                    index=index, host=host, session=session, leaf=leaf, config=config
                )
                self._watch_subscriber_session(subscriber)
                leaf.load += 1
                created.append(subscriber)
        finally:
            self.network.end_batch()
        self.subscribers.extend(created)
        return created

    def _attach_subscribers_aggregate(
        self, count: int, config: MoqtSessionConfig, host_prefix: str
    ) -> list[TreeSubscriber]:
        """Counted attach: identical placement, one connection per leaf group.

        Placement is planned with the same (load, index) least-loaded rule
        the dense loop applies sequentially, so per-leaf populations — and
        therefore every multiplied statistic — match the dense run exactly.
        Span-sampled indices (``index % subscriber_sample_every == 0`` under
        an active tracer) are materialised dense immediately so latency
        breakdowns keep real per-subscriber delivery timestamps; everyone
        else rides a representative with ``multiplicity = group size``.
        Connection IDs come from index-derived private RNG streams, leaving
        the global seeded stream untouched (creating 1M subscribers or 26
        stand-ins draws the same zero values from it).
        """
        leaves = self.alive_leaves()
        if not leaves:
            raise RuntimeError("no alive leaf relays to attach subscribers to")
        telemetry = getattr(self.network, "telemetry", None)
        stride = 0
        if telemetry is not None and telemetry.spans is not None:
            stride = telemetry.spans.subscriber_sample_every
        start = self._subscribers_created
        assignments = plan_leaf_assignments(leaves, count, start)
        self._subscribers_created += count
        # Per-index plan built ascending so self.subscribers keeps the dense
        # run's ordering (ascending by index).
        plan: dict[int, tuple[RelayNode, AggregateLeaf | None]] = {}
        for leaf, indices in zip(leaves, assignments):
            if not indices:
                continue
            leaf.load += len(indices)
            sampled = [i for i in indices if stride and i % stride == 0]
            counted = [i for i in indices if not (stride and i % stride == 0)]
            for index in sampled:
                plan[index] = (leaf, None)
            group = None
            if len(counted) == 1:
                plan[counted[0]] = (leaf, None)
            elif counted:
                group = AggregateLeaf(
                    leaf=leaf, member_indices=counted, host_prefix=host_prefix
                )
                plan[counted[0]] = (leaf, group)
            # Dense-identical TLS ticket issuance.  The dense run hands this
            # leaf's k-th arriving subscriber ticket id base+k; reserve
            # exactly those ids for the connections that really open here
            # (ascending index = per-leaf arrival order) and jump the
            # counter past the whole population so post-churn reconnects
            # also draw dense-identical ids.  The ids are decimal strings
            # on the wire, so the width difference between the counted
            # members' dense tickets and the representative's — the one
            # per-member heterogeneity in an otherwise replicated handshake
            # — is recorded as this group's exact byte deficit.
            context = leaf.relay.server_tls
            base = context.next_ticket_id - 1
            dense_ticket = {
                index: base + position + 1 for position, index in enumerate(indices)
            }
            real = sorted(sampled + counted[:1])
            context.queue_ticket_ids(
                [dense_ticket[index] for index in real], base + len(indices) + 1
            )
            if group is not None:
                rep_width = len(str(dense_ticket[counted[0]]))
                group.handshake_byte_deficit = sum(
                    len(str(dense_ticket[index])) for index in counted
                ) - len(counted) * rep_width
        created: list[TreeSubscriber] = []
        self.network.begin_batch()
        try:
            for index in sorted(plan):
                leaf, group = plan[index]
                host = self.network.add_host(f"{host_prefix}-{index}")
                self.network.connect(leaf.host, host, self.spec.subscriber_link)
                session = self._open_subscriber_session(
                    host, leaf, config, rng=random.Random(index)
                )
                multiplicity = group.multiplicity if group is not None else 1
                subscriber = TreeSubscriber(
                    index=index,
                    host=host,
                    session=session,
                    leaf=leaf,
                    config=config,
                    multiplicity=multiplicity,
                )
                self._watch_subscriber_session(subscriber)
                if group is not None:
                    group.representative = subscriber
                    self.aggregates.append(group)
                    self._groups_by_rep[subscriber] = group
                    downlink = self.network.link(leaf.host.address, host.address)
                    downlink.multiplicity = multiplicity
                    # ServerHellos flow leaf -> subscriber, so the ticket-id
                    # width correction lands on the downlink only.
                    downlink.extra_bytes = group.handshake_byte_deficit
                    self.network.link(host.address, leaf.host.address).multiplicity = multiplicity
                created.append(subscriber)
        finally:
            self.network.end_batch()
        self.subscribers.extend(created)
        return created

    @property
    def subscriber_population(self) -> int:
        """Total subscribers represented (dense count plus multiplicities)."""
        return sum(subscriber.multiplicity for subscriber in self.subscribers)

    def split_subscriber(self, subscriber_index: int) -> TreeSubscriber:
        """Materialise one aggregated member as a live dense subscriber.

        The member gets its own host, session (index-derived connection-ID
        stream) and cloned dedupe/recovery state, re-subscribes to every
        live track with the standard resume-and-gap-FETCH machinery, and is
        inserted into :attr:`subscribers` at its index position.  Raises
        ``ValueError`` for indices that are not currently aggregated.
        """
        for group in self.aggregates:
            if group.dissolved or subscriber_index not in group.member_indices:
                continue
            member = group.split(self, subscriber_index, connect=True)
            insort(self.subscribers, member, key=lambda s: s.index)
            return member
        raise ValueError(f"subscriber {subscriber_index} is not aggregated")

    def _open_subscriber_session(
        self,
        host: Host,
        leaf: RelayNode,
        config: MoqtSessionConfig,
        rng: random.Random | None = None,
    ) -> MoqtSession:
        endpoint = QuicEndpoint(host, rng=rng)
        connection_config = self.subscriber_connection
        if connection_config is None:
            connection_config = ConnectionConfig(alpn_protocols=(MOQT_ALPN,))
        connection = endpoint.connect(leaf.address, connection_config)
        return MoqtSession(connection, is_client=True, config=config)

    def _watch_subscriber_session(self, subscriber: TreeSubscriber) -> None:
        """Surface the subscriber session's in-band liveness to the topology."""
        subscriber.session.on_liveness = (
            lambda session, old, new, sub=subscriber: self._on_subscriber_liveness(
                sub, session, new
            )
        )

    def subscribe_all(
        self,
        full_track_name: FullTrackName,
        on_object: Callable[[TreeSubscriber, MoqtObject], None] | None = None,
        subscribers: list[TreeSubscriber] | None = None,
    ) -> list[Subscription]:
        """Subscribe every (given or attached) subscriber to one track."""
        targets = subscribers if subscribers is not None else self.subscribers
        subscriptions: list[Subscription] = []
        self.network.begin_batch()
        try:
            for subscriber in targets:
                callback = None
                if on_object is not None:
                    callback = lambda obj, sub=subscriber: on_object(sub, obj)
                subscriptions.append(subscriber.subscribe_track(full_track_name, callback))
                group = self._groups_by_rep.get(subscriber)
                if group is not None:
                    # Remember the raw two-arg callback so a member
                    # materialised later delivers to the same application
                    # hook the dense subscriber would have.
                    group.record_track_callback(len(subscriber.tracks) - 1, on_object)
        finally:
            self.network.end_batch()
        return subscriptions

    # -------------------------------------------------------------- flash crowd
    def flash_crowd(
        self,
        count: int,
        window: float,
        full_track_name: FullTrackName,
        on_object: Callable[[TreeSubscriber, MoqtObject], None] | None = None,
        session_config: MoqtSessionConfig | None = None,
        host_prefix: str = "storm",
        retry: RetryPolicy | None = None,
        leaf: "RelayNode | None" = None,
    ) -> FlashCrowdStorm:
        """Inject a subscribe storm: ``count`` joins inside ``window`` seconds.

        Join ``i`` fires at ``now + (i * window) / count`` (evenly spaced,
        all strictly inside the window); each join creates a host below the
        least-loaded alive leaf — or below ``leaf`` when one is pinned,
        modelling the geographically concentrated crowd that slams a single
        edge relay — opens a session and subscribes to ``full_track_name``
        under the admission retry contract:

        * a ``TOO_MANY_SUBSCRIBERS`` rejection waits the advertised
          ``retry_after`` (the relay's reservation makes exactly one retry
          sufficient) or, absent a hint, a jittered exponential backoff
          drawn from the seeded simulator RNG;
        * before retrying the original leaf, the subscriber spills to the
          least-loaded *non-saturated* sibling leaf (bounded by
          ``retry.max_spillovers``), turning local overload into tree-wide
          load spreading;
        * ``retry.max_attempts`` rejections turn the record terminal —
          :meth:`FlashCrowdStorm.raise_for_failures` surfaces
          :class:`~repro.moqt.errors.AdmissionRejectedError` after the run.

        Returns immediately with the (empty) storm object; run the
        simulator to let the joins fire and drain.
        """
        if count < 1:
            raise ValueError(f"flash crowd needs at least one subscriber: {count}")
        if window < 0:
            raise ValueError(f"storm window must be non-negative: {window}")
        simulator = self.network.simulator
        config = session_config if session_config is not None else self.session_config
        policy = retry if retry is not None else RetryPolicy()
        storm = FlashCrowdStorm(
            count=count,
            window=window,
            started_at=simulator.now,
            full_track_name=full_track_name,
        )
        for index in range(count):
            simulator.call_later(
                (index * window) / count,
                self._storm_join,
                storm,
                config,
                host_prefix,
                on_object,
                policy,
                leaf,
            )
        return storm

    def _storm_join(
        self,
        storm: FlashCrowdStorm,
        config: MoqtSessionConfig,
        host_prefix: str,
        on_object: Callable[[TreeSubscriber, MoqtObject], None] | None,
        retry: RetryPolicy,
        pinned_leaf: "RelayNode | None" = None,
    ) -> None:
        """One storm participant arrives: host, link, session, subscribe."""
        index = self._subscribers_created
        self._subscribers_created += 1
        leaf = pinned_leaf if pinned_leaf is not None else self._pick_leaf()
        host = self.network.add_host(f"{host_prefix}-{index}")
        self.network.connect(leaf.host, host, self.spec.subscriber_link)
        session = self._open_subscriber_session(host, leaf, config)
        subscriber = TreeSubscriber(
            index=index, host=host, session=session, leaf=leaf, config=config
        )
        self._watch_subscriber_session(subscriber)
        leaf.load += 1
        self.subscribers.append(subscriber)
        storm.subscribers.append(subscriber)
        record = AdmissionRecord(
            name=host.address,
            leaf=leaf.host.address,
            joined_at=self.network.simulator.now,
        )
        storm.records.append(record)
        callback = None
        if on_object is not None:
            callback = lambda obj, sub=subscriber: on_object(sub, obj)
        self._admission_subscribe(subscriber, storm, record, callback, retry)

    def _admission_subscribe(
        self,
        subscriber: TreeSubscriber,
        storm: FlashCrowdStorm,
        record: AdmissionRecord,
        on_object: Callable[[MoqtObject], None] | None,
        retry: RetryPolicy,
    ) -> None:
        """Subscribe with the bounded retry / spillover admission contract."""
        simulator = self.network.simulator
        track = _SubscriberTrack(
            full_track_name=storm.full_track_name, on_object=on_object
        )
        subscriber.tracks.append(track)

        def attempt() -> None:
            record.attempts += 1
            # Always subscribe on the *current* session — spillover swaps it.
            track.subscription = subscriber.session.subscribe(
                storm.full_track_name,
                on_object=lambda obj, t=track: subscriber.deliver(t, obj),
                on_response=on_response,
            )

        def on_response(subscription: Subscription) -> None:
            if subscription.is_active:
                record.leaf = subscriber.leaf.host.address
                record.mark_admitted(simulator.now)
                return
            if subscription.error_code != int(SubscribeErrorCode.TOO_MANY_SUBSCRIBERS):
                # A hard (non-admission) refusal: no amount of backoff will
                # change the answer, so the record turns terminal at once.
                record.terminal = True
                return
            if "queue" in subscription.error_reason:
                record.queue_rejections += 1
            else:
                record.rejections += 1
            if record.attempts >= retry.max_attempts:
                record.terminal = True
                return
            if record.spillovers < retry.max_spillovers:
                target = self._pick_spillover_leaf(subscriber.leaf)
                if target is not None:
                    # Re-route to a sibling with headroom before retrying
                    # the original: the new session's handshake provides the
                    # natural pacing, no timer needed.
                    record.spillovers += 1
                    self._spill_subscriber(subscriber, target)
                    attempt()
                    return
            if subscription.retry_after_ms > 0:
                delay = subscription.retry_after_ms / 1000.0
            else:
                rejections = record.rejections + record.queue_rejections
                delay = retry.backoff_delay(rejections, simulator.rng)
            record.retry_schedule.append(simulator.now + delay)
            simulator.call_later(delay, attempt)

        attempt()

    def _pick_spillover_leaf(self, current: RelayNode) -> RelayNode | None:
        """Least-loaded alive sibling leaf that would admit a fresh arrival.

        Saturation is a pure peek at each candidate's admission controller
        (no token consumed, no reservation made); leaves without admission
        control are never saturated.  Returns None when every sibling is
        saturated — the caller falls back to backoff on the current leaf.
        """
        now = self.network.simulator.now
        candidates = []
        for node in self.alive_leaves():
            if node is current:
                continue
            controller = node.relay.admission
            if controller is not None and controller.saturated(
                now, node.relay.pending_subscribe_count()
            ):
                continue
            candidates.append(node)
        if not candidates:
            return None
        return min(candidates, key=lambda node: (node.load, node.index))

    def _spill_subscriber(self, subscriber: TreeSubscriber, target: RelayNode) -> None:
        """Move a not-yet-admitted subscriber under another leaf.

        The admission sibling of :meth:`_reattach_subscriber`: the old
        session closes (releasing its token reservation at the old leaf —
        the relay forgets reservations on session close), the link to the
        new leaf is created on first use, and loads move with the
        subscriber.  No track re-subscription happens here — the caller
        retries the SUBSCRIBE itself on the fresh session.
        """
        old_leaf = subscriber.leaf
        if not subscriber.session.closed:
            subscriber.session.close("admission spillover")
        old_leaf.load -= 1
        if not self.network.has_link(target.host.address, subscriber.host.address):
            self.network.connect(target.host, subscriber.host, self.spec.subscriber_link)
        config = subscriber.config if subscriber.config is not None else self.session_config
        subscriber.session = self._open_subscriber_session(subscriber.host, target, config)
        self._watch_subscriber_session(subscriber)
        subscriber.leaf = target
        target.load += 1

    # -------------------------------------------------------------- membership
    def add_relay(self, tier: str | int, parent: RelayNode | None = None) -> RelayNode:
        """Grow a tier by one relay while the tree runs.

        The new relay hangs below ``parent`` (least-loaded alive relay in
        the tier above when omitted) and aggregates lazily: it subscribes
        upstream when its first downstream subscriber arrives, so joining is
        free until the relay is actually used.
        """
        tier_index = self._tier_index(tier)
        tier_spec = self.spec.tiers[tier_index]
        if parent is not None:
            if tier_index == 0:
                raise ValueError("tier-0 relays attach to the origin, not a parent relay")
            if not parent.alive:
                raise ValueError(f"parent {parent.host.address} is not alive")
            if parent.tier_index != tier_index - 1:
                raise ValueError(
                    f"parent {parent.host.address} is in tier {parent.tier_name!r}, "
                    f"not the tier above {tier_spec.name!r}"
                )
        number = self._tier_created[tier_index]
        host = self.network.add_host(f"{self.spec.host_prefix}-{tier_spec.name}-{number}")
        return self._add_node(tier_index, host, parent=parent, connect=True)

    def remove_relay(self, node: RelayNode, reason: str = "relay leaving") -> FailoverEvent:
        """Gracefully drain a relay out of the tree.

        Its subtree migrates first — child relays switch their uplink,
        subscribers re-attach — while the relay still answers, then the
        relay closes its sessions and releases its ports.
        """
        self._check_alive(node)
        node.alive = False
        event = self._evacuate(node, cause="leave")
        event.reason = reason
        node.failure_event = event
        node.relay.shutdown(reason)
        return event

    def kill_relay(self, node: RelayNode, reason: str = "relay crashed") -> FailoverEvent:
        """Crash a relay mid-stream and fail its subtree over immediately.

        The crash itself is silent — the relay vanishes without a close
        frame, exactly like :meth:`crash_relay` — but this method doubles as
        the control-plane oracle the E12 churn experiment measures: the
        topology re-homes every orphan in the same instant, so the measured
        re-attach latency is the pure 3-RTT floor with zero detection cost.
        Use :meth:`crash_relay` (fault injection only) plus in-band liveness
        reporting (:meth:`report_failure`) when detection itself is under
        test (E13).  ``reason`` is recorded on the returned event — the
        crash itself is silent, so no reason ever reaches the wire.
        """
        self._check_alive(node)
        node.alive = False
        node.crashed_at = self.network.simulator.now
        node.relay.crash()
        event = self._evacuate(node, cause="kill")
        event.reason = reason
        node.failure_event = event
        return event

    def crash_relay(self, node: RelayNode) -> None:
        """Silently crash a relay *without telling the topology controller*.

        Pure fault injection: the node's process vanishes (no close frames,
        no callbacks, ports unbound) and no failover runs.  Recovery happens
        only when some orphan's transport notices — consecutive probe
        timeouts or an idle expiry — and calls :meth:`report_failure`, which
        is the E13 in-band detection path.  ``node.alive`` deliberately stays
        True: the controller does not know yet.
        """
        if node.crashed_at is not None or not node.alive:
            raise ValueError(f"relay {node.host.address} already left the tree")
        node.crashed_at = self.network.simulator.now
        node.relay.crash()

    def _check_alive(self, node: RelayNode) -> None:
        if not node.alive:
            raise ValueError(f"relay {node.host.address} already left the tree")

    # ------------------------------------------------------ in-band detection
    def _on_relay_uplink_dying(self, relay: MoqtRelay, cause: str) -> None:
        node = self._nodes_by_relay.get(relay)
        if node is None:
            return
        # The dead node is resolved *now*, at signal time: once the failover
        # has reparented this relay, any straggling liveness signal from the
        # replaced session is filtered at the relay layer, and the new
        # parent must never be blamed for the old one's death.  A terminal
        # no-surviving-parent outcome is recorded on the event before the
        # structured error is raised, so it is swallowed here: a transport
        # callback must never unwind the event loop.
        try:
            if node.parent is None:
                if self.origin_cluster is not None:
                    self.report_origin_failure(node, via=cause)
                # Without a replicated origin, nodes hanging directly off it
                # have no stand-in to fail over to; the relay's own error
                # paths handle the dead uplink.
                return
            self.report_failure(node.parent, via=cause)
        except NoSurvivingParentError:
            pass

    def _on_subscriber_liveness(
        self, subscriber: TreeSubscriber, session: MoqtSession, new: str
    ) -> None:
        if session is not subscriber.session or new == "healthy":
            return
        try:
            self.report_failure(subscriber.leaf, via=session.connection.liveness_cause)
        except NoSurvivingParentError:
            pass

    def report_failure(self, dead: RelayNode, via: str = "") -> FailoverEvent | None:
        """Some orphan's transport says ``dead`` is gone: run the failover.

        This is the in-band entry point to the same evacuation machinery the
        control-plane :meth:`kill_relay` oracle uses, minus the oracle: a
        relay whose uplink went suspect/dead, or a subscriber whose leaf
        session idled out, names the parent it lost (the wired liveness
        handlers resolve it at signal time) and the whole subtree of that
        parent is re-homed through the failover policy — pending subscribes
        included, which are re-issued through the new parent instead of
        erroring back.  Idempotent per dead node: the first report
        evacuates, later reporters get the same event back.

        The transport is trusted over the membership view: the controller
        may still believe the node is alive (that is the point of in-band
        detection), but an orphan that timed out on it knows better.  A
        false report against a healthy relay therefore *does* evacuate it —
        the inherent cost of oracle-free detection, bounded by choosing
        suspicion thresholds and idle timeouts well above healthy-path
        silence.
        """
        if dead.failure_event is not None:
            return dead.failure_event
        now = self.network.simulator.now
        dead.alive = False
        event = self._evacuate(dead, cause="detected")
        event.detected_via = via
        if dead.crashed_at is not None:
            event.detection_latency = now - dead.crashed_at
        dead.failure_event = event
        if event.error:
            # The evacuation stranded orphans (recorded on the event, which
            # never raises mid-teardown); surface the terminal outcome as a
            # structured error rather than returning as if re-homed.
            raise NoSurvivingParentError(
                f"failover of {dead.host.address} stranded orphans: {event.error}",
                event,
            )
        return event

    def report_origin_failure(
        self, reporter: RelayNode, via: str = ""
    ) -> FailoverEvent | None:
        """A tier-0 relay's transport says its *origin* is gone: promote.

        The origin-tier twin of :meth:`report_failure`, with the same
        determinism contract:

        * **first detector wins** — the first report deposes the dead
          active, elects the lowest-index alive standby, increments the
          cluster epoch and re-points every tier-0 uplink (pending
          subscribes transplant exactly as in a relay-tier switch);
        * **idempotent** — later reporters of the same death get the
          recorded event back;
        * **stale reports from an old epoch are ignored** — a reporter
          naming an origin that is no longer the active (its death has
          already been promoted around) gets that origin's recorded event
          and triggers nothing.

        The reporter names the origin through its own uplink address,
        resolved at signal time, so a relay already switched to the new
        active can never depose it with a straggling signal.  Raises
        :class:`NoSurvivingParentError` (after recording the terminal
        event) when no standby survives to promote.
        """
        cluster = self.origin_cluster
        if cluster is None:
            raise RuntimeError("report_origin_failure needs an origin cluster")
        dead = cluster.origin_at(reporter.relay.upstream_address)
        if dead is None:
            return None
        if dead is not cluster.active or dead.failure_event is not None:
            # Already promoted around (stale epoch) or already being handled
            # by the first detector: hand back the recorded event.
            return dead.failure_event
        now = self.network.simulator.now
        event = FailoverEvent(
            cause="detected", node=dead.host.address, tier="origin", at=now
        )
        event.detected_via = via
        if dead.crashed_at is not None:
            event.detection_latency = now - dead.crashed_at
        # Recorded before the election runs: a re-entrant report from
        # another tier-0 relay noticing the same death mid-promotion hits
        # the idempotency guard above.
        dead.failure_event = event
        self.events.append(event)
        dead_address = dead.address
        promotion = cluster.promote(via=via, detection_latency=event.detection_latency)
        if promotion is None:
            event.error = "no-surviving-origin"
            self._strand_origin_orphans(dead_address, event, now)
            raise NoSurvivingParentError(
                f"origin {dead.host.address} died with no surviving standby",
                event,
            )
        event.epoch = promotion.epoch
        # The topology's origin pointer follows the election: later tier-0
        # joins and grandparent fallbacks anchor on the *current* active.
        self.origin = cluster.address
        for node in self.tiers[0]:
            if not node.alive or node.relay.upstream_address != dead_address:
                continue
            record = FailoverRecord(
                kind="relay",
                name=node.host.address,
                tier=node.tier_name,
                new_parent=cluster.active.host.address,
                detached_at=now,
            )
            event.records.append(record)
            has_live_tracks = any(
                track.downstream or track.awaiting_upstream
                for track in node.relay.tracks().values()
            )
            node.relay.switch_upstream(
                self.origin,
                on_track_reattached=lambda track, r=record: r.mark_reattached(
                    self.network.simulator.now
                ),
            )
            if not has_live_tracks:
                record.mark_reattached(now)
        return event

    def _strand_origin_orphans(
        self, dead_address: Address, event: FailoverEvent, now: float
    ) -> None:
        """Record and cleanly terminate tier-0 relays with no origin left."""
        for node in self.tiers[0]:
            if not node.alive or node.relay.upstream_address != dead_address:
                continue
            event.records.append(
                FailoverRecord(
                    kind="relay",
                    name=node.host.address,
                    tier=node.tier_name,
                    new_parent="",
                    detached_at=now,
                )
            )
            # Fail the relay's pending subscribes/fetches back downstream
            # instead of leaving them wedged on a session nobody will ever
            # answer: subscribers observe clean terminal errors, not hangs.
            node.relay.abandon_upstream("no surviving origin")

    # ---------------------------------------------------------------- failover
    def _evacuate(self, node: RelayNode, cause: str) -> FailoverEvent:
        now = self.network.simulator.now
        event = FailoverEvent(
            cause=cause, node=node.host.address, tier=node.tier_name, at=now
        )
        if node.parent is not None and node.parent.alive:
            node.parent.load -= 1
        if self.aggregates:
            # A dying leaf stops being homogeneous: dissolve its aggregate
            # groups *before* orphan re-homing, so every member fails over
            # individually (ascending by index — the exact order the dense
            # run's subscriber list yields) through the standard path below.
            self._dissolve_aggregates_on(node)
        if node.tier_index + 1 < len(self.tiers):
            for child in self.tiers[node.tier_index + 1]:
                if child.alive and child.parent is node:
                    self._reparent_relay(child, node, event, now)
        for subscriber in self.subscribers:
            if subscriber.leaf is node:
                self._failover_subscriber(subscriber, event, now)
        self.events.append(event)
        return event

    def _dissolve_aggregates_on(self, node: RelayNode) -> None:
        """Materialise every member aggregated on ``node`` (it is dying)."""
        members: list[TreeSubscriber] = []
        for group in self.aggregates:
            representative = group.representative
            if group.dissolved or representative is None or representative.leaf is not node:
                continue
            members.extend(group.dissolve(self))
        if members:
            self.subscribers.extend(members)
            self.subscribers.sort(key=lambda subscriber: subscriber.index)

    def _reparent_relay(
        self, child: RelayNode, dead: RelayNode, event: FailoverEvent, now: float
    ) -> None:
        new_parent = self.failover_policy.choose_parent(self, child, dead)
        if new_parent is None and dead.parent is not None and dead.parent.alive:
            new_parent = dead.parent
        if new_parent is not None:
            upstream = new_parent.address
            anchor: Host = new_parent.host
            parent_name = new_parent.host.address
            new_parent.load += 1
        else:
            # No surviving relay above: attach straight to the origin — but
            # only to an origin that is actually there.  With a replicated
            # origin whose last member is gone, "attach to the origin" would
            # silently wire orphans to a dead address; record the stranded
            # orphan (the structured NoSurvivingParentError is raised by
            # report_failure once the event is complete) and terminate the
            # child's uplink cleanly instead.
            origin_anchor = self._origin_anchor()
            if origin_anchor is None:
                event.error = event.error or "no-surviving-parent"
                event.records.append(
                    FailoverRecord(
                        kind="relay",
                        name=child.host.address,
                        tier=child.tier_name,
                        new_parent="",
                        detached_at=now,
                    )
                )
                child.relay.abandon_upstream("no surviving parent")
                return
            upstream = self.origin
            anchor = origin_anchor
            parent_name = self.origin.host
        if not self.network.has_link(anchor.address, child.host.address):
            self.network.connect(anchor, child.host, self.spec.tiers[child.tier_index].uplink)
        child.parent = new_parent
        record = FailoverRecord(
            kind="relay",
            name=child.host.address,
            tier=child.tier_name,
            new_parent=parent_name,
            detached_at=now,
        )
        event.records.append(record)
        has_live_tracks = any(
            track.downstream or track.awaiting_upstream
            for track in child.relay.tracks().values()
        )
        child.relay.switch_upstream(
            upstream,
            on_track_reattached=lambda track, r=record: r.mark_reattached(
                self.network.simulator.now
            ),
        )
        if not has_live_tracks:
            # A lazy relay with nothing subscribed has no SUBSCRIBE_OK to
            # wait for: re-pointing its uplink completes the failover.
            record.mark_reattached(now)

    def _origin_anchor(self) -> Host | None:
        """The origin host orphans may fall back to — None when it is gone.

        Without a replicated origin the singleton is assumed reachable:
        nothing in the topology can ever report it dead, so the historical
        attach-to-origin fallback stands.  With a cluster, the *membership
        view* decides (``alive``), not the crash oracle: a silently crashed
        but not-yet-detected active is still attached to — exactly as a
        not-yet-detected relay would be — and the subsequent in-band origin
        report re-homes those orphans through the promoted standby.  Only
        when the cluster's active has been deposed with no successor is
        there genuinely no origin left.
        """
        cluster = self.origin_cluster
        if cluster is None:
            return self.network.host(self.origin.host)
        if not cluster.active.alive:
            return None
        return cluster.active.host

    def _failover_subscriber(
        self, subscriber: TreeSubscriber, event: FailoverEvent, now: float
    ) -> None:
        if not self.alive_leaves():
            # Nowhere left to re-home: record the stranded orphan (the event
            # honestly reads incomplete) instead of raising mid-evacuation
            # with the dead relay already torn down.
            event.error = event.error or "no-surviving-parent"
            event.records.append(
                FailoverRecord(
                    kind="subscriber",
                    name=subscriber.host.address,
                    tier="subscribers",
                    new_parent="",
                    detached_at=now,
                )
            )
            return
        new_leaf = self._pick_leaf()
        record = FailoverRecord(
            kind="subscriber",
            name=subscriber.host.address,
            tier="subscribers",
            new_parent=new_leaf.host.address,
            detached_at=now,
        )
        event.records.append(record)
        self._reattach_subscriber(subscriber, new_leaf, record)

    def _reattach_subscriber(
        self, subscriber: TreeSubscriber, new_leaf: RelayNode, record: FailoverRecord
    ) -> None:
        """Move a subscriber to a new leaf: fresh session, re-subscribe every
        track, and fill the delivery gap with a FETCH from the leaf's cache."""
        if not subscriber.session.closed:
            subscriber.session.close("leaf relay lost")
        if not self.network.has_link(new_leaf.host.address, subscriber.host.address):
            self.network.connect(new_leaf.host, subscriber.host, self.spec.subscriber_link)
        config = subscriber.config if subscriber.config is not None else self.session_config
        subscriber.session = self._open_subscriber_session(subscriber.host, new_leaf, config)
        self._watch_subscriber_session(subscriber)
        subscriber.leaf = new_leaf
        subscriber.reattach_count += 1
        new_leaf.load += 1
        restored = 0
        for track in subscriber.tracks:
            if track.subscription is not None and track.subscription.state == "done":
                continue  # the application unsubscribed; nothing to restore
            self._resubscribe_subscriber_track(subscriber, track, record)
            restored += 1
        if restored == 0:
            # Nothing to re-subscribe: the re-homing itself completes the
            # failover (otherwise the record would wait on a SUBSCRIBE_OK
            # that will never come and the event would never read complete).
            record.mark_reattached(self.network.simulator.now)

    def _resubscribe_subscriber_track(
        self,
        subscriber: TreeSubscriber,
        track: _SubscriberTrack,
        record: FailoverRecord | None,
    ) -> None:
        # Resume from the last delivered object (inclusive — the dedupe set
        # drops the boundary).  A subscriber that never received anything
        # falls back to the old subscription's advertised live position:
        # later objects are gap, earlier ones are pre-join history.
        resume_from = track.largest
        if (
            resume_from is None
            and track.subscription is not None
            and track.subscription.largest is not None
        ):
            previous = track.subscription.largest
            resume_from = Location(previous.group_id, previous.object_id + 1)
        if resume_from is not None:
            track.recovery.arm()
        else:
            subscriber.flush_track(track)

        def on_response(
            subscription: Subscription,
            sub: TreeSubscriber = subscriber,
            t: _SubscriberTrack = track,
            resume: Location | None = resume_from,
            rec: FailoverRecord | None = record,
        ) -> None:
            if not subscription.is_active:
                sub.flush_track(t)
                return
            if rec is not None:
                rec.mark_reattached(self.network.simulator.now)
            if resume is None or not t.recovery.active:
                return
            # The resume point rides along (inclusive range) and is dropped
            # by the subscriber's duplicate filter.
            sub.gap_fetches += 1
            issued_on = sub.session
            issued_on.fetch(
                t.full_track_name,
                resume,
                OPEN_RANGE_END,
                on_complete=lambda fetch_request, s=sub, tr=t, sess=issued_on: s.finish_gap_fetch(
                    tr, fetch_request, sess
                ),
            )

        track.subscription = subscriber.session.subscribe(
            track.full_track_name,
            on_object=lambda obj, s=subscriber, t=track: s.deliver(t, obj),
            on_response=on_response,
        )
