"""Aggregated measurements over a relay hierarchy.

:class:`RelayNetStats` snapshots, per tier, the relay counters (objects
received/forwarded, subscription aggregation, cache hits and misses) and the
bytes carried by the tier's uplinks in the fan-out direction (parent ->
child).  Because the counters are monotonic, subtracting two snapshots with
:meth:`RelayNetStats.delta` isolates a measurement window — the fan-out
experiment uses this to count only update-phase traffic, excluding session
setup.

The headline quantity is :attr:`RelayNetStats.origin_egress_bytes`: the bytes
the origin sends into the top tier.  The paper's §3 scalability argument is
precisely that this grows with the top-tier branching factor, not with the
number of subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.relaynet.builder import RelayTree


@dataclass(frozen=True)
class TierStats:
    """Counters aggregated over all relays of one tier."""

    tier: str
    relays: int
    uplink_bytes: int
    uplink_datagrams: int
    objects_received: int
    objects_forwarded: int
    downstream_subscribes: int
    upstream_subscribes: int
    upstream_unsubscribes: int
    cache_hits: int
    cache_misses: int
    #: QUIC retransmissions by the tier's relays towards their downstream
    #: sessions — the sender-side loss-repair cost of the fan-out hop below
    #: this tier.  Monotonic, so :meth:`delta` windows apply.
    downstream_retransmissions: int = 0
    #: Congestion-window reductions taken by the tier's relays' downstream
    #: connections (zero unless a real congestion controller is installed
    #: via ``downstream_connection``).  Monotonic.
    congestion_events: int = 0

    def delta(self, earlier: "TierStats") -> "TierStats":
        """Counter differences ``self - earlier`` for the same tier."""
        if earlier.tier != self.tier:
            raise ValueError(f"tier mismatch: {self.tier!r} vs {earlier.tier!r}")
        changes = {
            f.name: getattr(self, f.name) - getattr(earlier, f.name)
            for f in fields(self)
            if f.name not in ("tier", "relays")
        }
        return TierStats(tier=self.tier, relays=self.relays, **changes)

    def as_row(self) -> dict[str, object]:
        """Row representation for report tables."""
        return {
            "tier": self.tier,
            "relays": self.relays,
            "uplink_bytes": self.uplink_bytes,
            "objects_in": self.objects_received,
            "objects_out": self.objects_forwarded,
            "subs_down": self.downstream_subscribes,
            "subs_up": self.upstream_subscribes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "retrans": self.downstream_retransmissions,
        }


@dataclass(frozen=True)
class RelayNetStats:
    """One snapshot of a whole relay tree (plus its subscriber edge)."""

    tiers: tuple[TierStats, ...]
    subscriber_count: int
    subscriber_link_bytes: int
    subscriber_objects_received: int

    @classmethod
    def collect(cls, tree: RelayTree) -> "RelayNetStats":
        """Snapshot the tree's relay counters and uplink traffic.

        Aggregate-leaf groups are multiplied out here: a representative's
        access-link bytes and received objects count once per member, and
        the leaf tier's per-downstream-session counters (objects forwarded,
        subscribes received) gain the ``N - 1`` contributions the dense
        run's extra sessions would have produced.  Both corrections are
        linear in monotonic counters with a multiplicity that is constant
        between the snapshots of a measurement window, so :meth:`delta`
        arithmetic is unaffected.
        """
        network = tree.network
        groups = [
            group
            for group in getattr(tree, "aggregates", ())
            if group.representative is not None
        ]
        leaf_objects_extra = 0
        leaf_subscribes_extra = 0
        for group in groups:
            representative = group.representative
            extra = representative.multiplicity - 1
            if extra <= 0:
                continue
            statistics = representative.session.statistics
            leaf_objects_extra += extra * statistics.objects_received
            leaf_subscribes_extra += extra * statistics.subscribes_sent
        leaf_tier_index = len(tree.tiers) - 1
        tier_stats: list[TierStats] = []
        for tier_index, nodes in enumerate(tree.tiers):
            uplink_bytes = 0
            uplink_datagrams = 0
            objects_received = 0
            objects_forwarded = 0
            downstream_subscribes = 0
            upstream_subscribes = 0
            upstream_unsubscribes = 0
            cache_hits = 0
            cache_misses = 0
            downstream_retransmissions = 0
            congestion_events = 0
            for node in nodes:
                link = network.link(node.upstream_host, node.host.address)
                uplink_bytes += link.statistics.bytes_sent
                uplink_datagrams += link.statistics.datagrams_sent
                statistics = node.relay.statistics
                objects_received += statistics.objects_received
                objects_forwarded += statistics.objects_forwarded
                downstream_subscribes += statistics.downstream_subscribes
                upstream_subscribes += statistics.upstream_subscribes
                upstream_unsubscribes += statistics.upstream_unsubscribes
                cache_hits += statistics.fetches_served_from_cache
                cache_misses += statistics.fetches_forwarded_upstream
                for session in node.relay.downstream_sessions():
                    connection = session.connection
                    downstream_retransmissions += connection.statistics.retransmissions
                    congestion_events += connection.congestion.congestion_events
            if tier_index == leaf_tier_index:
                objects_forwarded += leaf_objects_extra
                downstream_subscribes += leaf_subscribes_extra
            tier_stats.append(
                TierStats(
                    tier=nodes[0].tier_name if nodes else "",
                    relays=len(nodes),
                    uplink_bytes=uplink_bytes,
                    uplink_datagrams=uplink_datagrams,
                    objects_received=objects_received,
                    objects_forwarded=objects_forwarded,
                    downstream_subscribes=downstream_subscribes,
                    upstream_subscribes=upstream_subscribes,
                    upstream_unsubscribes=upstream_unsubscribes,
                    cache_hits=cache_hits,
                    cache_misses=cache_misses,
                    downstream_retransmissions=downstream_retransmissions,
                    congestion_events=congestion_events,
                )
            )
        subscriber_link_bytes = 0
        subscriber_objects = 0
        subscriber_count = 0
        for subscriber in tree.subscribers:
            multiplicity = subscriber.multiplicity
            link = network.link(subscriber.leaf.host.address, subscriber.host.address)
            subscriber_link_bytes += (
                link.statistics.bytes_sent * multiplicity + link.extra_bytes
            )
            subscriber_objects += subscriber.session.statistics.objects_received * multiplicity
            subscriber_count += multiplicity
        return cls(
            tiers=tuple(tier_stats),
            subscriber_count=subscriber_count,
            subscriber_link_bytes=subscriber_link_bytes,
            subscriber_objects_received=subscriber_objects,
        )

    def delta(self, earlier: "RelayNetStats") -> "RelayNetStats":
        """Counter differences ``self - earlier`` (same tree, later snapshot)."""
        if len(earlier.tiers) != len(self.tiers):
            raise ValueError("snapshots come from differently shaped trees")
        return RelayNetStats(
            tiers=tuple(tier.delta(old) for tier, old in zip(self.tiers, earlier.tiers)),
            subscriber_count=self.subscriber_count,
            subscriber_link_bytes=self.subscriber_link_bytes - earlier.subscriber_link_bytes,
            subscriber_objects_received=(
                self.subscriber_objects_received - earlier.subscriber_objects_received
            ),
        )

    # ------------------------------------------------------------- aggregates
    @property
    def origin_egress_bytes(self) -> int:
        """Bytes the origin sent into the top tier (its total fan-out cost)."""
        return self.tiers[0].uplink_bytes

    @property
    def cache_hits(self) -> int:
        """FETCHes answered from some relay cache, across all tiers."""
        return sum(tier.cache_hits for tier in self.tiers)

    @property
    def cache_misses(self) -> int:
        """FETCHes a relay had to forward upstream, across all tiers."""
        return sum(tier.cache_misses for tier in self.tiers)

    @property
    def downstream_retransmissions(self) -> int:
        """Sender-side QUIC retransmissions across every fan-out hop."""
        return sum(tier.downstream_retransmissions for tier in self.tiers)

    @property
    def congestion_events(self) -> int:
        """Congestion-window reductions across every tier's downstream side."""
        return sum(tier.congestion_events for tier in self.tiers)

    @property
    def total_link_bytes(self) -> int:
        """Bytes over every tier uplink plus the subscriber access links."""
        return sum(tier.uplink_bytes for tier in self.tiers) + self.subscriber_link_bytes

    def tier_uplink_bytes(self) -> tuple[int, ...]:
        """Per-tier uplink bytes, origin-side tier first."""
        return tuple(tier.uplink_bytes for tier in self.tiers)

    def rows(self) -> list[dict[str, object]]:
        """Per-tier table rows plus a final row for the subscriber edge."""
        rows = [tier.as_row() for tier in self.tiers]
        rows.append(
            {
                "tier": "subscribers",
                "relays": self.subscriber_count,
                "uplink_bytes": self.subscriber_link_bytes,
                "objects_in": self.subscriber_objects_received,
                "objects_out": 0,
                "subs_down": 0,
                "subs_up": 0,
                "cache_hits": 0,
                "cache_misses": 0,
                "retrans": 0,
            }
        )
        return rows
