"""Exact aggregate-leaf fan-out: N homogeneous subscribers, one connection.

Below the edge tier the simulation is pure replication: every subscriber of
one leaf relay shares the same :class:`~repro.netsim.link.LinkConfig`, the
same subscription and therefore — because nothing subscriber-specific ever
reaches the wire (connection IDs are fixed-width varints, the TLS
``server_name`` is the *leaf's* host name) — byte-for-byte the same traffic
at the same virtual instants.  Simulating each replica individually at
1,000,000 subscribers is wasted cycles and wasted RSS.

:class:`AggregateLeaf` collapses one leaf relay's homogeneous population
into a single live :class:`~repro.relaynet.topology.TreeSubscriber` (the
*representative*) carrying ``multiplicity = N``.  Every statistic the
experiments and telemetry collectors read — tier byte tables, origin
egress, delivered-object counts, QUIC counter totals, network link totals —
is multiplied out at collection time, so the aggregate run's measured
outputs are bit-identical to the dense run's (the equivalence canaries in
``tests/test_aggregate.py`` pin this at 1k and 10k).

The hard part is **materialise-on-demand**: the moment a member stops being
homogeneous it must become real.  :meth:`AggregateLeaf.split` promotes one
member out of the aggregate into a dense subscriber with its own host, its
own dedupe/recovery state (cloned from the representative, whose delivery
history is by construction the member's own) and — when it opens a fresh
connection — a deterministic RNG stream derived from its *index*, not from
spawn order, so materialising member 4711 draws the same connection ID no
matter how many members split before it and never shifts the global seeded
stream.  Three populations therefore run dense:

* **span-sampled subscribers** (``index % subscriber_sample_every == 0``)
  are materialised at attach time so latency breakdowns keep their exact
  per-subscriber delivery timestamps;
* **churned subscribers** split when their leaf dies: the group dissolves
  inside the failover (before orphan re-homing runs), each member re-attaches
  individually and the E12/E13/E14 gapless + closed-form-latency contracts
  hold member by member;
* **manually split subscribers** (:meth:`RelayTopology.split_subscriber`)
  for callers that need one member to diverge mid-run (own kill, own lossy
  link).  Delivery stays exact; cumulative byte tables for this case are
  approximate, which the static/churn paths never are (``docs/scaling.md``).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.moqt.objectmodel import MoqtObject
    from repro.relaynet.topology import RelayNode, RelayTopology, TreeSubscriber


def plan_leaf_assignments(
    leaves: "list[RelayNode]", count: int, start_index: int
) -> list[list[int]]:
    """Assign subscriber indices to leaves with exact least-loaded semantics.

    Returns one (ascending) index list per entry of ``leaves``.  The
    sequential dense attach picks ``min(leaves, key=(load, index))`` once
    per subscriber; a heap keyed the same way reproduces that choice
    sequence exactly in O(count log leaves) without touching any
    ``RelayNode`` state — placement under aggregation is *identical* to the
    dense run, which is what makes per-leaf multiplicities (and therefore
    every multiplied statistic) line up.
    """
    heap = [(leaf.load, leaf.index, position) for position, leaf in enumerate(leaves)]
    heapq.heapify(heap)
    assignments: list[list[int]] = [[] for _ in leaves]
    for index in range(start_index, start_index + count):
        load, leaf_index, position = heapq.heappop(heap)
        assignments[position].append(index)
        heapq.heappush(heap, (load + 1, leaf_index, position))
    return assignments


@dataclass(eq=False)
class AggregateLeaf:
    """One leaf relay's counted subscriber population.

    ``representative`` is the single live subscriber standing in for every
    index in ``member_indices`` (itself included — it sits at the lowest
    member index so ``RelayTopology.subscribers`` stays ordered).  Its
    ``multiplicity`` always equals ``len(member_indices)``.
    """

    leaf: "RelayNode"
    member_indices: list[int]
    host_prefix: str = "sub"
    representative: "TreeSubscriber | None" = None
    #: Indices promoted out of the aggregate over its lifetime.
    split_indices: set[int] = field(default_factory=set)
    #: The two-arg ``on_object`` callback registered through
    #: :meth:`RelayTopology.subscribe_all`, by track position — replayed
    #: against each materialised member so its clone delivers to the same
    #: application callback the dense subscriber would have.
    track_callbacks: dict[int, Callable[["TreeSubscriber", "MoqtObject"], None] | None] = field(
        default_factory=dict
    )
    #: True once the group has been fully dissolved (leaf death); a
    #: dissolved group is inert — its representative is an ordinary dense
    #: subscriber from then on.
    dissolved: bool = False
    #: Exact byte difference between the counted members' dense handshakes
    #: and ``multiplicity ×`` the representative's: TLS ticket ids are
    #: decimal strings, so members at different per-leaf arrival ranks get
    #: different widths.  Computed at attach time (where the dense ticket
    #: sequence is known), mirrored onto the representative link's
    #: ``extra_bytes`` and added to QUIC role totals at collection time.
    #: Zeroed at dissolution — the old connection leaves the scrape in the
    #: dense run, too.
    handshake_byte_deficit: int = 0

    @property
    def multiplicity(self) -> int:
        """Subscribers this group currently stands in for."""
        return len(self.member_indices)

    def record_track_callback(
        self,
        position: int,
        on_object: Callable[["TreeSubscriber", "MoqtObject"], None] | None,
    ) -> None:
        """Remember the application callback behind track ``position``."""
        self.track_callbacks[position] = on_object

    # ------------------------------------------------------------ materialise
    def split(
        self, topology: "RelayTopology", subscriber_index: int, connect: bool = True
    ) -> "TreeSubscriber":
        """Promote one member out of the aggregate into a dense subscriber.

        The member gets its own host, a clone of the representative's
        per-track dedupe/recovery state (the representative's delivery
        history *is* the member's — that is the aggregate invariant) and,
        with ``connect=True``, its own QUIC session whose connection ID
        comes from ``random.Random(subscriber_index)`` so materialisation
        order never changes the wire or the global seeded stream.  With
        ``connect=False`` (the dissolution path) the member temporarily
        shares the representative's dying session; the failover machinery
        closes it exactly once and re-homes each member individually.

        ``topology.on_subscriber_split`` fires before any new traffic, so
        experiment callbacks can copy per-subscriber accumulator state from
        the representative to the member.
        """
        from repro.relaynet.topology import TreeSubscriber, _SubscriberTrack

        rep = self.representative
        if rep is None:
            raise RuntimeError("aggregate group has no representative yet")
        if subscriber_index == rep.index:
            raise ValueError("the representative itself cannot be split out")
        if subscriber_index not in self.member_indices:
            raise ValueError(
                f"subscriber {subscriber_index} is not aggregated in this group"
            )
        network = topology.network
        host = network.add_host(f"{self.host_prefix}-{subscriber_index}")
        member = TreeSubscriber(
            index=subscriber_index,
            host=host,
            session=rep.session,
            leaf=rep.leaf,
            config=rep.config,
        )
        for position, track in enumerate(rep.tracks):
            on_object = self.track_callbacks.get(position)
            callback = None
            if on_object is not None:
                callback = lambda obj, sub=member, cb=on_object: cb(sub, obj)
            member.tracks.append(
                _SubscriberTrack(
                    full_track_name=track.full_track_name,
                    on_object=callback,
                    subscription=track.subscription,
                    seen=set(track.seen),
                    largest=track.largest,
                    delivered=track.delivered,
                    duplicates_dropped=track.duplicates_dropped,
                )
            )
        self.member_indices.remove(subscriber_index)
        self.split_indices.add(subscriber_index)
        rep.multiplicity = len(self.member_indices)
        hook = topology.on_subscriber_split
        if hook is not None:
            hook(member, rep)
        if connect:
            leaf = rep.leaf
            if not network.has_link(leaf.host.address, host.address):
                network.connect(leaf.host, host, topology.spec.subscriber_link)
            config = member.config if member.config is not None else topology.session_config
            member.session = topology._open_subscriber_session(
                host, leaf, config, rng=random.Random(subscriber_index)
            )
            topology._watch_subscriber_session(member)
            # The member was already counted in leaf.load at attach time and
            # keeps the same leaf, so load is untouched.  Future rep-link
            # traffic is on behalf of one fewer member:
            self._set_representative_link_multiplicity(network, rep)
            for track in member.tracks:
                if track.subscription is not None and track.subscription.state == "done":
                    continue
                topology._resubscribe_subscriber_track(member, track, None)
        return member

    def dissolve(self, topology: "RelayTopology") -> "list[TreeSubscriber]":
        """Materialise every remaining member: the group's leaf died.

        Members come back ascending by index, each sharing the
        representative's (dying) session so the standard per-subscriber
        failover path closes it exactly once — one CONNECTION_CLOSE on the
        representative's link, multiplied by the link's (frozen) historical
        multiplicity, equals the N close frames of the dense run.  The
        representative's link multiplicity is deliberately *left* at its
        full value: the link never carries another byte (its leaf is dead),
        so its cumulative counters keep standing in for the N dense links'
        identical histories.
        """
        rep = self.representative
        created: list[TreeSubscriber] = []
        if rep is None:
            self.dissolved = True
            return created
        for index in [i for i in self.member_indices if i != rep.index]:
            created.append(self.split(topology, index, connect=False))
        self.member_indices = [rep.index]
        rep.multiplicity = 1
        self.dissolved = True
        # The representative's dying connection drops out of the QUIC scrape
        # in both modes (every survivor reconnects on a fresh session), so
        # the handshake-width correction retires with it.  The *link*-level
        # correction stays on the dead access link, whose frozen counters
        # keep standing in for the members' dense histories.
        self.handshake_byte_deficit = 0
        return created

    def _set_representative_link_multiplicity(
        self, network, rep: "TreeSubscriber"
    ) -> None:
        leaf_address = rep.leaf.host.address
        if network.has_link(leaf_address, rep.host.address):
            network.link(leaf_address, rep.host.address).multiplicity = rep.multiplicity
            network.link(rep.host.address, leaf_address).multiplicity = rep.multiplicity


def expand_member_sequences(
    topology: "RelayTopology", received: dict[int, list]
) -> dict[int, list]:
    """Expand a per-subscriber-index accumulator map to the full population.

    Experiments keyed on ``subscriber.index`` (delivery sequences in
    E12/E13/E14) record one entry per *live* subscriber.  Under aggregation
    every still-aggregated member's sequence is, by the aggregate invariant,
    exactly its representative's — copy it out so the result dict is keyed
    by every individual index, comparable ``==`` against the dense run's.
    """
    expanded = dict(received)
    for group in topology.aggregates:
        rep = group.representative
        if rep is None:
            continue
        base = received.get(rep.index)
        if base is None:
            continue
        for index in group.member_indices:
            if index != rep.index:
                expanded[index] = list(base)
    return expanded
