"""Declarative descriptions of relay fan-out hierarchies.

A :class:`RelayTreeSpec` says *what* a relay hierarchy looks like — how many
tiers, how many relays per tier, and what kind of link joins each tier to the
one above — without naming hosts or touching a network.  The
:class:`~repro.relaynet.builder.RelayTreeBuilder` turns a spec into live
:class:`~repro.moqt.relay.MoqtRelay` instances on a simulated
:class:`~repro.netsim.network.Network`.

Three canonical shapes cover the paper's §3/§5.3 scenarios:

* :meth:`RelayTreeSpec.star` — one tier of relays directly below the origin,
  the minimal fan-out the ablation benchmark measures;
* :meth:`RelayTreeSpec.kary` — a balanced k-ary tree of a given depth, the
  shape used to study how origin egress scales with branching factor;
* :meth:`RelayTreeSpec.cdn` — the origin / mid / edge hierarchy of a CDN,
  with fast core links, metro links to the mid tier and access links to the
  edge, which is the §5.3 CDN load-balancing deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.link import LinkConfig


@dataclass(frozen=True)
class RelayTierSpec:
    """One tier of relays.

    Attributes
    ----------
    name:
        Tier label (unique within a spec); shows up in statistics tables.
    relays:
        Number of relay nodes in this tier.
    uplink:
        Link configuration between each relay and its parent in the tier
        above (or the origin, for the first tier).
    """

    name: str
    relays: int
    uplink: LinkConfig = field(default_factory=LinkConfig)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tier name must be non-empty")
        if self.relays <= 0:
            raise ValueError(f"tier {self.name!r} needs at least one relay: {self.relays}")


@dataclass(frozen=True)
class RelayTreeSpec:
    """A full hierarchy: tiers ordered from the origin downwards.

    ``tiers[0]`` subscribes directly at the origin publisher; every relay in
    ``tiers[i]`` is assigned a parent in ``tiers[i-1]`` round-robin, so tier
    sizes need not divide evenly.  Subscribers attach below the last tier
    over ``subscriber_link``.
    """

    tiers: tuple[RelayTierSpec, ...]
    subscriber_link: LinkConfig = field(default_factory=lambda: LinkConfig(delay=0.005))
    host_prefix: str = "relay"
    #: Origin instances the tree expects: 1 for the historical singleton,
    #: ``n >= 2`` for a replicated origin (1 active + ``n - 1`` warm
    #: standbys, see :mod:`repro.relaynet.origincluster`).  The spec only
    #: *declares* the replication factor — experiments build the matching
    #: :class:`~repro.relaynet.origincluster.OriginCluster` and hand it to
    #: the builder.
    origins: int = 1

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("a relay tree needs at least one tier")
        names = [tier.name for tier in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"tier names must be unique: {names}")
        if self.origins < 1:
            raise ValueError(f"a relay tree needs at least one origin: {self.origins}")

    @property
    def depth(self) -> int:
        """Number of relay tiers between origin and subscribers."""
        return len(self.tiers)

    @property
    def relay_count(self) -> int:
        """Total number of relays across all tiers."""
        return sum(tier.relays for tier in self.tiers)

    @property
    def leaf_tier(self) -> RelayTierSpec:
        """The tier subscribers attach to."""
        return self.tiers[-1]

    def tier_sizes(self) -> tuple[int, ...]:
        """Relay counts per tier, origin-side first."""
        return tuple(tier.relays for tier in self.tiers)

    # ------------------------------------------------------------- factories
    @classmethod
    def star(
        cls,
        relays: int,
        uplink: LinkConfig | None = None,
        subscriber_link: LinkConfig | None = None,
    ) -> "RelayTreeSpec":
        """A single tier of ``relays`` relays directly below the origin."""
        return cls(
            tiers=(RelayTierSpec("relay", relays, uplink or LinkConfig()),),
            subscriber_link=subscriber_link or LinkConfig(delay=0.005),
        )

    @classmethod
    def kary(
        cls,
        depth: int,
        branching: int,
        uplink: LinkConfig | None = None,
        subscriber_link: LinkConfig | None = None,
    ) -> "RelayTreeSpec":
        """A balanced k-ary tree: tier ``i`` holds ``branching ** (i + 1)`` relays."""
        if depth <= 0:
            raise ValueError(f"depth must be positive: {depth}")
        if branching <= 0:
            raise ValueError(f"branching must be positive: {branching}")
        link = uplink or LinkConfig()
        tiers = tuple(
            RelayTierSpec(f"tier{index}", branching ** (index + 1), link)
            for index in range(depth)
        )
        return cls(tiers=tiers, subscriber_link=subscriber_link or LinkConfig(delay=0.005))

    @classmethod
    def cdn(
        cls,
        mid_relays: int = 4,
        edge_per_mid: int = 4,
        core_link: LinkConfig | None = None,
        metro_link: LinkConfig | None = None,
        access_link: LinkConfig | None = None,
        origins: int = 1,
    ) -> "RelayTreeSpec":
        """The CDN shape of §5.3: origin -> mid (metro) -> edge (access).

        ``core_link`` joins the origin to the mid tier, ``metro_link`` the mid
        tier to the edge tier, and ``access_link`` the edge relays to their
        subscribers.  ``origins >= 2`` declares a replicated origin (E14's
        failover scenario).
        """
        return cls(
            tiers=(
                RelayTierSpec("mid", mid_relays, core_link or LinkConfig(delay=0.020)),
                RelayTierSpec(
                    "edge", mid_relays * edge_per_mid, metro_link or LinkConfig(delay=0.010)
                ),
            ),
            subscriber_link=access_link or LinkConfig(delay=0.005),
            origins=origins,
        )
