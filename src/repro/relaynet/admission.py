"""Flash-crowd admission control for relays (bounded queues, retry-after).

Every relay before this module admitted SUBSCRIBEs unboundedly: a flash
crowd of tens of thousands of joins landing inside one second was accepted
instantly, which is exactly the load pattern that collapses a real edge
relay.  This module is the overload-protection layer:

* :class:`AdmissionPolicy` — the declarative knobs: a token-bucket
  subscribe-rate limit (``subscribe_rate`` admissions per second with a
  burst of ``bucket_depth``) and a bound on the relay's pending-subscribe
  queue (``max_pending_subscribes``, the downstream subscribes deferred
  while the aggregated upstream subscription is in flight).  The default
  policy is **unlimited** — no state, no RNG draws, no wire changes — so
  every frozen seeded experiment output stays bit-identical unless a
  deployment opts in.
* :class:`AdmissionController` — the per-relay runtime state.  Past a
  bound, the relay answers ``SUBSCRIBE_ERROR(TOO_MANY_SUBSCRIBERS,
  retry_after=...)`` instead of silently queueing.  Rate rejections are
  **reservations**: the controller hands the rejected session the exact
  virtual token slot it will own, advances the bucket past it, and admits
  the session's retry unconditionally once the slot's time has passed — so
  a storm drains in deterministic FIFO order with exactly one retry per
  rejected subscriber instead of a thundering-herd collision cascade.
* Priority-aware shedding: admission only ever polices *new* SUBSCRIBEs —
  established subscriptions are structurally untouchable — and subscribes
  whose ``subscriber_priority`` is at or above (numerically at or below,
  MoQT priorities are lowest-wins) ``priority_admit_threshold`` bypass the
  limiter entirely, so an operator's control subscriptions cut the line.

The token bucket is the virtual-scheduling (GCRA-like) formulation: the
bucket was last observed full at an *anchor* time and has granted ``k``
tokens since, so the next slot is ``anchor + (k - depth + 1) / rate`` —
one product per decision, never an accumulating sum, so a burst of
exactly ``bucket_depth`` admits at one instant regardless of float
rounding.  Pure float arithmetic over simulator timestamps — no refill
loops, no drift — which is what lets :mod:`repro.analysis.admission`
replay the exact fold and predict the measured admission-completion time
bit-for-bit (E16).

The client half of the contract (jittered exponential backoff honoring
``retry_after``, bounded retry budget, spillover placement) lives in
:meth:`repro.relaynet.topology.RelayTopology.flash_crowd`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def retry_after_to_ms(retry_after: float) -> int:
    """Encode a retry-after hint in whole milliseconds, rounding *up*.

    Rounding up keeps the reservation contract safe — a client that waits
    the advertised time can never arrive before its slot — and because the
    analysis model replays the same ceiling, quantisation does not break
    bit-exact completion-time prediction.
    """
    return max(1, math.ceil(retry_after * 1000.0))


@dataclass(frozen=True)
class AdmissionPolicy:
    """Declarative admission-control knobs for one relay.

    Attributes
    ----------
    subscribe_rate:
        Sustained admissions per second through the token bucket; ``None``
        (the default) disables rate limiting entirely.
    bucket_depth:
        Burst size: how many subscribes an idle relay admits back-to-back
        before the rate limit bites.
    max_pending_subscribes:
        Bound on the pending-subscribe queue — downstream SUBSCRIBEs
        deferred while the aggregated upstream subscription is in flight.
        ``None`` (the default) leaves the queue unbounded.
    queue_retry_after:
        Retry-after hint (seconds) attached to queue-bound rejections.
        Unlike rate rejections the queue drains on an upstream *answer*,
        not on a clock, so the hint is a fixed policy quantum rather than
        a computed slot.
    priority_admit_threshold:
        Subscribes with ``subscriber_priority`` at or below this value
        (MoQT priorities are lowest-wins; 0 is the most urgent) bypass
        admission control entirely.  ``None`` disables the bypass.
    advertise_retry_after:
        When False, rejections carry no ``retry_after`` hint; clients fall
        back to jittered exponential backoff (the path the determinism
        property tests exercise).  Reservations are still kept, so a
        backing-off client's eventual retry is still admitted.
    """

    subscribe_rate: float | None = None
    bucket_depth: int = 1
    max_pending_subscribes: int | None = None
    queue_retry_after: float = 0.05
    priority_admit_threshold: int | None = None
    advertise_retry_after: bool = True

    def __post_init__(self) -> None:
        if self.subscribe_rate is not None and self.subscribe_rate <= 0:
            raise ValueError(f"subscribe_rate must be positive: {self.subscribe_rate}")
        if self.bucket_depth < 1:
            raise ValueError(f"bucket_depth must be at least 1: {self.bucket_depth}")
        if self.max_pending_subscribes is not None and self.max_pending_subscribes < 1:
            raise ValueError(
                f"max_pending_subscribes must be at least 1: {self.max_pending_subscribes}"
            )
        if self.queue_retry_after <= 0:
            raise ValueError(f"queue_retry_after must be positive: {self.queue_retry_after}")

    @property
    def limited(self) -> bool:
        """Whether this policy constrains anything at all."""
        return self.subscribe_rate is not None or self.max_pending_subscribes is not None


#: The do-nothing default: every relay built without an explicit policy
#: admits exactly as it always has (no controller is even instantiated).
UNLIMITED = AdmissionPolicy()


@dataclass(frozen=True)
class RetryPolicy:
    """The client half of the admission contract: bounded retry-with-backoff.

    A rejected subscriber waits the advertised ``retry_after`` when the
    relay provided one (the deterministic reservation path), else a
    jittered exponential backoff whose jitter is drawn from the *seeded
    simulator RNG* — two runs of the same storm under the same seed
    produce identical retry schedules.  The budget is hard: once
    ``max_attempts`` SUBSCRIBEs have been rejected the subscriber's
    admission record turns terminal and
    :meth:`repro.relaynet.topology.FlashCrowdStorm.raise_for_failures`
    surfaces :class:`repro.moqt.errors.AdmissionRejectedError` instead of
    retrying (or hanging) forever.

    ``max_spillovers`` bounds how many times the topology may re-route
    this subscriber to a less-loaded sibling leaf before pinning it to
    wherever it last landed.
    """

    max_attempts: int = 8
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.5
    max_spillovers: int = 1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1: {self.max_attempts}")
        if self.base_delay <= 0:
            raise ValueError(f"base_delay must be positive: {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be at least 1: {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay {self.max_delay} must be at least base_delay {self.base_delay}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")
        if self.max_spillovers < 0:
            raise ValueError(f"max_spillovers must be non-negative: {self.max_spillovers}")

    def backoff_delay(self, rejection: int, rng) -> float:
        """Delay before the retry following the ``rejection``-th rejection
        (1-based), used only when the relay sent no ``retry_after`` hint.

        ``rng`` must be the seeded simulator RNG — the draw participates in
        the frozen event ordering, so storms replay bit-identically.
        """
        delay = self.base_delay * self.multiplier ** max(0, rejection - 1)
        if delay > self.max_delay:
            delay = self.max_delay
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """One SUBSCRIBE's verdict.

    ``retry_after`` is in seconds (0.0 when admitted or when the policy
    does not advertise hints); ``cause`` is ``""`` when admitted, else
    ``"rate"`` or ``"queue"``.
    """

    admitted: bool
    retry_after: float = 0.0
    cause: str = ""

    @property
    def retry_after_ms(self) -> int:
        """The wire encoding of the hint (0 when there is none)."""
        if self.retry_after <= 0.0:
            return 0
        return retry_after_to_ms(self.retry_after)


_ADMITTED = AdmissionDecision(admitted=True)


class AdmissionController:
    """Per-relay admission state: one virtual-clock token bucket plus the
    reservation table that makes retries collision-free.

    The controller is only instantiated for *limited* policies; an
    unlimited relay carries ``admission = None`` and pays nothing.
    """

    __slots__ = ("policy", "_interval", "_anchor", "_granted", "_reservations")

    def __init__(self, policy: AdmissionPolicy) -> None:
        if not policy.limited:
            raise ValueError("an unlimited policy needs no AdmissionController")
        self.policy = policy
        self._interval = (
            1.0 / policy.subscribe_rate if policy.subscribe_rate is not None else 0.0
        )
        #: The bucket was last observed *full* at ``_anchor`` and has granted
        #: ``_granted`` tokens since.  Slot times are computed as
        #: ``_anchor + k * interval`` — one product per decision, never an
        #: accumulating sum — so a burst of exactly ``bucket_depth`` admits
        #: at one instant regardless of float rounding, and the analysis
        #: model's replay folds identically.
        self._anchor = float("-inf")
        self._granted = 0
        #: Rate-rejected sessions and the slot each one owns.  Honored (and
        #: removed) on the session's next SUBSCRIBE; forgotten when the
        #: session closes without retrying.
        self._reservations: dict[object, float] = {}

    # ------------------------------------------------------------------ verdicts
    def decide(
        self,
        session: object,
        now: float,
        pending: int,
        subscriber_priority: int = 128,
    ) -> AdmissionDecision:
        """Admit or reject one SUBSCRIBE arriving at ``now``.

        ``pending`` is the relay's current pending-subscribe queue depth
        (subscribes deferred awaiting the upstream answer); ``session`` is
        the identity reservations are keyed on.
        """
        policy = self.policy
        threshold = policy.priority_admit_threshold
        if threshold is not None and subscriber_priority <= threshold:
            return _ADMITTED
        bound = policy.max_pending_subscribes
        if bound is not None and pending >= bound:
            hint = policy.queue_retry_after if policy.advertise_retry_after else 0.0
            return AdmissionDecision(admitted=False, retry_after=hint, cause="queue")
        if policy.subscribe_rate is None:
            return _ADMITTED
        reserved = self._reservations.pop(session, None)
        if reserved is not None:
            if reserved <= now:
                return _ADMITTED
            # Retried before its slot (an impatient client): keep the
            # reservation and restate the remaining wait.
            self._reservations[session] = reserved
            hint = (reserved - now) if policy.advertise_retry_after else 0.0
            return AdmissionDecision(admitted=False, retry_after=hint, cause="rate")
        slot = self._take_slot(now)
        if slot <= now:
            return _ADMITTED
        # Rejected — but the slot just consumed is *this* session's
        # reservation, so its retry cannot lose a race against later
        # arrivals (they reserved later slots).
        self._reservations[session] = slot
        hint = (slot - now) if policy.advertise_retry_after else 0.0
        return AdmissionDecision(admitted=False, retry_after=hint, cause="rate")

    def _take_slot(self, now: float) -> float:
        """Consume the next token slot: the virtual time its token is free.

        A slot at or before ``now`` is an admission; a future slot is a
        reservation.  The bucket re-anchors whenever every granted token has
        been earned back (``now >= anchor + granted * interval``) — the
        full-bucket condition — after which ``bucket_depth`` slots are in
        the past again.
        """
        interval = self._interval
        if now >= self._anchor + self._granted * interval:
            self._anchor = now
            self._granted = 0
        slot = self._anchor + (self._granted - self.policy.bucket_depth + 1) * interval
        self._granted += 1
        if slot > now:
            return slot
        return now

    # ------------------------------------------------------------------- queries
    def saturated(self, now: float, pending: int) -> bool:
        """Whether a fresh arrival at ``now`` would be rejected.

        A pure peek — consumes no token and makes no reservation — used by
        the topology's spillover placement to skip leaves that would just
        bounce the subscriber.
        """
        policy = self.policy
        bound = policy.max_pending_subscribes
        if bound is not None and pending >= bound:
            return True
        if policy.subscribe_rate is None:
            return False
        interval = self._interval
        if now >= self._anchor + self._granted * interval:
            return False  # fully refilled: the next arrival re-anchors
        slot = self._anchor + (self._granted - policy.bucket_depth + 1) * interval
        return slot > now

    @property
    def outstanding_reservations(self) -> int:
        """Rate-rejected sessions whose retry has not arrived yet."""
        return len(self._reservations)

    # ---------------------------------------------------------------- lifecycle
    def forget(self, session: object) -> None:
        """Drop a session's reservation (it closed, or spilled elsewhere)."""
        self._reservations.pop(session, None)
