"""Replicated origin: an active publisher with warm standbys (failsafe).

The relay tree survives any *relay* crash (livetree + deadwatch), but until
this module the origin was a singleton the topology hard-coded as
indestructible.  :class:`OriginCluster` removes that assumption with the
same zero-control-plane discipline the rest of the failure story uses:

* the cluster builds one **active** origin (host name and port identical to
  the historical singleton, so a never-failing run is wire-identical) plus
  ``origins - 1`` **standbys**;
* every standby maintains a live MoQT subscription to the active origin, so
  its track cache is warm up to the last object the active published (minus
  one standby-link flight time — the publisher-side replay ring covers the
  difference at promotion);
* :meth:`OriginCluster.crash_active` is the silent fault injector: the
  active vanishes without a close frame and *nobody is told* — detection is
  purely in-band, through the tier-0 relays' keepalive'd uplinks
  (:meth:`repro.relaynet.topology.RelayTopology.report_origin_failure`);
* :meth:`OriginCluster.promote` is the deterministic, epoch-numbered
  election: the lowest-index alive standby becomes the new active, the
  epoch increments, the publisher-side replay ring is drained into the new
  active's state above its cached high-water mark (so the outage window is
  FETCHable), and every surviving standby re-points its warm subscription
  at the new active with a gap FETCH of its own.

Election determinism contract: promotion is driven by the *first* in-band
detector (first report wins), it is idempotent (later reporters of the same
death observe the recorded event), and reports naming an origin that is no
longer the active — i.e. reports from an old epoch — are ignored.  The
topology layer (:mod:`repro.relaynet.topology`) enforces those rules; this
module owns the membership, the warm caches and the election itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.moqt.objectmodel import Location, MoqtObject
from repro.moqt.origin import (
    ORIGIN_HOST,
    ORIGIN_PORT,
    TRACK,
    OriginPublisher,
    build_origin_endpoint,
)
from repro.moqt.relay import MOQT_ALPN, OPEN_RANGE_END
from repro.moqt.session import MoqtSession
from repro.moqt.track import FullTrackName
from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.node import Host
from repro.netsim.packet import Address
from repro.quic.connection import ConnectionConfig
from repro.quic.endpoint import QuicEndpoint

#: Objects the cluster retains publisher-side for replay at promotion.  The
#: ring only ever needs to cover the standby-link flight time plus the
#: detection window (objects pushed after the silent crash, which reached
#: nobody), so a small ring is generous.
DEFAULT_REPLAY_WINDOW = 256


@dataclass(eq=False)
class ClusterOrigin:
    """One origin instance of a replicated cluster."""

    index: int
    host: Host
    publisher: OriginPublisher
    server_endpoint: QuicEndpoint
    #: ``"active"`` | ``"standby"`` | ``"deposed"``.
    role: str
    #: Client endpoint for the standby's warm subscription uplink (None on
    #: the initial active, which never subscribes anywhere).
    client_endpoint: QuicEndpoint | None = None
    #: The warm-cache subscription session to the current active, if any.
    uplink_session: MoqtSession | None = None
    #: False once the origin has been deposed by a promotion.
    alive: bool = True
    #: When :meth:`OriginCluster.crash_active` silently crashed this origin
    #: (None while healthy) — the reference point promotion latency is
    #: measured from.
    crashed_at: float | None = None
    #: The failover event that promoted this origin's successor, once one
    #: ran (set by the topology; makes
    #: :meth:`~repro.relaynet.topology.RelayTopology.report_origin_failure`
    #: idempotent when several tier-0 relays detect the same death).
    failure_event: object | None = None

    @property
    def address(self) -> Address:
        """Address downstream sessions connect to."""
        return self.server_endpoint.address

    @property
    def high_water(self) -> Location | None:
        """Largest location this origin's (warm) state holds."""
        return self.publisher.high_water


@dataclass
class OriginPromotion:
    """One epoch transition: which standby took over, when, and why."""

    epoch: int
    old_active: str
    new_active: str
    at: float
    detected_via: str = ""
    detection_latency: float | None = None
    #: Objects the publisher-side replay ring seeded into the new active's
    #: state above its cached high-water mark (the outage window).
    replayed_objects: int = 0


class OriginCluster:
    """An active origin plus N warm standbys on one network.

    Parameters
    ----------
    network:
        The network all origin hosts live on.
    origins:
        Total origin instances (1 active + ``origins - 1`` standbys).  With
        ``origins=1`` the cluster degenerates to the historical singleton
        (no standby hosts, links or subscriptions are created at all).
    host / port / track:
        The active origin's host name, serving port and the track every
        standby keeps warm — defaults identical to the historical
        ``build_origin`` singleton, so tree wiring is unchanged.
    standby_link:
        Link between each standby and the active (and between standbys, so
        a second promotion never has to create topology mid-failover).
    standby_connection:
        QUIC configuration for the standbys' warm-subscription uplinks.
        The default is the plain MoQT-ALPN configuration: standbys are
        *not* detectors — tier-0 relays are — so no keepalives are needed.
    replay_window:
        Size of the publisher-side replay ring (see
        :data:`DEFAULT_REPLAY_WINDOW`).
    """

    def __init__(
        self,
        network: Network,
        origins: int = 2,
        host: str = ORIGIN_HOST,
        port: int = ORIGIN_PORT,
        track: FullTrackName = TRACK,
        standby_link: LinkConfig | None = None,
        standby_connection: ConnectionConfig | None = None,
        replay_window: int = DEFAULT_REPLAY_WINDOW,
    ) -> None:
        if origins < 1:
            raise ValueError(f"a cluster needs at least one origin: {origins}")
        self.network = network
        self.track = track
        self.port = port
        self.standby_link = standby_link if standby_link is not None else LinkConfig(delay=0.020)
        self.standby_connection = standby_connection
        self.replay_window = replay_window
        #: Monotonic promotion epoch: 0 until the first promotion.
        self.epoch = 0
        self.promotions: list[OriginPromotion] = []
        self._replay: list[MoqtObject] = []
        self.origins: list[ClusterOrigin] = []

        # The active origin is built exactly like the historical singleton:
        # same host name, same port, same endpoint wiring — a tree attached
        # to a never-failing cluster is bit-identical on its own links.
        active_host = network.add_host(host)
        active_publisher = OriginPublisher(network, track=track)
        self.origins.append(
            ClusterOrigin(
                index=0,
                host=active_host,
                publisher=active_publisher,
                server_endpoint=build_origin_endpoint(active_host, active_publisher, port),
                role="active",
            )
        )
        self._active = self.origins[0]
        for index in range(1, origins):
            standby_host = network.add_host(f"{host}-s{index}")
            publisher = OriginPublisher(network, track=track, seed_initial=False)
            standby = ClusterOrigin(
                index=index,
                host=standby_host,
                publisher=publisher,
                server_endpoint=build_origin_endpoint(standby_host, publisher, port),
                role="standby",
                client_endpoint=QuicEndpoint(standby_host),
            )
            # Full origin mesh: a later promotion (including a second one
            # after a double failure) re-points warm subscriptions without
            # creating links mid-failover.
            for other in self.origins:
                network.connect(other.host, standby_host, self.standby_link)
            self.origins.append(standby)
            self._attach_standby(standby)

    # -------------------------------------------------------------- structure
    @property
    def active(self) -> ClusterOrigin:
        """The origin currently holding the publisher role."""
        return self._active

    @property
    def address(self) -> Address:
        """The current active origin's address."""
        return self._active.address

    @property
    def publisher(self) -> OriginPublisher:
        """The current active origin's publisher."""
        return self._active.publisher

    def standbys(self) -> list[ClusterOrigin]:
        """Alive standbys, promotion order (lowest index first)."""
        return [
            origin
            for origin in self.origins
            if origin.alive and origin.role == "standby"
        ]

    def origin_at(self, address: Address) -> ClusterOrigin | None:
        """Resolve an address to the cluster member serving it, if any."""
        for origin in self.origins:
            if origin.host.address == address.host:
                return origin
        return None

    @property
    def objects_sent(self) -> int:
        """Objects pushed over every origin's downstream sessions."""
        return sum(origin.publisher.objects_sent for origin in self.origins)

    # ------------------------------------------------------------- publishing
    def push(self, obj: MoqtObject) -> None:
        """Publish one object through the current active origin.

        The object also enters the bounded publisher-side replay ring: an
        object pushed into a silently dead active reaches nobody, and the
        standby's warm subscription died with the active — the ring is the
        only copy, drained into the promoted standby's state so tier-0 gap
        FETCHes recover the outage window and subscribers stay gapless.
        """
        self._replay.append(obj)
        if len(self._replay) > self.replay_window:
            del self._replay[: len(self._replay) - self.replay_window]
        self._active.publisher.push(obj)

    # --------------------------------------------------------- fault injection
    def crash_active(self) -> ClusterOrigin:
        """Silently crash the active origin *without telling anyone*.

        Pure fault injection, the origin-tier counterpart of
        :meth:`~repro.relaynet.topology.RelayTopology.crash_relay`: no close
        frames, no callbacks, ports unbound, ``alive`` deliberately stays
        True — the cluster controller does not know yet.  Recovery happens
        only when a tier-0 relay's transport notices and reports the death
        in-band.
        """
        active = self._active
        if active.crashed_at is not None:
            raise ValueError(f"origin {active.host.address} already crashed")
        active.crashed_at = self.network.simulator.now
        for session in active.publisher.sessions:
            session.closed = True
        active.server_endpoint.abandon()
        if active.client_endpoint is not None:
            active.client_endpoint.abandon()
        if active.uplink_session is not None:
            active.uplink_session.closed = True
        return active

    # --------------------------------------------------------------- election
    def promote(
        self,
        via: str = "",
        detection_latency: float | None = None,
    ) -> OriginPromotion | None:
        """Depose the active origin and elect its successor (one epoch step).

        Deterministic: the lowest-index alive standby wins.  Returns None
        when no standby survives — the caller records the terminal event
        and raises the structured error.  The new active's state is topped
        up from the replay ring above its cached high-water mark, and every
        surviving standby re-points its warm subscription at the new active
        (with its own gap FETCH), so a *second* promotion finds warm caches
        again.
        """
        now = self.network.simulator.now
        old = self._active
        old.alive = False
        old.role = "deposed"
        candidates = self.standbys()
        if not candidates:
            return None
        new = candidates[0]
        new.role = "active"
        self._active = new
        self.epoch += 1
        self._drop_uplink(new)
        replayed = self._drain_replay_into(new)
        promotion = OriginPromotion(
            epoch=self.epoch,
            old_active=old.host.address,
            new_active=new.host.address,
            at=now,
            detected_via=via,
            detection_latency=detection_latency,
            replayed_objects=replayed,
        )
        self.promotions.append(promotion)
        spans = self.network.telemetry.spans
        if spans is not None and hasattr(spans, "record_promotion"):
            spans.record_promotion(
                epoch=self.epoch,
                old_active=promotion.old_active,
                new_active=promotion.new_active,
                at=now,
                detection_latency=detection_latency,
            )
        for standby in self.standbys():
            self._attach_standby(standby)
        return promotion

    def _drain_replay_into(self, origin: ClusterOrigin) -> int:
        """Seed the replay ring's tail above ``origin``'s high-water mark."""
        replayed = 0
        for obj in self._replay:
            largest = origin.publisher.state.largest
            if largest is None or obj.location > largest:
                origin.publisher.state.publish(obj)
                replayed += 1
        return replayed

    @staticmethod
    def _drop_uplink(origin: ClusterOrigin) -> None:
        """Silently abandon an origin's warm-subscription uplink, if any.

        The uplink points at a dead (or deposed) active; an announced close
        would put bytes on the wire toward a host that cannot answer, so the
        connection is abandoned instead — its timers die with it.
        """
        session = origin.uplink_session
        if session is None:
            return
        origin.uplink_session = None
        if not session.closed:
            session.closed = True
        if not session.connection.closed:
            session.connection.abandon()

    # ------------------------------------------------------------- warm cache
    def _attach_standby(self, standby: ClusterOrigin) -> None:
        """Point ``standby``'s warm-cache subscription at the current active.

        Live objects stream into the standby's own track state; the gap
        between the standby's high-water mark and the active's current
        position (anything missed while re-attaching after a promotion) is
        filled with a FETCH, so the cache stays contiguous.
        """
        self._drop_uplink(standby)
        config = self.standby_connection
        if config is None:
            config = ConnectionConfig(alpn_protocols=(MOQT_ALPN,))
        assert standby.client_endpoint is not None
        connection = standby.client_endpoint.connect(self._active.address, config)
        session = MoqtSession(connection, is_client=True)
        standby.uplink_session = session
        state = standby.publisher.state

        def absorb(obj: MoqtObject) -> None:
            # The warm stream and a catch-up FETCH may overlap; TrackState
            # accepts identical re-publishes, so absorption is idempotent.
            state.publish(obj)

        resume = state.largest

        def on_response(subscription, session=session) -> None:
            if not subscription.is_active or resume is None:
                return
            # Catch up on anything published between the old active's death
            # and this subscription going live (inclusive range; identical
            # re-publishes are absorbed idempotently).
            session.fetch(
                self.track,
                resume,
                OPEN_RANGE_END,
                on_complete=lambda fetch_request: [
                    absorb(obj)
                    for obj in (fetch_request.objects if fetch_request.succeeded else ())
                ],
            )

        session.subscribe(self.track, on_object=absorb, on_response=on_response)
