"""Hierarchical relay fan-out trees for CDN-scale DNS pub/sub (§3, §5.3).

The paper's central scalability argument is that MoQT relays are payload
oblivious, so a single authoritative server can push DNS record updates to
millions of resolvers through a tree of generic relays: the origin serves
only its direct children, every tier multiplies the fan-out, and each relay
aggregates its whole subtree into one upstream subscription.  This package
turns that argument into an executable subsystem:

* :mod:`repro.relaynet.spec` — declarative tree shapes
  (:class:`RelayTreeSpec`): star, balanced k-ary, and the CDN
  origin/mid/edge hierarchy, each tier with its own link configuration;
* :mod:`repro.relaynet.topology` — :class:`RelayTopology`, the live
  membership registry: dynamic join/leave (`add_relay`/`remove_relay`),
  crash failover (`kill_relay`) with pluggable policies
  (:class:`SiblingFailover`, :class:`GrandparentFailover`), in-band
  failure detection (`crash_relay` + `report_failure`, driven by QUIC
  liveness instead of a control-plane kill signal), load-aware subscriber
  placement, and FETCH-based gap recovery so established subscriptions
  survive churn without duplicates or gaps;
* :mod:`repro.relaynet.origincluster` — :class:`OriginCluster`, the
  replicated origin: one active publisher plus warm standbys kept current
  by live MoQT subscriptions, a silent `crash_active` fault injector, and
  deterministic epoch-numbered promotion driven by the same in-band
  detection path (`report_origin_failure`) when tier-0 uplinks notice the
  active died;
* :mod:`repro.relaynet.builder` — :class:`RelayTreeBuilder` and
  :class:`RelayTree`, thin construction fronts instantiating a spec on a
  :class:`~repro.netsim.network.Network` (one
  :class:`~repro.moqt.relay.MoqtRelay` per node, wired to its parent) and
  attaching subscriber sessions below the edge tier;
* :mod:`repro.relaynet.stats` — :class:`RelayNetStats` snapshots per-tier
  relay counters, cache hit/miss totals and uplink bytes, with snapshot
  deltas to isolate measurement windows;
* :mod:`repro.relaynet.aggregate` — :class:`AggregateLeaf`, the exact
  counted-leaf representation behind ``aggregate_leaves=``: each edge
  relay's homogeneous subscriber population rides one live connection
  with a multiplicity, statistics are multiplied out at collection time,
  and members materialise to dense subscribers on demand (span sampling,
  churn, explicit splits) — the machinery that makes the 1M-subscriber
  macro (`cdn_macro_1m`) tractable without bending a single measured byte.

The matching analytical models live in :mod:`repro.analysis.fanout`
(static fan-out), :mod:`repro.analysis.churn` (failover recovery) and
:mod:`repro.analysis.detection` (in-band detection latency); the
measured-vs-model experiments are :mod:`repro.experiments.relay_fanout`
(E11), :mod:`repro.experiments.relay_churn` (E12) and
:mod:`repro.experiments.failure_detection` (E13).
"""

from repro.relaynet.spec import RelayTierSpec, RelayTreeSpec
from repro.relaynet.admission import (
    UNLIMITED,
    AdmissionController,
    AdmissionDecision,
    AdmissionPolicy,
    RetryPolicy,
)
from repro.relaynet.aggregate import AggregateLeaf, expand_member_sequences
from repro.relaynet.builder import RelayNode, RelayTree, RelayTreeBuilder, TreeSubscriber
from repro.relaynet.origincluster import ClusterOrigin, OriginCluster, OriginPromotion
from repro.relaynet.stats import RelayNetStats, TierStats
from repro.relaynet.topology import (
    AdmissionRecord,
    FailoverEvent,
    FailoverPolicy,
    FailoverRecord,
    FlashCrowdStorm,
    GrandparentFailover,
    NoSurvivingParentError,
    RelayTopology,
    SiblingFailover,
)

__all__ = [
    "AggregateLeaf",
    "expand_member_sequences",
    "RelayTierSpec",
    "RelayTreeSpec",
    "RelayNode",
    "RelayTree",
    "RelayTreeBuilder",
    "TreeSubscriber",
    "ClusterOrigin",
    "OriginCluster",
    "OriginPromotion",
    "RelayNetStats",
    "TierStats",
    "RelayTopology",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmissionRecord",
    "RetryPolicy",
    "UNLIMITED",
    "FlashCrowdStorm",
    "FailoverPolicy",
    "FailoverEvent",
    "FailoverRecord",
    "NoSurvivingParentError",
    "SiblingFailover",
    "GrandparentFailover",
]
