"""Hierarchical relay fan-out trees for CDN-scale DNS pub/sub (§3, §5.3).

The paper's central scalability argument is that MoQT relays are payload
oblivious, so a single authoritative server can push DNS record updates to
millions of resolvers through a tree of generic relays: the origin serves
only its direct children, every tier multiplies the fan-out, and each relay
aggregates its whole subtree into one upstream subscription.  This package
turns that argument into an executable subsystem:

* :mod:`repro.relaynet.spec` — declarative tree shapes
  (:class:`RelayTreeSpec`): star, balanced k-ary, and the CDN
  origin/mid/edge hierarchy, each tier with its own link configuration;
* :mod:`repro.relaynet.builder` — :class:`RelayTreeBuilder` instantiates a
  spec on a :class:`~repro.netsim.network.Network`, wiring one
  :class:`~repro.moqt.relay.MoqtRelay` per node to its parent, and
  :class:`RelayTree` attaches subscriber sessions round-robin below the edge
  tier;
* :mod:`repro.relaynet.stats` — :class:`RelayNetStats` snapshots per-tier
  relay counters, cache hit/miss totals and uplink bytes, with snapshot
  deltas to isolate measurement windows.

The matching analytical model lives in :mod:`repro.analysis.fanout` and the
measured-vs-model experiment in :mod:`repro.experiments.relay_fanout`.
"""

from repro.relaynet.spec import RelayTierSpec, RelayTreeSpec
from repro.relaynet.builder import RelayNode, RelayTree, RelayTreeBuilder, TreeSubscriber
from repro.relaynet.stats import RelayNetStats, TierStats

__all__ = [
    "RelayTierSpec",
    "RelayTreeSpec",
    "RelayNode",
    "RelayTree",
    "RelayTreeBuilder",
    "TreeSubscriber",
    "RelayNetStats",
    "TierStats",
]
