"""Change counting with the paper's lexicographic comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.netsim.stats import SummaryStatistics


def count_changes(samples: Sequence[Iterable[str]]) -> int:
    """Count changes between consecutive samples of RDATA values.

    Each sample is the set of RDATA strings observed at one observation
    instant.  Samples are lexicographically ordered before comparison, so a
    round-robin rotation of the same values does not count as a change —
    exactly the §2 methodology ("we compared the lexicographic ordered sample
    on positions n to n-1").
    """
    ordered = [tuple(sorted(sample)) for sample in samples]
    changes = 0
    for previous, current in zip(ordered, ordered[1:]):
        if previous != current:
            changes += 1
    return changes


@dataclass
class ChangeRateSummary:
    """Percentile summary of change counts for one TTL cluster."""

    ttl: int
    domains: int
    observations: int
    p50: float
    p90: float
    p99: float
    mean: float
    max: float
    zero_change_fraction: float

    def as_row(self) -> dict[str, float]:
        """A flat dictionary row for report tables."""
        return {
            "ttl": float(self.ttl),
            "domains": float(self.domains),
            "observations": float(self.observations),
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "mean": self.mean,
            "max": self.max,
            "zero_change_fraction": self.zero_change_fraction,
        }


def summarize_change_counts(
    ttl: int, change_counts: Sequence[int], observations: int
) -> ChangeRateSummary:
    """Summarise per-domain change counts for one TTL cluster."""
    statistics = SummaryStatistics()
    statistics.extend(float(count) for count in change_counts)
    zero = sum(1 for count in change_counts if count == 0)
    return ChangeRateSummary(
        ttl=ttl,
        domains=len(change_counts),
        observations=observations,
        p50=statistics.percentile(50),
        p90=statistics.percentile(90),
        p99=statistics.percentile(99),
        mean=statistics.mean,
        max=statistics.maximum,
        zero_change_fraction=zero / len(change_counts) if change_counts else 0.0,
    )
