"""The §2 measurement campaign: TTL distribution and change rates.

:class:`MeasurementCampaign` reproduces the two halves of the paper's
measurement study against the synthetic workload:

* :meth:`MeasurementCampaign.ttl_distribution` — which record types the top
  list publishes and how their TTLs are distributed (Fig. 1a);
* :meth:`MeasurementCampaign.change_rates` — for each TTL cluster, the
  distribution of the number of record changes over 300 consecutive
  TTL-spaced observations, using the lexicographic comparison (Fig. 1b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.types import RecordType
from repro.measurement.change_rate import ChangeRateSummary, count_changes, summarize_change_counts
from repro.workload.change_model import ChangeModel
from repro.workload.toplist import SyntheticToplist
from repro.workload.ttl_model import TTL_CLUSTERS


@dataclass
class CampaignConfig:
    """Parameters of the measurement campaign."""

    #: Number of consecutive observations per record (the paper uses 300).
    observations: int = 300
    #: Record types analysed for the TTL distribution.
    record_types: tuple[RecordType, ...] = (RecordType.A, RecordType.AAAA, RecordType.HTTPS)
    #: Record type analysed for change rates (the paper reports A; it notes
    #: AAAA behaves the same and HTTPS like A at TTL 300).
    change_rate_type: RecordType = RecordType.A
    #: Cap on domains per TTL cluster for the change-rate study (None = all).
    max_domains_per_ttl: int | None = None


@dataclass
class TtlDistributionResult:
    """Fig. 1a data: per-type totals and per-type TTL histograms."""

    totals: dict[RecordType, int]
    histograms: dict[RecordType, dict[int, int]]
    population: int

    def fraction(self, rdtype: RecordType) -> float:
        """Share of the population publishing this record type."""
        return self.totals.get(rdtype, 0) / self.population if self.population else 0.0

    def rows(self) -> list[dict[str, object]]:
        """Flat rows (type, ttl, count) for report tables."""
        rows: list[dict[str, object]] = []
        for rdtype, histogram in self.histograms.items():
            for ttl, count in sorted(histogram.items()):
                rows.append({"type": rdtype.to_text(), "ttl": ttl, "count": count})
        return rows


@dataclass
class ChangeRateResult:
    """Fig. 1b data: change-count summaries per TTL cluster."""

    summaries: dict[int, ChangeRateSummary]
    observations: int
    per_domain_counts: dict[int, list[int]] = field(default_factory=dict)

    def summary_for(self, ttl: int) -> ChangeRateSummary | None:
        """The summary for one TTL cluster, if measured."""
        return self.summaries.get(ttl)

    def rows(self) -> list[dict[str, float]]:
        """Flat rows for report tables, ordered by TTL."""
        return [self.summaries[ttl].as_row() for ttl in sorted(self.summaries)]


class MeasurementCampaign:
    """Runs the §2 measurement methodology against the synthetic workload."""

    def __init__(
        self,
        toplist: SyntheticToplist,
        change_model: ChangeModel | None = None,
        config: CampaignConfig | None = None,
    ) -> None:
        self.toplist = toplist
        self.change_model = change_model if change_model is not None else ChangeModel()
        self.config = config if config is not None else CampaignConfig()

    # ------------------------------------------------------------------ Fig 1a
    def ttl_distribution(self) -> TtlDistributionResult:
        """Record-type coverage and TTL histograms (Fig. 1a)."""
        totals: dict[RecordType, int] = {}
        histograms: dict[RecordType, dict[int, int]] = {}
        for rdtype in self.config.record_types:
            domains = self.toplist.domains_with_type(rdtype)
            totals[rdtype] = len(domains)
            histograms[rdtype] = self.toplist.ttl_histogram(rdtype)
        return TtlDistributionResult(
            totals=totals, histograms=histograms, population=len(self.toplist)
        )

    # ------------------------------------------------------------------ Fig 1b
    def change_rates(self) -> ChangeRateResult:
        """Change counts over TTL-spaced observations per TTL cluster (Fig. 1b).

        For each domain publishing the analysed record type, the domain's
        change process is observed ``observations`` times at TTL spacing; the
        lexicographically ordered RDATA of consecutive observations are
        compared and the changes counted, then summarised per TTL cluster.
        """
        per_ttl_counts: dict[int, list[int]] = {ttl: [] for ttl in TTL_CLUSTERS}
        rdtype = self.config.change_rate_type
        per_ttl_domains: dict[int, int] = {ttl: 0 for ttl in TTL_CLUSTERS}
        for domain in self.toplist.domains_with_type(rdtype):
            ttl = domain.ttl_for(rdtype)
            if ttl is None or ttl not in per_ttl_counts:
                continue
            if (
                self.config.max_domains_per_ttl is not None
                and per_ttl_domains[ttl] >= self.config.max_domains_per_ttl
            ):
                continue
            per_ttl_domains[ttl] += 1
            process = self.change_model.process_for(domain.rank, ttl, rdtype)
            samples = [process.current_sorted()]
            for _ in range(self.config.observations - 1):
                process.advance()
                samples.append(process.current_sorted())
            per_ttl_counts[ttl].append(count_changes(samples))
        summaries = {
            ttl: summarize_change_counts(ttl, counts, self.config.observations)
            for ttl, counts in per_ttl_counts.items()
            if counts
        }
        return ChangeRateResult(
            summaries=summaries,
            observations=self.config.observations,
            per_domain_counts={ttl: counts for ttl, counts in per_ttl_counts.items() if counts},
        )
