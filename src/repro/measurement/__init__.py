"""The measurement pipeline of §2 of the paper.

The paper's methodology is reproduced faithfully:

1. resolve the top list and record which record types each domain publishes
   and with which TTLs (Fig. 1a);
2. for each record, take 300 consecutive observations spaced by the record's
   TTL and count how often the *lexicographically ordered* RDATA changed
   between observation *n-1* and *n* (Fig. 1b) — the ordering removes the
   round-robin bias the paper calls out;
3. summarise change counts per TTL cluster as percentiles.

The observation source is pluggable: the fast path observes the synthetic
change processes directly (equivalent, since resolution is deterministic in
the simulator), and an end-to-end path resolves through the simulated
resolver stack for a subsample to validate that equivalence.
"""

from repro.measurement.change_rate import count_changes, ChangeRateSummary, summarize_change_counts
from repro.measurement.campaign import (
    MeasurementCampaign,
    CampaignConfig,
    TtlDistributionResult,
    ChangeRateResult,
)

__all__ = [
    "count_changes",
    "ChangeRateSummary",
    "summarize_change_counts",
    "MeasurementCampaign",
    "CampaignConfig",
    "TtlDistributionResult",
    "ChangeRateResult",
]
