"""Classic recursive and stub resolvers (the paper's baseline DNS).

The :class:`RecursiveResolver` performs iterative resolution exactly as §1 of
the paper describes: it asks a root server, follows the referral to the TLD
server, follows the next referral to the authoritative server, and caches the
final answer for its TTL.  It simultaneously serves stub resolvers over
classic DNS/UDP.

The :class:`StubResolver` forwards queries to a configured recursive resolver
and keeps its own small cache, mirroring an operating-system stub.

Both are callback-based because the whole system runs on the discrete-event
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dns.cache import DnsCache
from repro.dns.message import Message, make_query, make_response
from repro.dns.name import Name
from repro.dns.rr import ResourceRecord, RRset
from repro.dns.transport import DnsUdpEndpoint
from repro.dns.types import DNS_UDP_PORT, DNSClass, Rcode, RecordType
from repro.netsim.node import Host
from repro.netsim.packet import Address

ResolveCallback = Callable[["ResolutionOutcome"], None]

MAX_REFERRALS = 16
NEGATIVE_TTL = 60.0


class ResolutionError(Exception):
    """Raised when a resolution cannot even be started."""


@dataclass
class ResolutionOutcome:
    """The result handed to a resolution callback.

    Attributes
    ----------
    rcode:
        Final response code (SERVFAIL when every upstream timed out).
    rrset:
        The answer RRset, if any.
    answers:
        The full answer section (including CNAME chain records).
    from_cache:
        Whether the answer was served from cache without upstream queries.
    upstream_queries:
        Number of upstream query/response exchanges performed.
    duration:
        Virtual seconds from request to completion.
    """

    rcode: Rcode
    rrset: RRset | None = None
    answers: tuple[ResourceRecord, ...] = ()
    from_cache: bool = False
    upstream_queries: int = 0
    duration: float = 0.0

    @property
    def is_success(self) -> bool:
        """Whether a usable answer (possibly empty NOERROR) was obtained."""
        return self.rcode in (Rcode.NOERROR, Rcode.NXDOMAIN)


@dataclass
class ResolverStatistics:
    """Counters kept by the recursive resolver."""

    client_queries: int = 0
    cache_hits: int = 0
    upstream_queries: int = 0
    failures: int = 0
    referrals_followed: int = 0


class RecursiveResolver:
    """An iterative recursive resolver with a cache, serving stubs over UDP.

    Parameters
    ----------
    host:
        The simulated host the resolver runs on.
    root_servers:
        Addresses of root authoritative servers (classic DNS/UDP).
    serve_port:
        Port on which stub queries are accepted (53 by default); pass ``None``
        to disable serving and use the resolver as a pure client library.
    """

    def __init__(
        self,
        host: Host,
        root_servers: list[Address],
        serve_port: int | None = DNS_UDP_PORT,
        cache: DnsCache | None = None,
    ) -> None:
        if not root_servers:
            raise ResolutionError("at least one root server address is required")
        self.host = host
        self.simulator = host.simulator
        self.root_servers = list(root_servers)
        self.cache = cache if cache is not None else DnsCache(host.simulator)
        self.statistics = ResolverStatistics()
        self._client = DnsUdpEndpoint(host)
        self._server: DnsUdpEndpoint | None = None
        if serve_port is not None:
            self._server = DnsUdpEndpoint(host, port=serve_port, handler=self._handle_client_query)

    @property
    def address(self) -> Address | None:
        """The address stub resolvers should use (None when not serving)."""
        return self._server.address if self._server is not None else None

    # --------------------------------------------------------------- serving
    def _handle_client_query(self, query: Message, source: Address, respond) -> None:
        self.statistics.client_queries += 1
        if not query.questions:
            respond(make_response(query, rcode=Rcode.FORMERR))
            return
        question = query.question

        def finished(outcome: ResolutionOutcome) -> None:
            respond(
                make_response(
                    query,
                    answers=outcome.answers,
                    rcode=outcome.rcode if outcome.is_success else Rcode.SERVFAIL,
                    recursion_available=True,
                )
            )

        self.resolve(question.qname, question.qtype, finished)

    # ------------------------------------------------------------- resolution
    def resolve(
        self,
        qname: Name | str,
        qtype: RecordType | str,
        callback: ResolveCallback,
    ) -> None:
        """Resolve a name, using the cache and iterating from the roots."""
        name = qname if isinstance(qname, Name) else Name.from_text(qname)
        rdtype = qtype if isinstance(qtype, RecordType) else RecordType.from_text(qtype)
        started_at = self.simulator.now

        cached = self.cache.get(name, rdtype)
        if cached is not None:
            self.statistics.cache_hits += 1
            rrset = None
            if cached.rrset is not None:
                remaining = int(cached.remaining_ttl(self.simulator.now))
                rrset = cached.rrset.with_ttl(max(0, remaining))
            callback(
                ResolutionOutcome(
                    rcode=cached.rcode,
                    rrset=rrset,
                    answers=tuple(rrset) if rrset is not None else (),
                    from_cache=True,
                    duration=0.0,
                )
            )
            return

        task = _ResolutionTask(self, name, rdtype, callback, started_at)
        task.start()

    # ------------------------------------------------------------------ upkeep
    def note_upstream_query(self) -> None:
        """Internal: count one upstream exchange."""
        self.statistics.upstream_queries += 1

    def send_upstream(self, message: Message, destination: Address, callback) -> None:
        """Internal: send a query upstream through the client endpoint."""
        self.note_upstream_query()
        self._client.query(message, destination, callback)


class _ResolutionTask:
    """State machine for one iterative resolution."""

    def __init__(
        self,
        resolver: RecursiveResolver,
        qname: Name,
        qtype: RecordType,
        callback: ResolveCallback,
        started_at: float,
    ) -> None:
        self._resolver = resolver
        self._qname = qname
        self._qtype = qtype
        self._callback = callback
        self._started_at = started_at
        self._servers: list[Address] = list(resolver.root_servers)
        self._referrals = 0
        self._upstream = 0
        self._answers: list[ResourceRecord] = []

    def start(self) -> None:
        """Begin by querying the first configured root server."""
        self._query_next()

    def _finish(self, rcode: Rcode, rrset: RRset | None) -> None:
        outcome = ResolutionOutcome(
            rcode=rcode,
            rrset=rrset,
            answers=tuple(self._answers),
            upstream_queries=self._upstream,
            duration=self._resolver.simulator.now - self._started_at,
        )
        if not outcome.is_success:
            self._resolver.statistics.failures += 1
        self._callback(outcome)

    def _query_next(self) -> None:
        if not self._servers:
            self._finish(Rcode.SERVFAIL, None)
            return
        destination = self._servers[0]
        query = make_query(self._qname, self._qtype, recursion_desired=False)
        self._upstream += 1
        self._resolver.send_upstream(query, destination, self._on_response)

    def _on_response(self, response: Message | None) -> None:
        if response is None:
            # Timeout on this server: try the next one.
            self._servers.pop(0)
            self._query_next()
            return
        if response.rcode == Rcode.NXDOMAIN:
            self._cache_negative(response)
            self._finish(Rcode.NXDOMAIN, None)
            return
        if response.rcode != Rcode.NOERROR:
            self._finish(response.rcode, None)
            return

        direct = [
            record
            for record in response.answers
            if record.name == self._qname and record.rdtype == self._qtype
        ]
        cnames = [record for record in response.answers if record.rdtype == RecordType.CNAME]
        if direct:
            self._answers.extend(response.answers)
            rrset = RRset(self._qname, self._qtype, direct)
            self._resolver.cache.put(self._qname, self._qtype, rrset)
            self._finish(Rcode.NOERROR, rrset)
            return
        if cnames:
            # Follow the CNAME: restart resolution at the target.
            self._answers.extend(cnames)
            target = cnames[-1].rdata.target  # type: ignore[attr-defined]
            self._qname = target
            self._servers = list(self._resolver.root_servers)
            self._referrals += 1
            if self._referrals > MAX_REFERRALS:
                self._finish(Rcode.SERVFAIL, None)
                return
            self._query_next()
            return

        ns_records = [record for record in response.authorities if record.rdtype == RecordType.NS]
        if ns_records:
            glue = {
                record.name: record.rdata.to_text()
                for record in response.additionals
                if record.rdtype in (RecordType.A, RecordType.AAAA)
            }
            next_servers: list[Address] = []
            for ns_record in ns_records:
                target = ns_record.rdata.target  # type: ignore[attr-defined]
                if target in glue:
                    next_servers.append(Address(glue[target], DNS_UDP_PORT))
            if next_servers:
                self._referrals += 1
                self._resolver.statistics.referrals_followed += 1
                if self._referrals > MAX_REFERRALS:
                    self._finish(Rcode.SERVFAIL, None)
                    return
                self._servers = next_servers
                self._query_next()
                return
            # Glueless delegation: we would need to resolve the NS name first;
            # the workloads in this repository always provide glue, so treat
            # a glueless referral as a failure rather than recursing forever.
            self._finish(Rcode.SERVFAIL, None)
            return

        # NOERROR with no data: negative-cache and return an empty answer.
        self._cache_negative(response)
        self._finish(Rcode.NOERROR, None)

    def _cache_negative(self, response: Message) -> None:
        soa_ttl = NEGATIVE_TTL
        for record in response.authorities:
            if record.rdtype == RecordType.SOA:
                soa_ttl = float(min(record.ttl, record.rdata.minimum))  # type: ignore[attr-defined]
                break
        self._resolver.cache.put(
            self._qname, self._qtype, None, rcode=response.rcode, ttl=soa_ttl
        )


@dataclass
class StubStatistics:
    """Counters kept by a stub resolver."""

    queries: int = 0
    cache_hits: int = 0
    failures: int = 0


class StubResolver:
    """A stub resolver forwarding to a recursive resolver over UDP."""

    def __init__(
        self,
        host: Host,
        recursive_address: Address,
        cache: DnsCache | None = None,
    ) -> None:
        self.host = host
        self.simulator = host.simulator
        self.recursive_address = recursive_address
        self.cache = cache if cache is not None else DnsCache(host.simulator)
        self.statistics = StubStatistics()
        self._endpoint = DnsUdpEndpoint(host)

    def resolve(
        self,
        qname: Name | str,
        qtype: RecordType | str,
        callback: ResolveCallback,
    ) -> None:
        """Resolve via the configured recursive resolver (cache first)."""
        name = qname if isinstance(qname, Name) else Name.from_text(qname)
        rdtype = qtype if isinstance(qtype, RecordType) else RecordType.from_text(qtype)
        self.statistics.queries += 1
        started_at = self.simulator.now

        cached = self.cache.get(name, rdtype)
        if cached is not None and cached.rrset is not None:
            self.statistics.cache_hits += 1
            remaining = int(cached.remaining_ttl(self.simulator.now))
            rrset = cached.rrset.with_ttl(max(0, remaining))
            callback(
                ResolutionOutcome(
                    rcode=cached.rcode, rrset=rrset, answers=tuple(rrset), from_cache=True
                )
            )
            return

        query = make_query(name, rdtype, recursion_desired=True)

        def on_response(response: Message | None) -> None:
            duration = self.simulator.now - started_at
            if response is None:
                self.statistics.failures += 1
                callback(ResolutionOutcome(rcode=Rcode.SERVFAIL, duration=duration))
                return
            rrset = response.answer_rrset(rdtype)
            if rrset is not None:
                self.cache.put(name, rdtype, rrset)
            callback(
                ResolutionOutcome(
                    rcode=response.rcode,
                    rrset=rrset,
                    answers=tuple(response.answers),
                    upstream_queries=1,
                    duration=duration,
                )
            )

        self._endpoint.query(query, self.recursive_address, on_response)
