"""DNS constants: record types, classes, opcodes and response codes."""

from __future__ import annotations

import enum


class RecordType(enum.IntEnum):
    """DNS resource-record (and query) types used in this repository."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    SRV = 33
    OPT = 41
    SVCB = 64
    HTTPS = 65
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RecordType":
        """Parse a record type mnemonic such as ``"AAAA"``."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown record type: {text!r}") from None

    def to_text(self) -> str:
        """The standard mnemonic for this type."""
        return self.name


class DNSClass(enum.IntEnum):
    """DNS classes; only IN is used in practice."""

    IN = 1
    CH = 3
    HS = 4
    NONE = 254
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "DNSClass":
        """Parse a class mnemonic such as ``"IN"``."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown DNS class: {text!r}") from None

    def to_text(self) -> str:
        """The standard mnemonic for this class."""
        return self.name


class Opcode(enum.IntEnum):
    """DNS opcodes (4 bits in the header)."""

    QUERY = 0
    IQUERY = 1
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    """DNS response codes (4 bits in the header)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5
    YXDOMAIN = 6
    YXRRSET = 7
    NXRRSET = 8
    NOTAUTH = 9
    NOTZONE = 10


# Well-known ports used by the simulated transports.
DNS_UDP_PORT = 53
DNS_QUIC_PORT = 853
MOQT_PORT = 4443

# The default/maximum UDP payload size assumed when no EDNS is present.
CLASSIC_UDP_LIMIT = 512
EDNS_UDP_LIMIT = 1232
