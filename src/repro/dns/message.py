"""DNS messages: header, question and record sections, with a wire codec.

The codec implements the RFC 1035 message format including name compression
on output and decompression on input.  Convenience constructors
(:func:`make_query`, :func:`make_response`) build the messages the servers
and resolvers in this repository exchange.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.dns.name import Name
from repro.dns.rr import ResourceRecord, RRset
from repro.dns.types import DNSClass, Opcode, Rcode, RecordType


class MessageError(ValueError):
    """Raised for malformed DNS messages."""


@dataclass(frozen=True)
class Flags:
    """The flag bits of the DNS header (QR, AA, TC, RD, RA, AD, CD)."""

    qr: bool = False
    aa: bool = False
    tc: bool = False
    rd: bool = True
    ra: bool = False
    ad: bool = False
    cd: bool = False

    def to_int(self, opcode: Opcode, rcode: Rcode) -> int:
        """Pack flags, opcode and rcode into the 16-bit header field."""
        value = 0
        value |= (1 << 15) if self.qr else 0
        value |= (int(opcode) & 0xF) << 11
        value |= (1 << 10) if self.aa else 0
        value |= (1 << 9) if self.tc else 0
        value |= (1 << 8) if self.rd else 0
        value |= (1 << 7) if self.ra else 0
        value |= (1 << 5) if self.ad else 0
        value |= (1 << 4) if self.cd else 0
        value |= int(rcode) & 0xF
        return value

    @classmethod
    def from_int(cls, value: int) -> tuple["Flags", Opcode, Rcode]:
        """Unpack the 16-bit header field into flags, opcode and rcode."""
        flags = cls(
            qr=bool(value & (1 << 15)),
            aa=bool(value & (1 << 10)),
            tc=bool(value & (1 << 9)),
            rd=bool(value & (1 << 8)),
            ra=bool(value & (1 << 7)),
            ad=bool(value & (1 << 5)),
            cd=bool(value & (1 << 4)),
        )
        opcode = Opcode((value >> 11) & 0xF)
        rcode = Rcode(value & 0xF)
        return flags, opcode, rcode


@dataclass(frozen=True)
class Header:
    """The fixed 12-byte DNS message header."""

    message_id: int = 0
    flags: Flags = field(default_factory=Flags)
    opcode: Opcode = Opcode.QUERY
    rcode: Rcode = Rcode.NOERROR

    def to_wire(self, counts: tuple[int, int, int, int]) -> bytes:
        """Encode with the given section counts (QD, AN, NS, AR)."""
        return struct.pack(
            "!HHHHHH",
            self.message_id,
            self.flags.to_int(self.opcode, self.rcode),
            *counts,
        )

    @classmethod
    def from_wire(cls, wire: bytes) -> tuple["Header", tuple[int, int, int, int]]:
        """Decode the header and section counts from the first 12 bytes."""
        if len(wire) < 12:
            raise MessageError("message shorter than the 12-byte header")
        message_id, raw_flags, qd, an, ns, ar = struct.unpack_from("!HHHHHH", wire, 0)
        flags, opcode, rcode = Flags.from_int(raw_flags)
        return cls(message_id, flags, opcode, rcode), (qd, an, ns, ar)


@dataclass(frozen=True)
class Question:
    """A question section entry: QNAME, QTYPE, QCLASS."""

    qname: Name
    qtype: RecordType
    qclass: DNSClass = DNSClass.IN

    def to_wire(self, compress: dict[Name, int] | None = None, offset: int = 0) -> bytes:
        """Encode the question."""
        return self.qname.to_wire(compress, offset) + struct.pack(
            "!HH", int(self.qtype), int(self.qclass)
        )

    @classmethod
    def from_wire(cls, wire: bytes, offset: int) -> tuple["Question", int]:
        """Decode a question starting at ``offset``."""
        qname, offset = Name.from_wire(wire, offset)
        qtype_raw, qclass_raw = struct.unpack_from("!HH", wire, offset)
        return cls(qname, RecordType(qtype_raw), DNSClass(qclass_raw)), offset + 4

    def to_text(self) -> str:
        """Presentation format, e.g. ``"www.example.com. IN A"``."""
        return f"{self.qname.to_text()} {self.qclass.to_text()} {self.qtype.to_text()}"


@dataclass
class Message:
    """A complete DNS message."""

    header: Header = field(default_factory=Header)
    questions: list[Question] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)
    authorities: list[ResourceRecord] = field(default_factory=list)
    additionals: list[ResourceRecord] = field(default_factory=list)

    # ------------------------------------------------------------ convenience
    @property
    def question(self) -> Question:
        """The first (usually only) question."""
        if not self.questions:
            raise MessageError("message has no question")
        return self.questions[0]

    @property
    def rcode(self) -> Rcode:
        """The response code."""
        return self.header.rcode

    @property
    def is_response(self) -> bool:
        """Whether the QR bit is set."""
        return self.header.flags.qr

    def answer_rrset(self, rdtype: RecordType | None = None) -> RRset | None:
        """Collect answer records (optionally of one type) into an RRset."""
        if not self.answers:
            return None
        wanted = rdtype if rdtype is not None else self.answers[0].rdtype
        matching = [record for record in self.answers if record.rdtype == wanted]
        if not matching:
            return None
        rrset = RRset(matching[0].name, wanted, rdclass=matching[0].rdclass)
        for record in matching:
            rrset.add(record)
        return rrset

    def records(self) -> list[ResourceRecord]:
        """All records from all three record sections."""
        return [*self.answers, *self.authorities, *self.additionals]

    # ------------------------------------------------------------------- wire
    def to_wire(self) -> bytes:
        """Encode the full message with name compression."""
        counts = (
            len(self.questions),
            len(self.answers),
            len(self.authorities),
            len(self.additionals),
        )
        output = bytearray(self.header.to_wire(counts))
        compress: dict[Name, int] = {}
        for question in self.questions:
            output += question.to_wire(compress, len(output))
        for record in self.records():
            output += record.to_wire(compress, len(output))
        return bytes(output)

    @classmethod
    def from_wire(cls, wire: bytes) -> "Message":
        """Decode a full message."""
        header, (qd, an, ns, ar) = Header.from_wire(wire)
        offset = 12
        questions: list[Question] = []
        for _ in range(qd):
            question, offset = Question.from_wire(wire, offset)
            questions.append(question)
        sections: list[list[ResourceRecord]] = [[], [], []]
        for section, count in zip(sections, (an, ns, ar)):
            for _ in range(count):
                record, offset = ResourceRecord.from_wire(wire, offset)
                section.append(record)
        return cls(header, questions, *sections)

    # ------------------------------------------------------------------- text
    def to_text(self) -> str:
        """A dig-like multi-line rendering used by examples and traces."""
        lines = [
            f";; opcode: {self.header.opcode.name}, rcode: {self.header.rcode.name}, "
            f"id: {self.header.message_id}",
            ";; QUESTION SECTION:",
        ]
        lines.extend(f";{question.to_text()}" for question in self.questions)
        for title, section in (
            ("ANSWER", self.answers),
            ("AUTHORITY", self.authorities),
            ("ADDITIONAL", self.additionals),
        ):
            if section:
                lines.append(f";; {title} SECTION:")
                lines.extend(record.to_text() for record in section)
        return "\n".join(lines)

    @property
    def size(self) -> int:
        """The encoded size of the message in bytes."""
        return len(self.to_wire())


def make_query(
    qname: Name | str,
    qtype: RecordType | str,
    message_id: int = 0,
    recursion_desired: bool = True,
    checking_disabled: bool = False,
    qclass: DNSClass = DNSClass.IN,
) -> Message:
    """Build a standard query message."""
    name = qname if isinstance(qname, Name) else Name.from_text(qname)
    rdtype = qtype if isinstance(qtype, RecordType) else RecordType.from_text(qtype)
    header = Header(
        message_id=message_id,
        flags=Flags(qr=False, rd=recursion_desired, cd=checking_disabled),
        opcode=Opcode.QUERY,
        rcode=Rcode.NOERROR,
    )
    return Message(header=header, questions=[Question(name, rdtype, qclass)])


def make_response(
    query: Message,
    answers: Iterable[ResourceRecord] = (),
    authorities: Iterable[ResourceRecord] = (),
    additionals: Iterable[ResourceRecord] = (),
    rcode: Rcode = Rcode.NOERROR,
    authoritative: bool = False,
    recursion_available: bool = False,
) -> Message:
    """Build a response mirroring the query's id and question."""
    flags = Flags(
        qr=True,
        aa=authoritative,
        rd=query.header.flags.rd,
        ra=recursion_available,
        cd=query.header.flags.cd,
    )
    header = Header(
        message_id=query.header.message_id,
        flags=flags,
        opcode=query.header.opcode,
        rcode=rcode,
    )
    return Message(
        header=header,
        questions=list(query.questions),
        answers=list(answers),
        authorities=list(authorities),
        additionals=list(additionals),
    )


def response_with_rrset(query: Message, rrset: RRset, **kwargs: object) -> Message:
    """Build a response whose answer section is the given RRset."""
    return make_response(query, answers=list(rrset), **kwargs)  # type: ignore[arg-type]
