"""Authoritative zone data with SOA-serial versioning.

A :class:`Zone` stores RRsets keyed by (owner name, type), answers queries
with the standard authoritative algorithm (exact match, CNAME, wildcard,
delegation, NXDOMAIN) and supports dynamic updates.  Every mutation bumps the
SOA serial; the DNS-over-MoQT authoritative server (``repro.core``) maps that
serial to the MoQT group ID it publishes updates under, as §4.2 of the paper
prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.dns.name import Name
from repro.dns.rdata import Rdata, SOARdata, parse_rdata
from repro.dns.rr import ResourceRecord, RRset
from repro.dns.types import DNSClass, Rcode, RecordType


class ZoneError(Exception):
    """Raised for invalid zone content or operations."""


@dataclass(frozen=True)
class LookupResult:
    """Result of an authoritative lookup.

    Attributes
    ----------
    rcode:
        NOERROR or NXDOMAIN.
    answers:
        Records for the answer section (possibly a CNAME chain).
    authorities:
        Records for the authority section (delegation NS or SOA for negative
        answers).
    additionals:
        Glue records.
    is_referral:
        True when the result delegates to a child zone.
    """

    rcode: Rcode
    answers: tuple[ResourceRecord, ...] = ()
    authorities: tuple[ResourceRecord, ...] = ()
    additionals: tuple[ResourceRecord, ...] = ()
    is_referral: bool = False


@dataclass(frozen=True)
class ZoneChange:
    """A record-set change applied to a zone (used for update notifications)."""

    serial: int
    name: Name
    rdtype: RecordType
    rrset: RRset | None


class Zone:
    """An authoritative DNS zone.

    Parameters
    ----------
    origin:
        The zone apex name.
    soa:
        The initial SOA RDATA; when omitted a default SOA with serial 1 is
        created.
    default_ttl:
        TTL applied to records added without an explicit TTL.
    """

    def __init__(
        self,
        origin: Name | str,
        soa: SOARdata | None = None,
        default_ttl: int = 300,
    ) -> None:
        self.origin = origin if isinstance(origin, Name) else Name.from_text(origin)
        self.default_ttl = default_ttl
        self._rrsets: dict[tuple[Name, RecordType], RRset] = {}
        self._listeners: list[Callable[[ZoneChange], None]] = []
        if soa is None:
            soa = SOARdata(
                mname=self.origin.child("ns1"),
                rname=self.origin.child("hostmaster"),
                serial=1,
            )
        self._soa_ttl = default_ttl
        self._put_soa(soa)

    # -------------------------------------------------------------- SOA state
    def _put_soa(self, soa: SOARdata) -> None:
        record = ResourceRecord(self.origin, RecordType.SOA, soa, self._soa_ttl)
        self._rrsets[(self.origin, RecordType.SOA)] = RRset(
            self.origin, RecordType.SOA, [record]
        )

    @property
    def soa(self) -> SOARdata:
        """The current SOA RDATA."""
        rrset = self._rrsets[(self.origin, RecordType.SOA)]
        record = rrset.records[0]
        assert isinstance(record.rdata, SOARdata)
        return record.rdata

    @property
    def serial(self) -> int:
        """The current zone serial (strictly monotonically increasing)."""
        return self.soa.serial

    def bump_serial(self) -> int:
        """Increment the serial and return the new value."""
        soa = self.soa
        new_soa = SOARdata(
            soa.mname, soa.rname, soa.serial + 1, soa.refresh, soa.retry, soa.expire, soa.minimum
        )
        self._put_soa(new_soa)
        return new_soa.serial

    # -------------------------------------------------------------- listeners
    def subscribe_changes(self, listener: Callable[[ZoneChange], None]) -> None:
        """Register a callback fired after every record-set mutation."""
        self._listeners.append(listener)

    def _notify(self, change: ZoneChange) -> None:
        for listener in self._listeners:
            listener(change)

    # ----------------------------------------------------------------- content
    def _check_in_zone(self, name: Name) -> None:
        if not name.is_subdomain_of(self.origin):
            raise ZoneError(f"{name} is not within zone {self.origin}")

    def add_record(self, record: ResourceRecord, bump: bool = True) -> None:
        """Add a record, creating its RRset if needed."""
        self._check_in_zone(record.name)
        key = (record.name, record.rdtype)
        rrset = self._rrsets.get(key)
        if rrset is None:
            rrset = RRset(record.name, record.rdtype, rdclass=record.rdclass)
            self._rrsets[key] = rrset
        rrset.add(record)
        serial = self.bump_serial() if bump else self.serial
        self._notify(ZoneChange(serial, record.name, record.rdtype, rrset))

    def add(
        self,
        name: Name | str,
        rdtype: RecordType | str,
        rdata_text: str | Rdata,
        ttl: int | None = None,
        bump: bool = True,
    ) -> ResourceRecord:
        """Convenience: add a record from presentation-format RDATA."""
        owner = name if isinstance(name, Name) else Name.from_text(name)
        record_type = rdtype if isinstance(rdtype, RecordType) else RecordType.from_text(rdtype)
        rdata = rdata_text if isinstance(rdata_text, Rdata) else parse_rdata(record_type, rdata_text)
        record = ResourceRecord(
            owner, record_type, rdata, self.default_ttl if ttl is None else ttl
        )
        self.add_record(record, bump=bump)
        return record

    def replace_rrset(self, rrset: RRset, bump: bool = True) -> None:
        """Replace (or create) the RRset for the given name and type."""
        self._check_in_zone(rrset.name)
        self._rrsets[(rrset.name, rrset.rdtype)] = rrset
        serial = self.bump_serial() if bump else self.serial
        self._notify(ZoneChange(serial, rrset.name, rrset.rdtype, rrset))

    def delete_rrset(self, name: Name, rdtype: RecordType, bump: bool = True) -> bool:
        """Delete an RRset; returns whether it existed."""
        removed = self._rrsets.pop((name, rdtype), None)
        if removed is None:
            return False
        serial = self.bump_serial() if bump else self.serial
        self._notify(ZoneChange(serial, name, rdtype, None))
        return True

    def get_rrset(self, name: Name | str, rdtype: RecordType | str) -> RRset | None:
        """Fetch the RRset for an exact (name, type) pair."""
        owner = name if isinstance(name, Name) else Name.from_text(name)
        record_type = rdtype if isinstance(rdtype, RecordType) else RecordType.from_text(rdtype)
        return self._rrsets.get((owner, record_type))

    def names(self) -> list[Name]:
        """All owner names present in the zone."""
        seen: list[Name] = []
        for owner, _ in self._rrsets:
            if owner not in seen:
                seen.append(owner)
        return seen

    def rrsets(self) -> Iterator[RRset]:
        """Iterate over all RRsets."""
        return iter(list(self._rrsets.values()))

    def __len__(self) -> int:
        return len(self._rrsets)

    # ------------------------------------------------------------------ lookup
    def lookup(self, qname: Name, qtype: RecordType) -> LookupResult:
        """Answer a query authoritatively.

        Implements exact matches, CNAME chasing within the zone, wildcard
        synthesis (``*.example.com``), delegations (NS sets below the apex)
        and negative answers with the SOA in the authority section.
        """
        if not qname.is_subdomain_of(self.origin):
            return LookupResult(rcode=Rcode.REFUSED)

        delegation = self._find_delegation(qname)
        if delegation is not None:
            ns_rrset, glue = delegation
            return LookupResult(
                rcode=Rcode.NOERROR,
                authorities=tuple(ns_rrset),
                additionals=tuple(glue),
                is_referral=True,
            )

        answers: list[ResourceRecord] = []
        current = qname
        for _ in range(16):  # CNAME chain bound
            rrset = self._rrsets.get((current, qtype))
            if rrset is not None and len(rrset) > 0:
                answers.extend(rrset)
                return LookupResult(rcode=Rcode.NOERROR, answers=tuple(answers))
            cname = self._rrsets.get((current, RecordType.CNAME))
            if cname is not None and qtype != RecordType.CNAME and len(cname) > 0:
                answers.extend(cname)
                target = cname.records[0].rdata
                current = target.target  # type: ignore[attr-defined]
                if not current.is_subdomain_of(self.origin):
                    return LookupResult(rcode=Rcode.NOERROR, answers=tuple(answers))
                continue
            break

        wildcard = self._find_wildcard(qname, qtype)
        if wildcard is not None:
            synthesized = [
                ResourceRecord(qname, record.rdtype, record.rdata, record.ttl, record.rdclass)
                for record in wildcard
            ]
            answers.extend(synthesized)
            return LookupResult(rcode=Rcode.NOERROR, answers=tuple(answers))

        soa_record = self._rrsets[(self.origin, RecordType.SOA)].records[0]
        if self._name_exists(qname) or answers:
            # Name exists (or we followed a CNAME) but no data of this type.
            return LookupResult(
                rcode=Rcode.NOERROR, answers=tuple(answers), authorities=(soa_record,)
            )
        return LookupResult(rcode=Rcode.NXDOMAIN, authorities=(soa_record,))

    def _name_exists(self, qname: Name) -> bool:
        return any(owner == qname for owner, _ in self._rrsets)

    def _find_wildcard(self, qname: Name, qtype: RecordType) -> RRset | None:
        ancestor = qname
        while not ancestor.is_root and ancestor != self.origin:
            ancestor = ancestor.parent()
            wildcard = ancestor.child("*")
            rrset = self._rrsets.get((wildcard, qtype))
            if rrset is not None:
                return rrset
        return None

    def _find_delegation(self, qname: Name) -> tuple[RRset, list[ResourceRecord]] | None:
        """Find the closest enclosing delegation strictly below the apex."""
        candidates = [name for name in qname.ancestors() if name.is_subdomain_of(self.origin)]
        for candidate in candidates:
            if candidate == self.origin:
                continue
            ns_rrset = self._rrsets.get((candidate, RecordType.NS))
            if ns_rrset is not None and candidate != qname:
                glue = self._glue_for(ns_rrset)
                return ns_rrset, glue
            if ns_rrset is not None and candidate == qname:
                # Query exactly at the delegation point is also a referral
                # unless we are authoritative for the child.
                glue = self._glue_for(ns_rrset)
                return ns_rrset, glue
        return None

    def _glue_for(self, ns_rrset: RRset) -> list[ResourceRecord]:
        glue: list[ResourceRecord] = []
        for ns_record in ns_rrset:
            target = ns_record.rdata.target  # type: ignore[attr-defined]
            for rdtype in (RecordType.A, RecordType.AAAA):
                address_rrset = self._rrsets.get((target, rdtype))
                if address_rrset is not None:
                    glue.extend(address_rrset)
        return glue

    # ------------------------------------------------------------------- text
    def to_text(self) -> str:
        """Master-file rendering of the entire zone."""
        lines = [f"$ORIGIN {self.origin.to_text()}"]
        soa_key = (self.origin, RecordType.SOA)
        lines.append(self._rrsets[soa_key].to_text())
        for key, rrset in sorted(
            self._rrsets.items(), key=lambda item: (item[0][0].canonical_key(), int(item[0][1]))
        ):
            if key == soa_key:
                continue
            lines.append(rrset.to_text())
        return "\n".join(lines) + "\n"
