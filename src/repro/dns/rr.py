"""Resource records and RRsets."""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from repro.dns.name import Name
from repro.dns.rdata import Rdata, decode_rdata
from repro.dns.types import DNSClass, RecordType


@dataclass(frozen=True)
class ResourceRecord:
    """A single resource record: owner name, type, class, TTL and RDATA."""

    name: Name
    rdtype: RecordType
    rdata: Rdata
    ttl: int = 300
    rdclass: DNSClass = DNSClass.IN

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ValueError(f"TTL must be non-negative: {self.ttl}")

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """A copy of this record with a different TTL."""
        return replace(self, ttl=ttl)

    def to_text(self) -> str:
        """One-line master-file representation."""
        return (
            f"{self.name.to_text()} {self.ttl} {self.rdclass.to_text()} "
            f"{self.rdtype.to_text()} {self.rdata.to_text()}"
        )

    def to_wire(self, compress: dict[Name, int] | None = None, offset: int = 0) -> bytes:
        """Encode the record, optionally using name compression."""
        owner = self.name.to_wire(compress, offset)
        rdata = self.rdata.to_wire()
        fixed = struct.pack("!HHIH", int(self.rdtype), int(self.rdclass), self.ttl, len(rdata))
        return owner + fixed + rdata

    @classmethod
    def from_wire(cls, wire: bytes, offset: int) -> tuple["ResourceRecord", int]:
        """Decode one record starting at ``offset``; returns (record, next offset)."""
        name, offset = Name.from_wire(wire, offset)
        rdtype_raw, rdclass_raw, ttl, rdlength = struct.unpack_from("!HHIH", wire, offset)
        offset += 10
        rdtype = RecordType(rdtype_raw)
        rdata = decode_rdata(rdtype, wire, offset, rdlength)
        offset += rdlength
        return cls(name, rdtype, rdata, ttl, DNSClass(rdclass_raw)), offset

    def key(self) -> tuple[Name, RecordType, DNSClass]:
        """Grouping key for RRset membership."""
        return (self.name, self.rdtype, self.rdclass)


class RRset:
    """All records sharing an owner name, type and class.

    The records keep insertion order but compare as sets: two RRsets with the
    same records in different order are equal.  This matters for the paper's
    change-rate methodology, which compares *lexicographically ordered*
    samples to discount round-robin rotation.
    """

    def __init__(
        self,
        name: Name,
        rdtype: RecordType,
        records: Iterable[ResourceRecord] = (),
        rdclass: DNSClass = DNSClass.IN,
    ) -> None:
        self.name = name
        self.rdtype = rdtype
        self.rdclass = rdclass
        self._records: list[ResourceRecord] = []
        for record in records:
            self.add(record)

    def add(self, record: ResourceRecord) -> None:
        """Add a record; its key must match the RRset's key."""
        if record.key() != (self.name, self.rdtype, self.rdclass):
            raise ValueError(
                f"record {record.to_text()} does not belong to RRset "
                f"{self.name.to_text()}/{self.rdtype.to_text()}"
            )
        if record not in self._records:
            self._records.append(record)

    def __iter__(self) -> Iterator[ResourceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RRset):
            return NotImplemented
        return (
            self.name == other.name
            and self.rdtype == other.rdtype
            and self.rdclass == other.rdclass
            and set(self._records) == set(other._records)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.rdtype, self.rdclass, frozenset(self._records)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RRset({self.name.to_text()} {self.rdtype.to_text()} x{len(self)})"

    @property
    def ttl(self) -> int:
        """The minimum TTL across member records (0 for an empty set)."""
        if not self._records:
            return 0
        return min(record.ttl for record in self._records)

    @property
    def records(self) -> tuple[ResourceRecord, ...]:
        """The member records in insertion order."""
        return tuple(self._records)

    def sorted_rdata_texts(self) -> list[str]:
        """Lexicographically sorted RDATA strings.

        This is the representation the paper's §2 methodology compares between
        consecutive observations so that round-robin reordering of the same
        addresses does not count as a change.
        """
        return sorted(record.rdata.to_text() for record in self._records)

    def with_ttl(self, ttl: int) -> "RRset":
        """A copy with every member record's TTL replaced."""
        return RRset(
            self.name,
            self.rdtype,
            [record.with_ttl(ttl) for record in self._records],
            self.rdclass,
        )

    def to_text(self) -> str:
        """Master-file lines for all member records."""
        return "\n".join(record.to_text() for record in self._records)
