"""A TTL-driven DNS cache bound to the simulated clock.

The cache stores RRsets keyed by (name, type, class) along with the virtual
time at which they were inserted.  Lookups return ``None`` once the TTL has
expired; returned RRsets have their TTL reduced by the time already spent in
the cache, exactly like a real resolver cache.

The cache also records hit/miss/expiry counters and, for the staleness
experiments, can report the *insertion time* of an entry so an experiment can
compute how old the data a client received actually is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.name import Name
from repro.dns.rr import RRset
from repro.dns.types import DNSClass, Rcode, RecordType
from repro.netsim.simulator import Simulator


@dataclass
class CacheEntry:
    """A cached RRset (or negative answer) with bookkeeping."""

    rrset: RRset | None
    rcode: Rcode
    inserted_at: float
    ttl: float

    def expires_at(self) -> float:
        """Absolute virtual time at which the entry stops being served."""
        return self.inserted_at + self.ttl

    def is_expired(self, now: float) -> bool:
        """Whether the entry has outlived its TTL."""
        return now >= self.expires_at()

    def remaining_ttl(self, now: float) -> float:
        """Seconds of validity left at time ``now`` (0 when expired)."""
        return max(0.0, self.expires_at() - now)


@dataclass
class CacheStatistics:
    """Hit/miss counters of a cache."""

    hits: int = 0
    misses: int = 0
    expirations: int = 0
    insertions: int = 0
    pushed_updates: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class DnsCache:
    """An RRset cache driven by the simulator clock.

    Parameters
    ----------
    simulator:
        Provides the virtual clock used for TTL expiry.
    max_entries:
        Optional bound; when exceeded, the entry closest to expiry is evicted.
    """

    def __init__(self, simulator: Simulator, max_entries: int | None = None) -> None:
        self._simulator = simulator
        self._entries: dict[tuple[Name, RecordType, DNSClass], CacheEntry] = {}
        self._max_entries = max_entries
        self.statistics = CacheStatistics()

    def __len__(self) -> int:
        return len(self._entries)

    def _key(
        self, name: Name, rdtype: RecordType, rdclass: DNSClass
    ) -> tuple[Name, RecordType, DNSClass]:
        return (name, rdtype, rdclass)

    # ------------------------------------------------------------------ write
    def put(
        self,
        name: Name,
        rdtype: RecordType,
        rrset: RRset | None,
        rcode: Rcode = Rcode.NOERROR,
        ttl: float | None = None,
        rdclass: DNSClass = DNSClass.IN,
        pushed: bool = False,
    ) -> CacheEntry:
        """Insert or replace an entry.

        ``ttl`` defaults to the RRset's minimum TTL; negative answers must
        provide an explicit TTL (usually the SOA minimum).  ``pushed`` marks
        entries that were updated by a MoQT push rather than a lookup, which
        the traffic experiments count separately.
        """
        if ttl is None:
            if rrset is None:
                raise ValueError("negative cache entries need an explicit TTL")
            ttl = float(rrset.ttl)
        entry = CacheEntry(
            rrset=rrset, rcode=rcode, inserted_at=self._simulator.now, ttl=float(ttl)
        )
        if self._max_entries is not None and len(self._entries) >= self._max_entries:
            self._evict_one()
        self._entries[self._key(name, rdtype, rdclass)] = entry
        self.statistics.insertions += 1
        if pushed:
            self.statistics.pushed_updates += 1
        return entry

    def _evict_one(self) -> None:
        if not self._entries:
            return
        victim = min(self._entries.items(), key=lambda item: item[1].expires_at())
        del self._entries[victim[0]]

    # ------------------------------------------------------------------- read
    def get(
        self,
        name: Name,
        rdtype: RecordType,
        rdclass: DNSClass = DNSClass.IN,
    ) -> CacheEntry | None:
        """Look up a fresh entry; expired entries are removed and counted."""
        key = self._key(name, rdtype, rdclass)
        entry = self._entries.get(key)
        if entry is None:
            self.statistics.misses += 1
            return None
        if entry.is_expired(self._simulator.now):
            del self._entries[key]
            self.statistics.expirations += 1
            self.statistics.misses += 1
            return None
        self.statistics.hits += 1
        return entry

    def peek(
        self,
        name: Name,
        rdtype: RecordType,
        rdclass: DNSClass = DNSClass.IN,
    ) -> CacheEntry | None:
        """Look up without affecting statistics or evicting expired entries."""
        return self._entries.get(self._key(name, rdtype, rdclass))

    def fresh_rrset(
        self,
        name: Name,
        rdtype: RecordType,
        rdclass: DNSClass = DNSClass.IN,
    ) -> RRset | None:
        """The cached RRset with its TTL decremented by the elapsed time."""
        entry = self.get(name, rdtype, rdclass)
        if entry is None or entry.rrset is None:
            return None
        remaining = int(entry.remaining_ttl(self._simulator.now))
        return entry.rrset.with_ttl(max(0, remaining))

    # ------------------------------------------------------------- maintenance
    def flush(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def remove(self, name: Name, rdtype: RecordType, rdclass: DNSClass = DNSClass.IN) -> bool:
        """Remove a single entry; returns whether it was present."""
        return self._entries.pop(self._key(name, rdtype, rdclass), None) is not None

    def purge_expired(self) -> int:
        """Remove all expired entries; returns how many were purged."""
        now = self._simulator.now
        expired = [key for key, entry in self._entries.items() if entry.is_expired(now)]
        for key in expired:
            del self._entries[key]
        self.statistics.expirations += len(expired)
        return len(expired)

    def entries(self) -> dict[tuple[Name, RecordType, DNSClass], CacheEntry]:
        """A shallow copy of the cache content (for inspection in tests)."""
        return dict(self._entries)
