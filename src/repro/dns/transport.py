"""Classic DNS-over-UDP transport on the simulated network.

The module provides two building blocks:

* :class:`DnsUdpEndpoint` — a bidirectional endpoint bound to a host port.
  It can serve queries (by installing a request handler) and issue queries
  (callback-based, with per-query retransmission timers), which is exactly
  what a recursive resolver needs: it answers stubs downstream while querying
  authoritative servers upstream over the same code path.
* :class:`PendingQuery` — bookkeeping for an in-flight query.

Everything is callback-driven because the simulator is single-threaded and
event-based; there is no asyncio involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dns.message import Message, make_response
from repro.dns.types import DNS_UDP_PORT, Rcode
from repro.netsim.node import Host
from repro.netsim.packet import Address, Datagram
from repro.netsim.simulator import Simulator, Timer

QueryCallback = Callable[[Message | None], None]
RequestHandler = Callable[[Message, Address, Callable[[Message], None]], None]

DEFAULT_QUERY_TIMEOUT = 2.0
DEFAULT_RETRIES = 2
PROTOCOL_LABEL = "udp-dns"


@dataclass
class PendingQuery:
    """An outstanding query awaiting a response or timeout."""

    message_id: int
    destination: Address
    query: Message
    callback: QueryCallback
    timer: Timer
    retries_left: int
    sent_at: float
    attempts: int = 1


@dataclass
class TransportStatistics:
    """Message/byte counters of a UDP DNS endpoint."""

    queries_sent: int = 0
    responses_received: int = 0
    queries_received: int = 0
    responses_sent: int = 0
    timeouts: int = 0
    retransmissions: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class DnsUdpEndpoint:
    """A DNS endpoint speaking classic DNS over UDP on the simulator.

    Parameters
    ----------
    host:
        The simulated host this endpoint runs on.
    port:
        The local port to bind; defaults to an ephemeral port (clients) —
        pass ``DNS_UDP_PORT`` for servers.
    handler:
        Optional request handler for incoming queries.  The handler receives
        the query, the client address and a ``respond`` callable.
    query_timeout / retries:
        Retransmission behaviour for outgoing queries.
    """

    def __init__(
        self,
        host: Host,
        port: int | None = None,
        handler: RequestHandler | None = None,
        query_timeout: float = DEFAULT_QUERY_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
    ) -> None:
        self._host = host
        self._simulator: Simulator = host.simulator
        self._handler = handler
        self._query_timeout = query_timeout
        self._retries = retries
        self._pending: dict[tuple[int, Address], PendingQuery] = {}
        self._next_message_id = 1
        self.statistics = TransportStatistics()
        if port is None:
            self.address = host.bind_ephemeral(self)
        else:
            self.address = host.bind(port, self)

    # -------------------------------------------------------------- server side
    def set_handler(self, handler: RequestHandler) -> None:
        """Install (or replace) the incoming-query handler."""
        self._handler = handler

    # -------------------------------------------------------------- client side
    def allocate_message_id(self) -> int:
        """Allocate a locally unique message id."""
        message_id = self._next_message_id
        self._next_message_id = (self._next_message_id + 1) % 65536 or 1
        return message_id

    def query(
        self,
        message: Message,
        destination: Address,
        callback: QueryCallback,
        timeout: float | None = None,
    ) -> PendingQuery:
        """Send ``message`` to ``destination`` and invoke ``callback`` once.

        The callback receives the response message, or ``None`` if every
        retransmission timed out.
        """
        if message.header.message_id == 0:
            message = Message(
                header=type(message.header)(
                    message_id=self.allocate_message_id(),
                    flags=message.header.flags,
                    opcode=message.header.opcode,
                    rcode=message.header.rcode,
                ),
                questions=message.questions,
                answers=message.answers,
                authorities=message.authorities,
                additionals=message.additionals,
            )
        key = (message.header.message_id, destination)
        timer = Timer(self._simulator, lambda: self._on_timeout(key))
        pending = PendingQuery(
            message_id=message.header.message_id,
            destination=destination,
            query=message,
            callback=callback,
            timer=timer,
            retries_left=self._retries,
            sent_at=self._simulator.now,
        )
        self._pending[key] = pending
        self._transmit(pending)
        timer.start(timeout if timeout is not None else self._query_timeout)
        self.statistics.queries_sent += 1
        return pending

    def _transmit(self, pending: PendingQuery) -> None:
        payload = pending.query.to_wire()
        self.statistics.bytes_sent += len(payload)
        self._host.send(
            Datagram(
                source=self.address,
                destination=pending.destination,
                payload=payload,
                protocol=PROTOCOL_LABEL,
            )
        )

    def _on_timeout(self, key: tuple[int, Address]) -> None:
        pending = self._pending.get(key)
        if pending is None:
            return
        if pending.retries_left > 0:
            pending.retries_left -= 1
            pending.attempts += 1
            self.statistics.retransmissions += 1
            self._transmit(pending)
            pending.timer.start(self._query_timeout)
            return
        del self._pending[key]
        self.statistics.timeouts += 1
        pending.callback(None)

    def cancel_all(self) -> None:
        """Cancel every outstanding query without invoking callbacks."""
        for pending in self._pending.values():
            pending.timer.stop()
        self._pending.clear()

    # ----------------------------------------------------------------- dispatch
    def datagram_received(self, datagram: Datagram) -> None:
        """Entry point from the host: decode and dispatch a datagram."""
        self.statistics.bytes_received += len(datagram.payload)
        try:
            message = Message.from_wire(datagram.payload)
        except Exception:
            # Malformed datagrams are dropped; a real server would FORMERR.
            return
        if message.is_response:
            self._handle_response(message, datagram.source)
        else:
            self._handle_query(message, datagram.source)

    def _handle_response(self, message: Message, source: Address) -> None:
        key = (message.header.message_id, source)
        pending = self._pending.pop(key, None)
        if pending is None:
            return
        pending.timer.stop()
        self.statistics.responses_received += 1
        pending.callback(message)

    def _handle_query(self, message: Message, source: Address) -> None:
        self.statistics.queries_received += 1
        if self._handler is None:
            refusal = make_response(message, rcode=Rcode.REFUSED)
            self._send_response(refusal, source)
            return

        def respond(response: Message) -> None:
            self._send_response(response, source)

        self._handler(message, source, respond)

    def _send_response(self, response: Message, destination: Address) -> None:
        payload = response.to_wire()
        self.statistics.responses_sent += 1
        self.statistics.bytes_sent += len(payload)
        self._host.send(
            Datagram(
                source=self.address,
                destination=destination,
                payload=payload,
                protocol=PROTOCOL_LABEL,
            )
        )

    def close(self) -> None:
        """Unbind from the host port and cancel outstanding queries."""
        self.cancel_all()
        self._host.unbind(self.address.port)


def server_address(host: Host) -> Address:
    """The conventional DNS-over-UDP server address on a host (port 53)."""
    return Address(host.address, DNS_UDP_PORT)
