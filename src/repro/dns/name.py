"""Domain names with full wire-format support.

A :class:`Name` is an immutable sequence of labels.  Names can be parsed
from presentation format (``"www.example.com."``), rendered back, encoded
into DNS wire format (length-prefixed labels terminated by the root label)
with optional compression, and decoded from wire format including
compression-pointer chasing with loop protection.
"""

from __future__ import annotations

from typing import Iterable, Iterator

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255
_POINTER_MASK = 0xC0


class NameError_(ValueError):
    """Raised for malformed names or wire data.

    Named with a trailing underscore to avoid shadowing the builtin
    ``NameError``.
    """


class Name:
    """An immutable, case-insensitive DNS domain name."""

    __slots__ = ("_labels",)

    def __init__(self, labels: Iterable[bytes] = ()) -> None:
        normalized = tuple(bytes(label).lower() for label in labels)
        for label in normalized:
            if not label:
                raise NameError_("empty label inside a name")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameError_(f"label too long ({len(label)} > {MAX_LABEL_LENGTH})")
        wire_length = sum(len(label) + 1 for label in normalized) + 1
        if wire_length > MAX_NAME_LENGTH:
            raise NameError_(f"name too long ({wire_length} > {MAX_NAME_LENGTH})")
        self._labels = normalized

    # ----------------------------------------------------------- constructors
    @classmethod
    def root(cls) -> "Name":
        """The root name ``"."``."""
        return cls(())

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse presentation format; a trailing dot is optional.

        >>> Name.from_text("WWW.Example.COM").to_text()
        'www.example.com.'
        """
        stripped = text.strip()
        if stripped in ("", "."):
            return cls.root()
        if stripped.endswith("."):
            stripped = stripped[:-1]
        labels = [label.encode("ascii") for label in stripped.split(".")]
        return cls(labels)

    # ------------------------------------------------------------- properties
    @property
    def labels(self) -> tuple[bytes, ...]:
        """The labels, most-specific first, lowercased."""
        return self._labels

    @property
    def is_root(self) -> bool:
        """Whether this is the root name."""
        return not self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._labels)

    def __hash__(self) -> int:
        return hash(self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._labels == other._labels

    def __lt__(self, other: "Name") -> bool:
        return self.canonical_key() < other.canonical_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Name({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()

    # -------------------------------------------------------------- relations
    def parent(self) -> "Name":
        """The name with the leftmost label removed."""
        if self.is_root:
            raise NameError_("the root name has no parent")
        return Name(self._labels[1:])

    def child(self, label: str | bytes) -> "Name":
        """Prepend a label, producing a more specific name."""
        raw = label.encode("ascii") if isinstance(label, str) else bytes(label)
        return Name((raw,) + self._labels)

    def is_subdomain_of(self, other: "Name") -> bool:
        """Whether ``self`` equals or falls below ``other``."""
        if len(other) > len(self):
            return False
        if len(other) == 0:
            return True
        return self._labels[len(self) - len(other):] == other._labels

    def relativize(self, origin: "Name") -> tuple[bytes, ...]:
        """Labels of ``self`` below ``origin`` (raises if not a subdomain)."""
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not a subdomain of {origin}")
        return self._labels[: len(self) - len(origin)]

    def ancestors(self) -> list["Name"]:
        """All names from ``self`` up to and including the root."""
        names = [Name(self._labels[index:]) for index in range(len(self._labels))]
        names.append(Name.root())
        return names

    def canonical_key(self) -> tuple[bytes, ...]:
        """Labels in reversed (root-first) order, for canonical sorting."""
        return tuple(reversed(self._labels))

    # ------------------------------------------------------------------- text
    def to_text(self) -> str:
        """Presentation format with a trailing dot."""
        if self.is_root:
            return "."
        return ".".join(label.decode("ascii") for label in self._labels) + "."

    # ------------------------------------------------------------------- wire
    def to_wire(self, compress: dict["Name", int] | None = None, offset: int = 0) -> bytes:
        """Encode to wire format.

        When ``compress`` is provided it maps already-emitted names to their
        offsets in the enclosing message; suffixes found there are replaced by
        a compression pointer and new suffixes are added at ``offset``.
        """
        output = bytearray()
        remaining = self
        while True:
            if remaining.is_root:
                output.append(0)
                break
            if compress is not None and remaining in compress:
                pointer = compress[remaining]
                output += bytes([_POINTER_MASK | (pointer >> 8), pointer & 0xFF])
                break
            if compress is not None:
                position = offset + len(output)
                if position < 0x4000:
                    compress[remaining] = position
            label = remaining.labels[0]
            output.append(len(label))
            output += label
            remaining = remaining.parent()
        return bytes(output)

    @classmethod
    def from_wire(cls, wire: bytes, offset: int) -> tuple["Name", int]:
        """Decode a name starting at ``offset``.

        Returns the name and the offset just past its encoding at the original
        position (compression pointers do not advance the caller's cursor
        beyond the 2-byte pointer).
        """
        labels: list[bytes] = []
        cursor = offset
        consumed: int | None = None
        jumps = 0
        while True:
            if cursor >= len(wire):
                raise NameError_("truncated name")
            length = wire[cursor]
            if length & _POINTER_MASK == _POINTER_MASK:
                if cursor + 1 >= len(wire):
                    raise NameError_("truncated compression pointer")
                pointer = ((length & 0x3F) << 8) | wire[cursor + 1]
                if consumed is None:
                    consumed = cursor + 2
                jumps += 1
                if jumps > 128:
                    raise NameError_("compression pointer loop")
                if pointer >= cursor:
                    raise NameError_("forward compression pointer")
                cursor = pointer
                continue
            if length & _POINTER_MASK:
                raise NameError_(f"reserved label type: {length:#x}")
            cursor += 1
            if length == 0:
                if consumed is None:
                    consumed = cursor
                break
            if cursor + length > len(wire):
                raise NameError_("truncated label")
            labels.append(wire[cursor: cursor + length])
            cursor += length
        return cls(labels), consumed
