"""DNS substrate: names, messages, zones, caches, servers and resolvers.

This package implements enough of the DNS (RFC 1034/1035 plus the record
types the paper's measurement study covers, including HTTPS/SVCB from
RFC 9460) to run realistic authoritative servers and recursive resolvers
inside the simulator:

* :mod:`repro.dns.name` — domain names with full wire encoding and
  compression-pointer decoding;
* :mod:`repro.dns.rdata` — typed RDATA for A, AAAA, CNAME, NS, SOA, PTR, MX,
  TXT, SRV and HTTPS/SVCB records;
* :mod:`repro.dns.message` — the DNS message header, question and resource
  record sections, with a byte-exact wire codec;
* :mod:`repro.dns.zone` — authoritative zone data with SOA-serial versioning
  and the lookup algorithm (exact match, CNAME, wildcard, delegation);
* :mod:`repro.dns.cache` — a TTL-driven cache bound to the simulated clock;
* :mod:`repro.dns.server` / :mod:`repro.dns.resolver` — classic DNS-over-UDP
  authoritative servers, an iterative recursive resolver and a stub resolver.
"""

from repro.dns.types import DNSClass, Opcode, Rcode, RecordType
from repro.dns.name import Name
from repro.dns.rr import ResourceRecord, RRset
from repro.dns.message import Flags, Header, Message, Question, make_query, make_response
from repro.dns.zone import Zone, ZoneError
from repro.dns.cache import DnsCache
from repro.dns.server import AuthoritativeServer
from repro.dns.resolver import RecursiveResolver, StubResolver, ResolutionError

__all__ = [
    "DNSClass",
    "Opcode",
    "Rcode",
    "RecordType",
    "Name",
    "ResourceRecord",
    "RRset",
    "Flags",
    "Header",
    "Message",
    "Question",
    "make_query",
    "make_response",
    "Zone",
    "ZoneError",
    "DnsCache",
    "AuthoritativeServer",
    "RecursiveResolver",
    "StubResolver",
    "ResolutionError",
]
