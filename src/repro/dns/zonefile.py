"""A simple master-file (zone file) parser and serializer.

The supported syntax covers what the examples and workload builder emit:

* ``$ORIGIN`` and ``$TTL`` directives;
* one record per line: ``name [ttl] [class] type rdata`` where ``name`` may be
  ``@`` for the origin or a relative name;
* ``;`` comments and blank lines.

Parsed records are loaded into a :class:`repro.dns.zone.Zone` without bumping
the serial for each record (the SOA in the file defines the serial).
"""

from __future__ import annotations

from repro.dns.name import Name
from repro.dns.rdata import SOARdata, parse_rdata
from repro.dns.rr import ResourceRecord
from repro.dns.types import DNSClass, RecordType
from repro.dns.zone import Zone, ZoneError


class ZoneFileError(ZoneError):
    """Raised for unparseable zone file content."""


def _resolve_name(token: str, origin: Name) -> Name:
    if token == "@":
        return origin
    if token.endswith("."):
        return Name.from_text(token)
    relative = Name.from_text(token)
    return Name(relative.labels + origin.labels)


def parse_zone_text(text: str, origin: Name | str | None = None, default_ttl: int = 300) -> Zone:
    """Parse master-file text into a :class:`Zone`.

    Parameters
    ----------
    text:
        The zone file content.
    origin:
        The zone origin; may instead be supplied by a ``$ORIGIN`` directive
        appearing before the first record.
    default_ttl:
        Used for records without an explicit TTL when no ``$TTL`` directive
        was seen.
    """
    current_origin = (
        origin if isinstance(origin, Name) else Name.from_text(origin) if origin else None
    )
    current_ttl = default_ttl
    pending: list[tuple[Name, int, RecordType, str]] = []
    soa: SOARdata | None = None
    soa_ttl = default_ttl
    last_name: Name | None = None

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.startswith("$ORIGIN"):
            current_origin = Name.from_text(line.split()[1])
            continue
        if line.startswith("$TTL"):
            current_ttl = int(line.split()[1])
            continue
        if current_origin is None:
            raise ZoneFileError(f"line {line_number}: record before $ORIGIN and no origin given")

        starts_with_space = line[0].isspace()
        tokens = line.split()
        if starts_with_space:
            if last_name is None:
                raise ZoneFileError(f"line {line_number}: continuation line without previous owner")
            owner = last_name
        else:
            owner = _resolve_name(tokens.pop(0), current_origin)
            last_name = owner

        ttl = current_ttl
        if tokens and tokens[0].isdigit():
            ttl = int(tokens.pop(0))
        if tokens and tokens[0].upper() in ("IN", "CH", "HS"):
            tokens.pop(0)
        if not tokens:
            raise ZoneFileError(f"line {line_number}: missing record type")
        try:
            rdtype = RecordType.from_text(tokens.pop(0))
        except ValueError as error:
            raise ZoneFileError(f"line {line_number}: {error}") from None
        rdata_text = " ".join(tokens)
        if rdtype == RecordType.SOA:
            rdata = parse_rdata(rdtype, rdata_text)
            assert isinstance(rdata, SOARdata)
            soa = rdata
            soa_ttl = ttl
            continue
        pending.append((owner, ttl, rdtype, rdata_text))

    if current_origin is None:
        raise ZoneFileError("no origin given and no $ORIGIN directive found")

    zone = Zone(current_origin, soa=soa, default_ttl=default_ttl)
    zone._soa_ttl = soa_ttl  # noqa: SLF001 - zone file controls the SOA TTL
    for owner, ttl, rdtype, rdata_text in pending:
        rdata = parse_rdata(rdtype, rdata_text)
        zone.add_record(ResourceRecord(owner, rdtype, rdata, ttl, DNSClass.IN), bump=False)
    return zone


def serialize_zone(zone: Zone) -> str:
    """Render a zone back to master-file text (wrapper around ``Zone.to_text``)."""
    return zone.to_text()
