"""Classic authoritative DNS server over UDP.

The :class:`AuthoritativeServer` serves one or more zones on the simulated
network.  It is used both as the baseline (traditional request/response DNS)
in the experiments and as the fallback target for the §4.5 compatibility
path, where a recursive resolver talks classic DNS to authoritative servers
that do not support MoQT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.message import Message, make_response
from repro.dns.name import Name
from repro.dns.transport import DnsUdpEndpoint, RequestHandler
from repro.dns.types import DNS_UDP_PORT, Rcode, RecordType
from repro.dns.zone import LookupResult, Zone
from repro.netsim.node import Host
from repro.netsim.packet import Address


@dataclass
class ServerStatistics:
    """Query counters of an authoritative server."""

    queries: int = 0
    answers: int = 0
    referrals: int = 0
    negative_answers: int = 0
    refused: int = 0


class AuthoritativeServer:
    """Serves one or more zones authoritatively over classic DNS/UDP.

    Parameters
    ----------
    host:
        The simulated host the server runs on.
    zones:
        Initial zones to serve; more can be added with :meth:`add_zone`.
    port:
        UDP port to listen on (53 by default).
    """

    def __init__(self, host: Host, zones: list[Zone] | None = None, port: int = DNS_UDP_PORT) -> None:
        self.host = host
        self._zones: dict[Name, Zone] = {}
        self.statistics = ServerStatistics()
        self.endpoint = DnsUdpEndpoint(host, port=port, handler=self._handle_query)
        for zone in zones or []:
            self.add_zone(zone)

    @property
    def address(self) -> Address:
        """The address clients should send queries to."""
        return self.endpoint.address

    # -------------------------------------------------------------------- zones
    def add_zone(self, zone: Zone) -> None:
        """Start serving a zone."""
        self._zones[zone.origin] = zone

    def zone_for(self, qname: Name) -> Zone | None:
        """The most specific zone containing ``qname``, if any."""
        best: Zone | None = None
        for origin, zone in self._zones.items():
            if qname.is_subdomain_of(origin):
                if best is None or len(origin) > len(best.origin):
                    best = zone
        return best

    def zones(self) -> list[Zone]:
        """All zones served, in insertion order."""
        return list(self._zones.values())

    # ------------------------------------------------------------------ serving
    def _handle_query(self, query: Message, source: Address, respond) -> None:
        self.statistics.queries += 1
        if not query.questions:
            respond(make_response(query, rcode=Rcode.FORMERR))
            return
        question = query.question
        zone = self.zone_for(question.qname)
        if zone is None:
            self.statistics.refused += 1
            respond(make_response(query, rcode=Rcode.REFUSED))
            return
        result = zone.lookup(question.qname, question.qtype)
        respond(self._build_response(query, result))

    def _build_response(self, query: Message, result: LookupResult) -> Message:
        if result.rcode == Rcode.NXDOMAIN:
            self.statistics.negative_answers += 1
        elif result.is_referral:
            self.statistics.referrals += 1
        elif result.answers:
            self.statistics.answers += 1
        else:
            self.statistics.negative_answers += 1
        return make_response(
            query,
            answers=result.answers,
            authorities=result.authorities,
            additionals=result.additionals,
            rcode=result.rcode,
            authoritative=not result.is_referral,
        )

    def resolve_locally(self, qname: Name, qtype: RecordType) -> LookupResult:
        """Answer a query without going through the network (for tests)."""
        zone = self.zone_for(qname)
        if zone is None:
            return LookupResult(rcode=Rcode.REFUSED)
        return zone.lookup(qname, qtype)
