"""Typed RDATA for the record types used in this repository.

Each RDATA class implements a byte-exact wire codec (``to_wire`` /
``from_wire``), presentation-format parsing and rendering (``from_text`` /
``to_text``) and value equality.  The generic :class:`GenericRdata` carries
unknown types opaquely so messages with unrecognised records still round-trip.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass, field
from typing import ClassVar

from repro.dns.name import Name
from repro.dns.types import RecordType


class RdataError(ValueError):
    """Raised for malformed RDATA."""


@dataclass(frozen=True)
class Rdata:
    """Base class for all RDATA types."""

    rdtype: ClassVar[RecordType]

    def to_wire(self) -> bytes:
        """Encode the RDATA (without the length prefix)."""
        raise NotImplementedError

    def to_text(self) -> str:
        """Presentation format of the RDATA."""
        raise NotImplementedError

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, length: int) -> "Rdata":
        """Decode RDATA occupying ``wire[offset:offset + length]``."""
        raise NotImplementedError

    @classmethod
    def from_text(cls, text: str) -> "Rdata":
        """Parse RDATA from presentation format."""
        raise NotImplementedError


@dataclass(frozen=True)
class ARdata(Rdata):
    """IPv4 address record (type A)."""

    address: str
    rdtype: ClassVar[RecordType] = RecordType.A

    def __post_init__(self) -> None:
        ipaddress.IPv4Address(self.address)

    def to_wire(self) -> bytes:
        return ipaddress.IPv4Address(self.address).packed

    def to_text(self) -> str:
        return self.address

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, length: int) -> "ARdata":
        if length != 4:
            raise RdataError(f"A rdata must be 4 bytes, got {length}")
        return cls(str(ipaddress.IPv4Address(wire[offset: offset + 4])))

    @classmethod
    def from_text(cls, text: str) -> "ARdata":
        return cls(text.strip())


@dataclass(frozen=True)
class AAAARdata(Rdata):
    """IPv6 address record (type AAAA)."""

    address: str
    rdtype: ClassVar[RecordType] = RecordType.AAAA

    def __post_init__(self) -> None:
        ipaddress.IPv6Address(self.address)

    def to_wire(self) -> bytes:
        return ipaddress.IPv6Address(self.address).packed

    def to_text(self) -> str:
        return str(ipaddress.IPv6Address(self.address))

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, length: int) -> "AAAARdata":
        if length != 16:
            raise RdataError(f"AAAA rdata must be 16 bytes, got {length}")
        return cls(str(ipaddress.IPv6Address(wire[offset: offset + 16])))

    @classmethod
    def from_text(cls, text: str) -> "AAAARdata":
        return cls(text.strip())


@dataclass(frozen=True)
class NameRdata(Rdata):
    """Base for RDATA holding a single domain name (CNAME, NS, PTR)."""

    target: Name

    def to_wire(self) -> bytes:
        return self.target.to_wire()

    def to_text(self) -> str:
        return self.target.to_text()

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, length: int) -> "NameRdata":
        name, _ = Name.from_wire(wire, offset)
        return cls(name)

    @classmethod
    def from_text(cls, text: str) -> "NameRdata":
        return cls(Name.from_text(text))


@dataclass(frozen=True)
class CNAMERdata(NameRdata):
    """Canonical-name alias record."""

    rdtype: ClassVar[RecordType] = RecordType.CNAME


@dataclass(frozen=True)
class NSRdata(NameRdata):
    """Delegation (nameserver) record."""

    rdtype: ClassVar[RecordType] = RecordType.NS


@dataclass(frozen=True)
class PTRRdata(NameRdata):
    """Pointer record."""

    rdtype: ClassVar[RecordType] = RecordType.PTR


@dataclass(frozen=True)
class SOARdata(Rdata):
    """Start-of-authority record; ``serial`` is the zone version number."""

    mname: Name
    rname: Name
    serial: int
    refresh: int = 3600
    retry: int = 600
    expire: int = 86400
    minimum: int = 300
    rdtype: ClassVar[RecordType] = RecordType.SOA

    def to_wire(self) -> bytes:
        return (
            self.mname.to_wire()
            + self.rname.to_wire()
            + struct.pack(
                "!IIIII", self.serial, self.refresh, self.retry, self.expire, self.minimum
            )
        )

    def to_text(self) -> str:
        return (
            f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, length: int) -> "SOARdata":
        mname, offset = Name.from_wire(wire, offset)
        rname, offset = Name.from_wire(wire, offset)
        serial, refresh, retry, expire, minimum = struct.unpack_from("!IIIII", wire, offset)
        return cls(mname, rname, serial, refresh, retry, expire, minimum)

    @classmethod
    def from_text(cls, text: str) -> "SOARdata":
        parts = text.split()
        if len(parts) != 7:
            raise RdataError(f"SOA rdata needs 7 fields, got {len(parts)}")
        return cls(
            Name.from_text(parts[0]),
            Name.from_text(parts[1]),
            int(parts[2]),
            int(parts[3]),
            int(parts[4]),
            int(parts[5]),
            int(parts[6]),
        )


@dataclass(frozen=True)
class MXRdata(Rdata):
    """Mail-exchanger record."""

    preference: int
    exchange: Name
    rdtype: ClassVar[RecordType] = RecordType.MX

    def to_wire(self) -> bytes:
        return struct.pack("!H", self.preference) + self.exchange.to_wire()

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange.to_text()}"

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, length: int) -> "MXRdata":
        (preference,) = struct.unpack_from("!H", wire, offset)
        exchange, _ = Name.from_wire(wire, offset + 2)
        return cls(preference, exchange)

    @classmethod
    def from_text(cls, text: str) -> "MXRdata":
        preference, exchange = text.split()
        return cls(int(preference), Name.from_text(exchange))


@dataclass(frozen=True)
class TXTRdata(Rdata):
    """Text record: one or more character strings."""

    strings: tuple[bytes, ...]
    rdtype: ClassVar[RecordType] = RecordType.TXT

    def __post_init__(self) -> None:
        for item in self.strings:
            if len(item) > 255:
                raise RdataError("TXT character-string longer than 255 bytes")

    def to_wire(self) -> bytes:
        output = bytearray()
        for item in self.strings:
            output.append(len(item))
            output += item
        return bytes(output)

    def to_text(self) -> str:
        return " ".join('"' + item.decode("utf-8", "replace") + '"' for item in self.strings)

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, length: int) -> "TXTRdata":
        end = offset + length
        strings: list[bytes] = []
        cursor = offset
        while cursor < end:
            size = wire[cursor]
            cursor += 1
            if cursor + size > end:
                raise RdataError("truncated TXT character-string")
            strings.append(wire[cursor: cursor + size])
            cursor += size
        return cls(tuple(strings))

    @classmethod
    def from_text(cls, text: str) -> "TXTRdata":
        stripped = text.strip()
        if stripped.startswith('"'):
            parts = [part for part in stripped.split('"') if part.strip(" ")]
        else:
            parts = stripped.split()
        return cls(tuple(part.encode("utf-8") for part in parts))


@dataclass(frozen=True)
class SRVRdata(Rdata):
    """Service-location record (RFC 2782)."""

    priority: int
    weight: int
    port: int
    target: Name
    rdtype: ClassVar[RecordType] = RecordType.SRV

    def to_wire(self) -> bytes:
        return struct.pack("!HHH", self.priority, self.weight, self.port) + self.target.to_wire()

    def to_text(self) -> str:
        return f"{self.priority} {self.weight} {self.port} {self.target.to_text()}"

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, length: int) -> "SRVRdata":
        priority, weight, port = struct.unpack_from("!HHH", wire, offset)
        target, _ = Name.from_wire(wire, offset + 6)
        return cls(priority, weight, port, target)

    @classmethod
    def from_text(cls, text: str) -> "SRVRdata":
        priority, weight, port, target = text.split()
        return cls(int(priority), int(weight), int(port), Name.from_text(target))


# SVCB/HTTPS service parameter keys (RFC 9460, section 7).
SVC_PARAM_ALPN = 1
SVC_PARAM_PORT = 3
SVC_PARAM_IPV4HINT = 4
SVC_PARAM_IPV6HINT = 6

_SVC_PARAM_NAMES = {
    SVC_PARAM_ALPN: "alpn",
    SVC_PARAM_PORT: "port",
    SVC_PARAM_IPV4HINT: "ipv4hint",
    SVC_PARAM_IPV6HINT: "ipv6hint",
}
_SVC_PARAM_KEYS = {name: key for key, name in _SVC_PARAM_NAMES.items()}


@dataclass(frozen=True)
class SVCBRdata(Rdata):
    """SVCB record (RFC 9460): priority, target and service parameters.

    ``params`` maps numeric SvcParamKeys to already-encoded SvcParamValues;
    helpers are provided for the ALPN parameter since the paper highlights
    HTTPS records signalling ALPN support.
    """

    priority: int
    target: Name
    params: tuple[tuple[int, bytes], ...] = ()
    rdtype: ClassVar[RecordType] = RecordType.SVCB

    @classmethod
    def with_alpn(cls, priority: int, target: Name, alpns: list[str], **extra: bytes) -> "SVCBRdata":
        """Build a record advertising the given ALPN protocol identifiers."""
        encoded = bytearray()
        for alpn in alpns:
            raw = alpn.encode("ascii")
            encoded.append(len(raw))
            encoded += raw
        params: list[tuple[int, bytes]] = [(SVC_PARAM_ALPN, bytes(encoded))]
        for name, value in extra.items():
            params.append((_SVC_PARAM_KEYS[name], value))
        return cls(priority, target, tuple(sorted(params)))

    def alpns(self) -> list[str]:
        """Decode the ALPN parameter, if present."""
        for key, value in self.params:
            if key == SVC_PARAM_ALPN:
                result = []
                cursor = 0
                while cursor < len(value):
                    size = value[cursor]
                    cursor += 1
                    result.append(value[cursor: cursor + size].decode("ascii"))
                    cursor += size
                return result
        return []

    def to_wire(self) -> bytes:
        output = bytearray(struct.pack("!H", self.priority))
        output += self.target.to_wire()
        for key, value in sorted(self.params):
            output += struct.pack("!HH", key, len(value))
            output += value
        return bytes(output)

    def to_text(self) -> str:
        parts = [str(self.priority), self.target.to_text()]
        for key, value in sorted(self.params):
            name = _SVC_PARAM_NAMES.get(key, f"key{key}")
            if key == SVC_PARAM_ALPN:
                parts.append(f"{name}={','.join(self.alpns())}")
            else:
                parts.append(f"{name}={value.hex()}")
        return " ".join(parts)

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, length: int) -> "SVCBRdata":
        end = offset + length
        (priority,) = struct.unpack_from("!H", wire, offset)
        target, cursor = Name.from_wire(wire, offset + 2)
        params: list[tuple[int, bytes]] = []
        while cursor < end:
            key, size = struct.unpack_from("!HH", wire, cursor)
            cursor += 4
            if cursor + size > end:
                raise RdataError("truncated SvcParam")
            params.append((key, wire[cursor: cursor + size]))
            cursor += size
        return cls(priority, target, tuple(params))

    @classmethod
    def from_text(cls, text: str) -> "SVCBRdata":
        parts = text.split()
        if len(parts) < 2:
            raise RdataError("SVCB rdata needs priority and target")
        priority = int(parts[0])
        target = Name.from_text(parts[1])
        params: list[tuple[int, bytes]] = []
        for token in parts[2:]:
            name, _, value = token.partition("=")
            if name == "alpn":
                encoded = bytearray()
                for alpn in value.split(","):
                    raw = alpn.encode("ascii")
                    encoded.append(len(raw))
                    encoded += raw
                params.append((SVC_PARAM_ALPN, bytes(encoded)))
            elif name in _SVC_PARAM_KEYS:
                params.append((_SVC_PARAM_KEYS[name], bytes.fromhex(value)))
            else:
                raise RdataError(f"unknown SvcParam: {name}")
        return cls(priority, target, tuple(sorted(params)))


@dataclass(frozen=True)
class HTTPSRdata(SVCBRdata):
    """HTTPS record (RFC 9460); identical to SVCB apart from the type code."""

    rdtype: ClassVar[RecordType] = RecordType.HTTPS


@dataclass(frozen=True)
class GenericRdata(Rdata):
    """Opaque RDATA for record types without a dedicated class."""

    type_code: int
    data: bytes
    rdtype: ClassVar[RecordType] = RecordType.ANY

    def to_wire(self) -> bytes:
        return self.data

    def to_text(self) -> str:
        return f"\\# {len(self.data)} {self.data.hex()}"

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, length: int) -> "GenericRdata":
        return cls(0, wire[offset: offset + length])

    @classmethod
    def from_text(cls, text: str) -> "GenericRdata":
        parts = text.split()
        if len(parts) >= 3 and parts[0] == "\\#":
            return cls(0, bytes.fromhex("".join(parts[2:])))
        raise RdataError(f"cannot parse generic rdata: {text!r}")


_RDATA_CLASSES: dict[RecordType, type[Rdata]] = {
    RecordType.A: ARdata,
    RecordType.AAAA: AAAARdata,
    RecordType.CNAME: CNAMERdata,
    RecordType.NS: NSRdata,
    RecordType.PTR: PTRRdata,
    RecordType.SOA: SOARdata,
    RecordType.MX: MXRdata,
    RecordType.TXT: TXTRdata,
    RecordType.SRV: SRVRdata,
    RecordType.SVCB: SVCBRdata,
    RecordType.HTTPS: HTTPSRdata,
}


def rdata_class_for(rdtype: RecordType) -> type[Rdata] | None:
    """The RDATA class registered for ``rdtype``, if any."""
    return _RDATA_CLASSES.get(rdtype)


def decode_rdata(rdtype: RecordType, wire: bytes, offset: int, length: int) -> Rdata:
    """Decode RDATA of the given type; unknown types become GenericRdata."""
    klass = _RDATA_CLASSES.get(rdtype)
    if klass is None:
        generic = GenericRdata.from_wire(wire, offset, length)
        return GenericRdata(int(rdtype), generic.data)
    return klass.from_wire(wire, offset, length)


def parse_rdata(rdtype: RecordType, text: str) -> Rdata:
    """Parse presentation-format RDATA of the given type."""
    klass = _RDATA_CLASSES.get(rdtype)
    if klass is None:
        return GenericRdata.from_text(text)
    return klass.from_text(text)
