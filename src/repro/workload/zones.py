"""Building the simulated DNS hierarchy for a synthetic top list.

The builder creates the zones of a three-level hierarchy — a root zone with
TLD delegations, one TLD zone per top-level domain with delegations for every
listed domain, and per-domain authoritative zones — and assigns each
authoritative server an IP-literal host address so the zones can be attached
to simulated hosts.

It also wires each domain's A record to a
:class:`~repro.workload.change_model.RecordChangeProcess` so experiments can
advance simulated time and apply the resulting record changes to the
authoritative zones (which in turn triggers MoQT pushes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.name import Name
from repro.dns.rdata import SVCBRdata, HTTPSRdata
from repro.dns.rr import ResourceRecord, RRset
from repro.dns.types import DNSClass, RecordType
from repro.dns.zone import Zone
from repro.workload.change_model import ChangeModel, RecordChangeProcess
from repro.workload.toplist import SyntheticToplist, ToplistDomain

#: Host addresses used for the shared infrastructure.
ROOT_SERVER_ADDRESS = "198.41.0.4"
TLD_SERVER_PREFIX = "192.5.6."
AUTH_SERVER_PREFIX = "93.184."


@dataclass
class ZoneBuildConfig:
    """Parameters of the hierarchy builder."""

    #: Number of distinct authoritative server hosts to spread domains over.
    auth_server_count: int = 8
    #: Default TTL for infrastructure (NS/glue) records.
    infrastructure_ttl: int = 3600
    #: Addresses per A answer.
    addresses_per_answer: int = 4


@dataclass
class DomainAssignment:
    """Where one domain's authoritative data lives."""

    domain: ToplistDomain
    zone: Zone
    auth_host: str
    change_process: RecordChangeProcess | None = None


class WorkloadZones:
    """The full set of zones for a synthetic top list."""

    def __init__(
        self,
        toplist: SyntheticToplist,
        change_model: ChangeModel | None = None,
        config: ZoneBuildConfig | None = None,
    ) -> None:
        self.toplist = toplist
        self.change_model = change_model if change_model is not None else ChangeModel()
        self.config = config if config is not None else ZoneBuildConfig()
        self.root_zone = Zone(".")
        self.tld_zones: dict[str, Zone] = {}
        self.tld_hosts: dict[str, str] = {}
        self.auth_hosts: list[str] = [
            f"{AUTH_SERVER_PREFIX}{index // 250}.{index % 250 + 1}"
            for index in range(self.config.auth_server_count)
        ]
        self.assignments: dict[Name, DomainAssignment] = {}
        self._build()

    # ------------------------------------------------------------------- build
    def _build(self) -> None:
        for index, tld in enumerate(self.toplist.tld_names()):
            self._build_tld(tld, index)
        for position, domain in enumerate(self.toplist.domains()):
            self._build_domain(domain, position)

    def _build_tld(self, tld: str, index: int) -> None:
        tld_host = f"{TLD_SERVER_PREFIX}{index + 1}"
        self.tld_hosts[tld] = tld_host
        tld_name = Name.from_text(f"{tld}.")
        ns_name = Name.from_text(f"ns.{tld}-servers.net.")
        self.root_zone.add(tld_name, RecordType.NS, ns_name.to_text(),
                           ttl=self.config.infrastructure_ttl, bump=False)
        self.root_zone.add(ns_name, RecordType.A, tld_host,
                           ttl=self.config.infrastructure_ttl, bump=False)
        self.tld_zones[tld] = Zone(tld_name)

    def _build_domain(self, domain: ToplistDomain, position: int) -> None:
        tld = domain.name.labels[-1].decode("ascii")
        tld_zone = self.tld_zones[tld]
        auth_host = self.auth_hosts[position % len(self.auth_hosts)]
        ns_name = Name(( b"ns1",) + domain.name.labels)
        tld_zone.add(domain.name, RecordType.NS, ns_name.to_text(),
                     ttl=self.config.infrastructure_ttl, bump=False)
        tld_zone.add(ns_name, RecordType.A, auth_host,
                     ttl=self.config.infrastructure_ttl, bump=False)

        zone = Zone(domain.name)
        zone.add(ns_name, RecordType.A, auth_host, ttl=self.config.infrastructure_ttl, bump=False)
        zone.add(domain.name, RecordType.NS, ns_name.to_text(),
                 ttl=self.config.infrastructure_ttl, bump=False)
        change_process: RecordChangeProcess | None = None
        if domain.has_type(RecordType.A):
            ttl = domain.ttl_for(RecordType.A) or 300
            change_process = self.change_model.process_for(
                domain.rank, ttl, RecordType.A, self.config.addresses_per_answer
            )
            self._apply_addresses(zone, domain.name, ttl, change_process, bump=False)
        if domain.has_type(RecordType.AAAA):
            ttl = domain.ttl_for(RecordType.AAAA) or 300
            zone.add(
                domain.name,
                RecordType.AAAA,
                f"2001:db8:{domain.rank:x}::1",
                ttl=ttl,
                bump=False,
            )
        if domain.has_type(RecordType.HTTPS):
            ttl = domain.ttl_for(RecordType.HTTPS) or 300
            rdata = HTTPSRdata.with_alpn(1, Name.root(), ["h2", "h3"])
            zone.add_record(
                ResourceRecord(domain.name, RecordType.HTTPS, rdata, ttl), bump=False
            )
        self.assignments[domain.name] = DomainAssignment(
            domain=domain, zone=zone, auth_host=auth_host, change_process=change_process
        )

    def _apply_addresses(
        self,
        zone: Zone,
        name: Name,
        ttl: int,
        process: RecordChangeProcess,
        bump: bool,
    ) -> None:
        records = [
            ResourceRecord(name, RecordType.A, _a_rdata(address), ttl)
            for address in process.current_addresses()
        ]
        zone.replace_rrset(RRset(name, RecordType.A, records), bump=bump)

    # --------------------------------------------------------------- mutation
    def advance_domain(self, name: Name) -> bool:
        """Advance one observation interval for a domain's A record.

        Applies the new addresses to the authoritative zone when the change
        process produced a change.  Returns whether a change happened.
        """
        assignment = self.assignments[name]
        process = assignment.change_process
        if process is None:
            return False
        changed = process.advance()
        if changed:
            ttl = assignment.domain.ttl_for(RecordType.A) or 300
            self._apply_addresses(assignment.zone, name, ttl, process, bump=True)
        return changed

    # ----------------------------------------------------------------- access
    def zones_for_auth_host(self, auth_host: str) -> list[Zone]:
        """All per-domain zones assigned to one authoritative server host."""
        return [
            assignment.zone
            for assignment in self.assignments.values()
            if assignment.auth_host == auth_host
        ]

    def all_hosts(self) -> dict[str, list[Zone]]:
        """Mapping of every server host address to the zones it serves."""
        hosts: dict[str, list[Zone]] = {ROOT_SERVER_ADDRESS: [self.root_zone]}
        for tld, host in self.tld_hosts.items():
            hosts.setdefault(host, []).append(self.tld_zones[tld])
        for auth_host in self.auth_hosts:
            zones = self.zones_for_auth_host(auth_host)
            if zones:
                hosts.setdefault(auth_host, []).extend(zones)
        return hosts

    def assignment(self, name: Name | str) -> DomainAssignment:
        """The assignment for a domain name."""
        key = name if isinstance(name, Name) else Name.from_text(name)
        return self.assignments[key]


def _a_rdata(address: str):
    from repro.dns.rdata import ARdata

    return ARdata(address)


def build_hierarchy(
    toplist: SyntheticToplist,
    change_model: ChangeModel | None = None,
    config: ZoneBuildConfig | None = None,
) -> WorkloadZones:
    """Convenience wrapper returning a fully built :class:`WorkloadZones`."""
    return WorkloadZones(toplist, change_model, config)
