"""A synthetic Tranco-like top list.

The paper resolves the Tranco top-10k from 2025-06-24 and finds 8435 domains
with A records, 2870 with AAAA records and 1835 with HTTPS records.  The
synthetic list reproduces those coverage ratios (scaled to the configured
population), assigns each domain a TTL per record type from the
:class:`~repro.workload.ttl_model.TtlModel`, and gives every domain a rank so
query models can apply Zipf popularity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.workload.ttl_model import TtlModel

#: Record-type coverage observed in the paper (fraction of the top-10k).
PAPER_COVERAGE = {
    RecordType.A: 8435 / 10000,
    RecordType.AAAA: 2870 / 10000,
    RecordType.HTTPS: 1835 / 10000,
}

#: TLD mix used for synthetic names (share of domains per TLD).
DEFAULT_TLDS = (("com", 0.62), ("net", 0.12), ("org", 0.12), ("io", 0.08), ("dev", 0.06))


@dataclass(frozen=True)
class ToplistDomain:
    """One synthetic domain: name, rank and its records' types and TTLs."""

    name: Name
    rank: int
    record_types: tuple[RecordType, ...]
    ttls: tuple[tuple[RecordType, int], ...]
    address_pool_size: int = 4

    def ttl_for(self, rdtype: RecordType) -> int | None:
        """The TTL assigned to a record type (None if the type is absent)."""
        for record_type, ttl in self.ttls:
            if record_type == rdtype:
                return ttl
        return None

    def has_type(self, rdtype: RecordType) -> bool:
        """Whether the domain publishes records of this type."""
        return rdtype in self.record_types


@dataclass
class ToplistConfig:
    """Parameters of the synthetic top list."""

    size: int = 10_000
    seed: int = 2025_06_24
    coverage: dict[RecordType, float] = field(default_factory=lambda: dict(PAPER_COVERAGE))
    tlds: tuple[tuple[str, float], ...] = DEFAULT_TLDS
    ttl_model: TtlModel = field(default_factory=TtlModel)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"toplist size must be positive: {self.size}")
        for rdtype, fraction in self.coverage.items():
            if not 0.0 <= fraction <= 1.0:
                raise ValueError(f"coverage for {rdtype} out of range: {fraction}")


class SyntheticToplist:
    """Generates and holds the synthetic domain population."""

    def __init__(self, config: ToplistConfig | None = None) -> None:
        self.config = config if config is not None else ToplistConfig()
        self._rng = random.Random(self.config.seed)
        self._domains: list[ToplistDomain] = []
        self._generate()

    def _pick_tld(self) -> str:
        names = [name for name, _ in self.config.tlds]
        weights = [weight for _, weight in self.config.tlds]
        return self._rng.choices(names, weights=weights, k=1)[0]

    def _generate(self) -> None:
        coverage = self.config.coverage
        for rank in range(1, self.config.size + 1):
            tld = self._pick_tld()
            name = Name.from_text(f"site{rank:05d}.{tld}.")
            record_types: list[RecordType] = []
            # Record-type coverage is drawn independently per type so the
            # population fractions match the paper's totals; domains without
            # any address record still exist in the list (the paper resolves
            # 8435 A records out of 10 000 domains).
            if self._rng.random() < coverage.get(RecordType.A, 1.0):
                record_types.append(RecordType.A)
            if self._rng.random() < coverage.get(RecordType.AAAA, 0.0):
                record_types.append(RecordType.AAAA)
            if self._rng.random() < coverage.get(RecordType.HTTPS, 0.0):
                record_types.append(RecordType.HTTPS)
            ttls = tuple(
                (rdtype, self.config.ttl_model.sample(rdtype, self._rng))
                for rdtype in record_types
            )
            self._domains.append(
                ToplistDomain(
                    name=name,
                    rank=rank,
                    record_types=tuple(record_types),
                    ttls=ttls,
                    address_pool_size=self._rng.choice((2, 4, 8)),
                )
            )

    # ------------------------------------------------------------------ access
    def domains(self) -> list[ToplistDomain]:
        """All domains, most popular first."""
        return list(self._domains)

    def __len__(self) -> int:
        return len(self._domains)

    def __iter__(self):
        return iter(self._domains)

    def domain(self, rank: int) -> ToplistDomain:
        """The domain at a given 1-based rank."""
        return self._domains[rank - 1]

    def domains_with_type(self, rdtype: RecordType) -> list[ToplistDomain]:
        """Domains that publish records of the given type."""
        return [domain for domain in self._domains if domain.has_type(rdtype)]

    def count_by_type(self) -> dict[RecordType, int]:
        """Number of domains per record type (the Fig. 1a totals)."""
        counts: dict[RecordType, int] = {}
        for rdtype in (RecordType.A, RecordType.AAAA, RecordType.HTTPS):
            counts[rdtype] = len(self.domains_with_type(rdtype))
        return counts

    def ttl_histogram(self, rdtype: RecordType) -> dict[int, int]:
        """Number of domains per TTL cluster for a record type (Fig. 1a)."""
        histogram: dict[int, int] = {}
        for domain in self.domains_with_type(rdtype):
            ttl = domain.ttl_for(rdtype)
            if ttl is None:
                continue
            histogram[ttl] = histogram.get(ttl, 0) + 1
        return dict(sorted(histogram.items()))

    def tld_names(self) -> list[str]:
        """All TLD labels present in the list."""
        return sorted({domain.name.labels[-1].decode("ascii") for domain in self._domains})
