"""Client query arrival models.

Stub resolvers issue queries for domains drawn from a Zipf popularity
distribution over the top list (popular sites are looked up far more often),
with exponentially distributed inter-arrival times.  The model is
deterministic given its seed, so experiments are reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.dns.types import RecordType
from repro.workload.toplist import SyntheticToplist, ToplistDomain


@dataclass
class QueryModelConfig:
    """Parameters of the query arrival model."""

    #: Zipf exponent for domain popularity (1.0 is the classic web value).
    zipf_exponent: float = 1.0
    #: Mean queries per second issued by one client.
    queries_per_second: float = 1.0
    #: Share of queries per record type.
    type_mix: tuple[tuple[RecordType, float], ...] = (
        (RecordType.A, 0.70),
        (RecordType.AAAA, 0.20),
        (RecordType.HTTPS, 0.10),
    )
    seed: int = 7


@dataclass(frozen=True)
class QueryEvent:
    """One query: when it is issued, for which domain and type."""

    time: float
    domain: ToplistDomain
    rdtype: RecordType


class QueryModel:
    """Generates query streams over a synthetic top list."""

    def __init__(self, toplist: SyntheticToplist, config: QueryModelConfig | None = None) -> None:
        self.toplist = toplist
        self.config = config if config is not None else QueryModelConfig()
        self._rng = random.Random(self.config.seed)
        self._weights = self._zipf_weights(len(toplist), self.config.zipf_exponent)

    @staticmethod
    def _zipf_weights(population: int, exponent: float) -> list[float]:
        return [1.0 / math.pow(rank, exponent) for rank in range(1, population + 1)]

    def sample_domain(self, rng: random.Random | None = None) -> ToplistDomain:
        """Draw a domain according to Zipf popularity."""
        generator = rng if rng is not None else self._rng
        index = generator.choices(range(len(self.toplist)), weights=self._weights, k=1)[0]
        return self.toplist.domain(index + 1)

    def sample_type(self, domain: ToplistDomain, rng: random.Random | None = None) -> RecordType:
        """Draw a record type the domain actually publishes."""
        generator = rng if rng is not None else self._rng
        candidates = [
            (rdtype, weight)
            for rdtype, weight in self.config.type_mix
            if domain.has_type(rdtype)
        ]
        if not candidates:
            # Clients still ask for A records even when the domain publishes
            # none (the answer is simply an empty NOERROR / NXDOMAIN).
            return domain.record_types[0] if domain.record_types else RecordType.A
        types = [rdtype for rdtype, _ in candidates]
        weights = [weight for _, weight in candidates]
        return generator.choices(types, weights=weights, k=1)[0]

    def generate(self, duration: float, client_seed: int = 0) -> list[QueryEvent]:
        """Generate the query stream of one client over ``duration`` seconds."""
        rng = random.Random((self.config.seed << 16) ^ client_seed)
        events: list[QueryEvent] = []
        now = 0.0
        rate = self.config.queries_per_second
        if rate <= 0:
            return events
        while True:
            now += rng.expovariate(rate)
            if now >= duration:
                break
            domain = self.sample_domain(rng)
            rdtype = self.sample_type(domain, rng)
            events.append(QueryEvent(time=now, domain=domain, rdtype=rdtype))
        return events

    def unique_domains(self, events: list[QueryEvent]) -> int:
        """Number of distinct domains appearing in a query stream."""
        return len({event.domain.name for event in events})
