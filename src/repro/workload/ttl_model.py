"""TTL distributions calibrated to Fig. 1a of the paper.

The paper reports that observed TTLs "naturally cluster" in
[20, 60, 300, 600, 1200, 3600] seconds for A and AAAA records, that HTTPS
records are seen almost exclusively with a TTL of 300 s, and (in §5.3) that
the lowest observed clustered TTL is 10 s.  The mixtures below reproduce
those qualitative facts; the exact proportions are not published in the
paper, so they are chosen to give the familiar shape of public TTL studies
(300 s dominating, a long tail at 3600 s, a small sub-minute head).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dns.types import RecordType

#: The clustered TTL values (seconds) the paper reports, including the 10 s
#: cluster mentioned in §5.3.
TTL_CLUSTERS: tuple[int, ...] = (10, 20, 60, 300, 600, 1200, 3600)

#: Default mixture weights per record type over :data:`TTL_CLUSTERS`.
DEFAULT_TTL_WEIGHTS: dict[RecordType, dict[int, float]] = {
    RecordType.A: {10: 0.03, 20: 0.07, 60: 0.15, 300: 0.40, 600: 0.10, 1200: 0.05, 3600: 0.20},
    RecordType.AAAA: {10: 0.02, 20: 0.06, 60: 0.14, 300: 0.42, 600: 0.11, 1200: 0.05, 3600: 0.20},
    RecordType.HTTPS: {10: 0.0, 20: 0.0, 60: 0.02, 300: 0.95, 600: 0.01, 1200: 0.0, 3600: 0.02},
}


@dataclass
class TtlModel:
    """Samples TTLs per record type from calibrated cluster mixtures."""

    weights: dict[RecordType, dict[int, float]] = field(
        default_factory=lambda: {k: dict(v) for k, v in DEFAULT_TTL_WEIGHTS.items()}
    )

    def __post_init__(self) -> None:
        for rdtype, mixture in self.weights.items():
            total = sum(mixture.values())
            if total <= 0:
                raise ValueError(f"TTL mixture for {rdtype} has non-positive mass")
            for ttl in mixture:
                if ttl not in TTL_CLUSTERS:
                    raise ValueError(f"TTL {ttl} is not one of the observed clusters")

    def sample(self, rdtype: RecordType, rng: random.Random) -> int:
        """Draw a TTL for a record of the given type."""
        mixture = self.weights.get(rdtype)
        if mixture is None:
            mixture = self.weights[RecordType.A]
        values = list(mixture.keys())
        weights = [mixture[value] for value in values]
        return rng.choices(values, weights=weights, k=1)[0]

    def probability(self, rdtype: RecordType, ttl: int) -> float:
        """The probability mass of a TTL cluster for a record type."""
        mixture = self.weights.get(rdtype, self.weights[RecordType.A])
        total = sum(mixture.values())
        return mixture.get(ttl, 0.0) / total

    def expected_counts(self, rdtype: RecordType, population: int) -> dict[int, float]:
        """Expected number of records per TTL cluster for a population size."""
        return {
            ttl: self.probability(rdtype, ttl) * population
            for ttl in TTL_CLUSTERS
            if self.probability(rdtype, ttl) > 0
        }
