"""Workload models calibrated to the paper's measurement study (§2).

The paper resolved the Tranco top-10k domains from a single vantage point and
reported, for A, AAAA and HTTPS records, how many domains carry each type,
how the TTLs cluster, and how often records change between TTL-spaced
observations.  Because this repository has no network access, the same
population is synthesised:

* :mod:`repro.workload.toplist` — a synthetic top list with per-domain record
  type coverage matching the reported counts (8435 A, 2870 AAAA, 1835 HTTPS
  out of 10 000);
* :mod:`repro.workload.ttl_model` — TTL mixtures over the clusters the paper
  observes ([10] 20/60/300/600/1200/3600 s, with HTTPS almost exclusively
  300 s);
* :mod:`repro.workload.change_model` — per-TTL record change processes whose
  change-count distribution reproduces Fig. 1b (high change rates at TTLs
  ≤ 300 s, essentially none at ≥ 600 s);
* :mod:`repro.workload.zones` — builds the root/TLD/authoritative zone
  hierarchy for a toplist and applies record changes over simulated time;
* :mod:`repro.workload.queries` — client query arrival models (Zipf
  popularity, Poisson arrivals).
"""

from repro.workload.toplist import SyntheticToplist, ToplistDomain, ToplistConfig
from repro.workload.ttl_model import TtlModel, TTL_CLUSTERS
from repro.workload.change_model import ChangeModel, RecordChangeProcess, ChangeModelConfig
from repro.workload.zones import WorkloadZones, ZoneBuildConfig, build_hierarchy
from repro.workload.queries import QueryModel, QueryModelConfig

__all__ = [
    "SyntheticToplist",
    "ToplistDomain",
    "ToplistConfig",
    "TtlModel",
    "TTL_CLUSTERS",
    "ChangeModel",
    "RecordChangeProcess",
    "ChangeModelConfig",
    "WorkloadZones",
    "ZoneBuildConfig",
    "build_hierarchy",
    "QueryModel",
    "QueryModelConfig",
]
