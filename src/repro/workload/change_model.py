"""Record change processes calibrated to Fig. 1b of the paper.

The paper measures, per TTL cluster, how many times an A record changed over
300 consecutive TTL-spaced observations (comparing lexicographically ordered
RDATA so round-robin rotation does not count as a change).  The headline
findings are:

* TTLs of 300 s and below change often — at least 71 changes out of 300
  observations at the 90th percentile;
* TTLs of 600 s and above essentially never change (0 changes up to the 90th
  percentile);
* HTTPS records (almost always TTL 300 s) change about as often as A records
  with TTL 300 s.

Each domain gets a :class:`RecordChangeProcess`: with probability
``dynamic_fraction`` (which depends on the TTL) the domain is "dynamic" and
changes between consecutive observations with a per-domain probability drawn
from a calibrated range (CDN-style load balancing); otherwise it is static
with a tiny residual change probability (renumbering events).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dns.types import RecordType

#: TTL threshold below/at which the paper observes high change rates.
DYNAMIC_TTL_THRESHOLD = 300


@dataclass
class ChangeModelConfig:
    """Calibration of the per-TTL change behaviour."""

    #: Fraction of domains that behave dynamically, per TTL regime.  High-TTL
    #: records are almost always static: the paper observes zero changes up
    #: to the 90th percentile for TTLs of 600 s and above.
    dynamic_fraction_low_ttl: float = 0.60
    dynamic_fraction_high_ttl: float = 0.05
    #: Per-observation change probability range for dynamic domains.
    dynamic_change_range: tuple[float, float] = (0.25, 0.95)
    #: Per-observation change probability range for static domains (zero:
    #: a static record simply does not change between observations).
    static_change_range: tuple[float, float] = (0.0, 0.0)
    #: Number of distinct addresses a dynamic domain rotates through.
    address_pool: int = 64
    seed: int = 20250624

    def __post_init__(self) -> None:
        for low, high in (self.dynamic_change_range, self.static_change_range):
            if not 0.0 <= low <= high <= 1.0:
                raise ValueError(f"invalid probability range: ({low}, {high})")
        if not 0.0 <= self.dynamic_fraction_low_ttl <= 1.0:
            raise ValueError("dynamic_fraction_low_ttl out of range")
        if not 0.0 <= self.dynamic_fraction_high_ttl <= 1.0:
            raise ValueError("dynamic_fraction_high_ttl out of range")


@dataclass
class RecordChangeProcess:
    """The change process of one record set.

    ``advance()`` moves to the next TTL-spaced observation instant and
    returns whether the record set changed; ``current_addresses()`` gives the
    rendered RDATA values so measurement code can apply the paper's
    lexicographic comparison.
    """

    domain_index: int
    ttl: int
    change_probability: float
    pool_size: int
    addresses_per_answer: int
    rng: random.Random
    changes: int = 0
    observations: int = 0
    _current_selection: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self._current_selection:
            self._current_selection = self._pick_selection()

    def _pick_selection(self) -> tuple[int, ...]:
        return tuple(
            sorted(self.rng.sample(range(self.pool_size), k=min(self.addresses_per_answer, self.pool_size)))
        )

    def _address_for(self, index: int) -> str:
        # Deterministic mapping of (domain, pool index) to an IPv4 literal.
        high = (self.domain_index % 250) + 1
        return f"203.{high}.{(index // 250) % 250}.{index % 250 + 1}"

    def current_addresses(self) -> list[str]:
        """The RDATA values of the current record set (unordered)."""
        return [self._address_for(index) for index in self._current_selection]

    def current_sorted(self) -> tuple[str, ...]:
        """Lexicographically ordered RDATA, as the paper's comparison uses."""
        return tuple(sorted(self.current_addresses()))

    def advance(self) -> bool:
        """Advance one observation interval; returns True if the set changed."""
        self.observations += 1
        if self.rng.random() >= self.change_probability:
            return False
        previous = self._current_selection
        for _ in range(8):
            candidate = self._pick_selection()
            if candidate != previous:
                self._current_selection = candidate
                self.changes += 1
                return True
        return False

    def mean_change_interval(self) -> float:
        """Expected seconds between changes (infinite for static records)."""
        if self.change_probability <= 0.0:
            return float("inf")
        return self.ttl / self.change_probability


class ChangeModel:
    """Creates calibrated :class:`RecordChangeProcess` instances per domain."""

    def __init__(self, config: ChangeModelConfig | None = None) -> None:
        self.config = config if config is not None else ChangeModelConfig()
        self._rng = random.Random(self.config.seed)

    def dynamic_fraction(self, ttl: int) -> float:
        """Fraction of domains with this TTL that behave dynamically."""
        if ttl <= DYNAMIC_TTL_THRESHOLD:
            return self.config.dynamic_fraction_low_ttl
        return self.config.dynamic_fraction_high_ttl

    def change_probability(self, ttl: int, rng: random.Random) -> float:
        """Draw a per-observation change probability for one domain."""
        if rng.random() < self.dynamic_fraction(ttl):
            low, high = self.config.dynamic_change_range
        else:
            low, high = self.config.static_change_range
        return rng.uniform(low, high)

    def process_for(
        self,
        domain_index: int,
        ttl: int,
        rdtype: RecordType = RecordType.A,
        addresses_per_answer: int = 4,
    ) -> RecordChangeProcess:
        """Build the change process for one domain/record type."""
        rng = random.Random((self.config.seed << 20) ^ (domain_index * 2654435761) ^ int(rdtype))
        probability = self.change_probability(ttl, rng)
        return RecordChangeProcess(
            domain_index=domain_index,
            ttl=ttl,
            change_probability=probability,
            pool_size=self.config.address_pool,
            addresses_per_answer=addresses_per_answer,
            rng=rng,
        )

    def expected_changes(self, ttl: int, observations: int = 300) -> float:
        """Expected number of changes over a number of observations.

        A population average mixing dynamic and static domains; used by the
        traffic estimators as a sanity cross-check.
        """
        fraction = self.dynamic_fraction(ttl)
        dynamic_mean = sum(self.config.dynamic_change_range) / 2.0
        static_mean = sum(self.config.static_change_range) / 2.0
        per_observation = fraction * dynamic_mean + (1.0 - fraction) * static_mean
        return per_observation * observations
