"""QUIC endpoints: the glue between connections and the simulated network.

An endpoint binds to a host port, demultiplexes incoming packets to
connections by connection ID, creates client connections on
:meth:`QuicEndpoint.connect` and server connections when an INITIAL packet
with an unknown connection ID arrives.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.netsim.node import Host
from repro.netsim.packet import Address, Datagram
from repro.quic.connection import ConnectionConfig, QuicConnection
from repro.quic.packet import Packet, PacketType
from repro.quic.tls import ServerTlsContext, SessionTicketStore

PROTOCOL_LABEL = "quic"

ConnectionHandler = Callable[[QuicConnection], None]


class QuicEndpoint:
    """A UDP socket speaking QUIC on the simulated network.

    Parameters
    ----------
    host:
        The simulated host.
    port:
        The local port; defaults to an ephemeral port (client endpoints).
    server_config:
        When given, the endpoint accepts incoming connections using this
        configuration.
    server_tls:
        Server-side ALPN/0-RTT policy (required to accept connections).
    on_connection:
        Callback invoked with every newly accepted server connection, before
        any of its application callbacks fire — the MoQT layer uses this to
        attach a session to the connection.
    """

    __slots__ = (
        "_host",
        "_simulator",
        "_server_config",
        "_server_tls",
        "on_connection",
        "ticket_store",
        "_connections",
        "_next_connection_id",
        "_pool",
        "_rng",
        "address",
    )

    def __init__(
        self,
        host: Host,
        port: int | None = None,
        server_config: ConnectionConfig | None = None,
        server_tls: ServerTlsContext | None = None,
        on_connection: ConnectionHandler | None = None,
        rng: "random.Random | None" = None,
    ) -> None:
        self._host = host
        self._simulator = host.simulator
        self._server_config = server_config
        self._server_tls = server_tls
        self.on_connection = on_connection
        self.ticket_store = SessionTicketStore()
        self._connections: dict[int, QuicConnection] = {}
        self._next_connection_id = 1
        # Connection-ID randomness source.  Defaults to the simulator's
        # seeded stream; aggregate-leaf subscribers pass an index-derived
        # private stream instead so creating (or skipping) them never shifts
        # the global seeded-RNG position other components draw from.
        self._rng = rng
        # Recycle datagram shells and send buffers through the network's pool
        # when one exists (hosts wired to links directly, as some transport
        # tests do, fall back to plain allocation).
        self._pool = getattr(host.network, "datagram_pool", None)
        if port is None:
            self.address = host.bind_ephemeral(self)
        else:
            self.address = host.bind(port, self)

    # ----------------------------------------------------------------- client
    def connect(
        self,
        peer: Address,
        config: ConnectionConfig | None = None,
        server_name: str | None = None,
    ) -> QuicConnection:
        """Open a client connection and start its handshake immediately."""
        connection_config = config if config is not None else ConnectionConfig()
        connection_id = self._allocate_connection_id()
        connection = QuicConnection(
            simulator=self._simulator,
            send_datagram=self._send_payload,
            local_address=self.address,
            peer_address=peer,
            connection_id=connection_id,
            is_client=True,
            config=connection_config,
            server_name=server_name or peer.host,
            ticket_store=self.ticket_store,
        )
        self._connections[connection_id] = connection
        self._install_pooled_sending(connection)
        connection.start_handshake()
        return connection

    def _allocate_connection_id(self) -> int:
        # Connection IDs must be unique per *receiving* endpoint, and a busy
        # server (a relay with hundreds of downstream subscribers) sees IDs
        # chosen independently by many client endpoints.  48 random bits keep
        # the collision probability negligible at that scale; 16 bits were
        # measurably not enough (birthday collisions wedged handshakes at
        # ~60 clients).  The counter is masked to 14 bits so the composite
        # never exceeds QUIC's 62-bit varint range — past 16384 connections
        # per endpoint, uniqueness rests on the random component alone.
        rng = self._rng if self._rng is not None else self._simulator.rng
        connection_id = ((self._next_connection_id & 0x3FFF) << 48) | rng.randrange(1 << 48)
        self._next_connection_id += 1
        return connection_id

    # ----------------------------------------------------------------- server
    @property
    def is_server(self) -> bool:
        """Whether this endpoint accepts incoming connections."""
        return self._server_tls is not None

    @property
    def server_tls(self) -> "ServerTlsContext | None":
        """The server-side TLS context (None for client-only endpoints)."""
        return self._server_tls

    def _accept(self, packet: Packet, source: Address) -> QuicConnection | None:
        if not self.is_server or packet.packet_type not in (
            PacketType.INITIAL,
            PacketType.ZERO_RTT,
        ):
            return None
        config = self._server_config if self._server_config is not None else ConnectionConfig()
        connection = QuicConnection(
            simulator=self._simulator,
            send_datagram=self._send_payload,
            local_address=self.address,
            peer_address=source,
            connection_id=packet.connection_id,
            is_client=False,
            config=config,
            server_tls=self._server_tls,
        )
        self._connections[packet.connection_id] = connection
        self._install_pooled_sending(connection)
        if self.on_connection is not None:
            self.on_connection(connection)
        return connection

    # ------------------------------------------------------------------ wiring
    def _install_pooled_sending(self, connection: QuicConnection) -> None:
        if self._pool is not None:
            connection._acquire_buffer = self._pool.acquire_buffer

    def _send_payload(self, payload: bytes | bytearray, destination: Address) -> None:
        pool = self._pool
        if pool is not None:
            if type(payload) is bytearray:
                # A pool-acquired send buffer from this endpoint's connection:
                # ship it zero-copy as a memoryview and reclaim it with the
                # datagram after final delivery.
                datagram = pool.acquire(
                    self.address,
                    destination,
                    memoryview(payload),
                    PROTOCOL_LABEL,
                    buffer=payload,
                )
            else:
                datagram = pool.acquire(self.address, destination, payload, PROTOCOL_LABEL)
            self._host.send(datagram)
            return
        self._host.send(
            Datagram(
                source=self.address,
                destination=destination,
                payload=payload,
                protocol=PROTOCOL_LABEL,
            )
        )

    def datagram_received(self, datagram: Datagram) -> None:
        """Entry point from the host: demultiplex to a connection."""
        try:
            packet = Packet.decode(datagram.payload)
        except Exception:
            return
        connection = self._connections.get(packet.connection_id)
        if connection is None:
            connection = self._accept(packet, datagram.source)
            if connection is None:
                return
        # The packet was already parsed for demultiplexing; hand the decoded
        # form to the connection instead of making it parse the bytes again.
        connection.packet_received(packet, len(datagram.payload))

    # --------------------------------------------------------------- lifecycle
    def connections(self) -> list[QuicConnection]:
        """All connections this endpoint has seen (including closed ones)."""
        return list(self._connections.values())

    def open_connections(self) -> list[QuicConnection]:
        """Connections that have not been closed."""
        return [connection for connection in self._connections.values() if not connection.closed]

    def close(self) -> None:
        """Close every connection and release the port."""
        for connection in list(self._connections.values()):
            if not connection.closed:
                connection.close()
        self._host.unbind(self.address.port)

    def abandon(self) -> None:
        """Crash the endpoint: release the port, abandon every connection.

        Unlike :meth:`close`, nothing is sent and no callbacks fire — the
        process simply vanishes, incoming datagrams hit an unbound port, and
        peers must detect the failure through their own liveness machinery.
        """
        for connection in self._connections.values():
            connection.abandon()
        self._host.unbind(self.address.port)
