"""QUIC frames with a byte-exact wire codec.

Only the frames the simulated stack needs are implemented: PADDING, PING,
ACK, CRYPTO, NEW_TOKEN-style session tickets are folded into CRYPTO payloads,
STREAM (with offset/length/fin), MAX_DATA-style flow control is omitted (the
simulation does not model flow-control blocking), DATAGRAM (RFC 9221),
CONNECTION_CLOSE and HANDSHAKE_DONE.

Serialisation is batched: every frame writes itself into a shared
``bytearray`` via :meth:`Frame.encode_into`, so a packet's frames are encoded
with a single output buffer and no per-frame writer objects or byte-string
joins.  :meth:`Frame.encode` remains as the single-frame convenience wrapper.
Frames are plain slotted dataclasses (not frozen): tens of thousands are
created per simulated second, and frozen dataclasses pay an
``object.__setattr__`` per field on construction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.quic.varint import (
    VarintError,
    append_varint,
    _VALUE_MASK,
)


class FrameType(enum.IntEnum):
    """Wire identifiers of the implemented frames."""

    PADDING = 0x00
    PING = 0x01
    ACK = 0x02
    ACK_RANGES = 0x03
    CRYPTO = 0x06
    STREAM = 0x08  # with offset, length and fin bits encoded separately
    CONNECTION_CLOSE = 0x1C
    HANDSHAKE_DONE = 0x1E
    DATAGRAM = 0x30


@dataclass(slots=True)
class Frame:
    """Base class for all frames."""

    def encode_into(self, buffer: bytearray) -> None:
        """Append the frame's wire encoding (including type) to ``buffer``."""
        raise NotImplementedError

    def encode(self) -> bytes:
        """Serialise the frame including its type byte."""
        buffer = bytearray()
        self.encode_into(buffer)
        return bytes(buffer)


@dataclass(slots=True)
class PaddingFrame(Frame):
    """PADDING: a run of zero bytes used to grow Initial packets."""

    length: int = 1

    def encode_into(self, buffer: bytearray) -> None:
        buffer += bytes(self.length)


@dataclass(slots=True)
class PingFrame(Frame):
    """PING: elicits an acknowledgement; used for liveness checks (§5.1)."""

    def encode_into(self, buffer: bytearray) -> None:
        buffer.append(FrameType.PING)


@dataclass(slots=True)
class AckFrame(Frame):
    """ACK: acknowledges every packet number up to and including ``largest``.

    The cumulative form is only emitted while the receiver's received-set is
    a single gap-free run starting at packet 0, which makes "everything up to
    ``largest``" exact.  The moment a gap appears (a drop on a lossy link,
    observed because a *later* packet arrived), the receiver switches to
    :class:`AckRangesFrame` — acknowledging a dropped packet cumulatively
    would cancel its retransmission and turn one drop into a permanent hole.
    """

    largest: int
    delay_us: int = 0

    def encode_into(self, buffer: bytearray) -> None:
        append_varint(buffer, FrameType.ACK)
        append_varint(buffer, self.largest)
        append_varint(buffer, self.delay_us)


@dataclass(slots=True)
class AckRangesFrame(Frame):
    """ACK_RANGES: acknowledges exactly the listed packet-number ranges.

    ``ranges`` holds inclusive ``(start, end)`` pairs in ascending order with
    at least one unreceived packet number between consecutive pairs.  The
    wire encoding walks the ranges from the top like RFC 9000's ACK frame,
    as successive deltas (each a small varint): after ``largest`` (= end of
    the last range) and the delay comes the range count, then per range the
    distance from the running anchor to the range's end and the range's
    ``length - 1``; the next anchor is that range's start.
    """

    largest: int
    delay_us: int
    ranges: tuple[tuple[int, int], ...]

    def encode_into(self, buffer: bytearray) -> None:
        append_varint(buffer, FrameType.ACK_RANGES)
        append_varint(buffer, self.largest)
        append_varint(buffer, self.delay_us)
        append_varint(buffer, len(self.ranges))
        anchor = self.largest
        for start, end in reversed(self.ranges):
            append_varint(buffer, anchor - end)
            append_varint(buffer, end - start)
            anchor = start


@dataclass(slots=True)
class CryptoFrame(Frame):
    """CRYPTO: carries the simulated TLS handshake messages."""

    data: bytes

    def encode_into(self, buffer: bytearray) -> None:
        append_varint(buffer, FrameType.CRYPTO)
        append_varint(buffer, len(self.data))
        buffer += self.data


@dataclass(slots=True)
class StreamFrame(Frame):
    """STREAM: ordered application data on a stream."""

    stream_id: int
    offset: int
    data: bytes
    fin: bool = False

    def encode_into(self, buffer: bytearray) -> None:
        append_varint(buffer, FrameType.STREAM)
        append_varint(buffer, self.stream_id)
        append_varint(buffer, self.offset)
        buffer.append(1 if self.fin else 0)
        append_varint(buffer, len(self.data))
        buffer += self.data


@dataclass(slots=True)
class DatagramFrame(Frame):
    """DATAGRAM (RFC 9221): unreliable application data."""

    data: bytes

    def encode_into(self, buffer: bytearray) -> None:
        append_varint(buffer, FrameType.DATAGRAM)
        append_varint(buffer, len(self.data))
        buffer += self.data


@dataclass(slots=True)
class ConnectionCloseFrame(Frame):
    """CONNECTION_CLOSE: terminates the connection."""

    error_code: int
    reason: str = ""

    def encode_into(self, buffer: bytearray) -> None:
        append_varint(buffer, FrameType.CONNECTION_CLOSE)
        append_varint(buffer, self.error_code)
        encoded_reason = self.reason.encode("utf-8")
        append_varint(buffer, len(encoded_reason))
        buffer += encoded_reason


@dataclass(slots=True)
class HandshakeDoneFrame(Frame):
    """HANDSHAKE_DONE: server's confirmation that the handshake completed."""

    def encode_into(self, buffer: bytearray) -> None:
        buffer.append(FrameType.HANDSHAKE_DONE)


def encode_frames(frames: list[Frame]) -> bytes:
    """Concatenate the encodings of several frames."""
    buffer = bytearray()
    for frame in frames:
        frame.encode_into(buffer)
    return bytes(buffer)


def encode_frames_into(buffer: bytearray, frames: tuple[Frame, ...] | list[Frame]) -> None:
    """Append the encodings of several frames to an existing buffer."""
    for frame in frames:
        frame.encode_into(buffer)


def decode_frames(payload: bytes) -> list[Frame]:
    """Parse a packet payload into frames."""
    frames, _ = decode_frames_range(payload, 0, len(payload))
    return frames


#: Local aliases so the decode loop below resolves them without module-dict
#: lookups per field.
_STREAM = int(FrameType.STREAM)
_ACK = int(FrameType.ACK)
_ACK_RANGES = int(FrameType.ACK_RANGES)
_PADDING = int(FrameType.PADDING)
_PING = int(FrameType.PING)
_CRYPTO = int(FrameType.CRYPTO)
_DATAGRAM = int(FrameType.DATAGRAM)
_CONNECTION_CLOSE = int(FrameType.CONNECTION_CLOSE)
_HANDSHAKE_DONE = int(FrameType.HANDSHAKE_DONE)


def decode_frames_range(
    view: bytes | memoryview, offset: int, end: int
) -> tuple[list[Frame], int]:
    """Parse frames from ``view[offset:end]``; returns ``(frames, next_offset)``.

    Lets the packet decoder parse frames in place instead of copying the
    payload out and wrapping it in a second reader.  The varint reads are
    inlined: at roughly ten varints per packet, per-read method dispatch
    would otherwise dominate the decode cost.
    """
    frames: list[Frame] = []
    from_bytes = int.from_bytes
    mask = _VALUE_MASK

    def read_varint() -> int:
        nonlocal offset
        if offset >= end:
            raise VarintError("truncated varint: no bytes available")
        first = view[offset]
        prefix = first >> 6
        if prefix == 0:
            offset += 1
            return first
        stop = offset + (1 << prefix)
        if stop > end:
            raise VarintError(f"truncated varint: need {1 << prefix} bytes")
        value = from_bytes(view[offset:stop], "big") & mask[prefix]
        offset = stop
        return value

    def read_length_prefixed() -> bytes:
        nonlocal offset
        length = read_varint()
        stop = offset + length
        if stop > end:
            raise VarintError(f"truncated data: need {length} bytes")
        chunk = view[offset:stop]
        offset = stop
        return chunk if type(chunk) is bytes else bytes(chunk)

    try:
        while offset < end:
            frame_type = read_varint()
            if frame_type == _STREAM:
                stream_id = read_varint()
                stream_offset = read_varint()
                fin = read_varint() == 1
                data = read_length_prefixed()
                frames.append(
                    StreamFrame(stream_id=stream_id, offset=stream_offset, data=data, fin=fin)
                )
            elif frame_type == _ACK:
                largest = read_varint()
                delay = read_varint()
                frames.append(AckFrame(largest=largest, delay_us=delay))
            elif frame_type == _ACK_RANGES:
                largest = read_varint()
                delay = read_varint()
                count = read_varint()
                anchor = largest
                descending = []
                for _ in range(count):
                    range_end = anchor - read_varint()
                    range_start = range_end - read_varint()
                    descending.append((range_start, range_end))
                    anchor = range_start
                frames.append(
                    AckRangesFrame(
                        largest=largest,
                        delay_us=delay,
                        ranges=tuple(reversed(descending)),
                    )
                )
            elif frame_type == _PADDING:
                # A run of padding: swallow consecutive zero bytes.
                length = 1
                while offset < end and view[offset] == 0:
                    offset += 1
                    length += 1
                frames.append(PaddingFrame(length))
            elif frame_type == _PING:
                frames.append(PingFrame())
            elif frame_type == _CRYPTO:
                frames.append(CryptoFrame(read_length_prefixed()))
            elif frame_type == _DATAGRAM:
                frames.append(DatagramFrame(read_length_prefixed()))
            elif frame_type == _CONNECTION_CLOSE:
                code = read_varint()
                reason = read_length_prefixed().decode("utf-8")
                frames.append(ConnectionCloseFrame(error_code=code, reason=reason))
            elif frame_type == _HANDSHAKE_DONE:
                frames.append(HandshakeDoneFrame())
            else:
                raise ValueError(f"unknown frame type: {frame_type:#x}")
    except IndexError:
        raise VarintError("truncated varint: no bytes available") from None
    return frames, offset
