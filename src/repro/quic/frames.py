"""QUIC frames with a byte-exact wire codec.

Only the frames the simulated stack needs are implemented: PADDING, PING,
ACK, CRYPTO, NEW_TOKEN-style session tickets are folded into CRYPTO payloads,
STREAM (with offset/length/fin), MAX_DATA-style flow control is omitted (the
simulation does not model flow-control blocking), DATAGRAM (RFC 9221),
CONNECTION_CLOSE and HANDSHAKE_DONE.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.quic.varint import VarintReader, VarintWriter


class FrameType(enum.IntEnum):
    """Wire identifiers of the implemented frames."""

    PADDING = 0x00
    PING = 0x01
    ACK = 0x02
    CRYPTO = 0x06
    STREAM = 0x08  # with offset, length and fin bits encoded separately
    CONNECTION_CLOSE = 0x1C
    HANDSHAKE_DONE = 0x1E
    DATAGRAM = 0x30


@dataclass(frozen=True)
class Frame:
    """Base class for all frames."""

    def encode(self) -> bytes:
        """Serialise the frame including its type byte."""
        raise NotImplementedError


@dataclass(frozen=True)
class PaddingFrame(Frame):
    """PADDING: a run of zero bytes used to grow Initial packets."""

    length: int = 1

    def encode(self) -> bytes:
        return bytes(self.length)


@dataclass(frozen=True)
class PingFrame(Frame):
    """PING: elicits an acknowledgement; used for liveness checks (§5.1)."""

    def encode(self) -> bytes:
        return bytes([FrameType.PING])


@dataclass(frozen=True)
class AckFrame(Frame):
    """ACK: acknowledges every packet number up to and including ``largest``."""

    largest: int
    delay_us: int = 0

    def encode(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(FrameType.ACK)
        writer.write_varint(self.largest)
        writer.write_varint(self.delay_us)
        return writer.getvalue()


@dataclass(frozen=True)
class CryptoFrame(Frame):
    """CRYPTO: carries the simulated TLS handshake messages."""

    data: bytes

    def encode(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(FrameType.CRYPTO)
        writer.write_length_prefixed(self.data)
        return writer.getvalue()


@dataclass(frozen=True)
class StreamFrame(Frame):
    """STREAM: ordered application data on a stream."""

    stream_id: int
    offset: int
    data: bytes
    fin: bool = False

    def encode(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(FrameType.STREAM)
        writer.write_varint(self.stream_id)
        writer.write_varint(self.offset)
        writer.write_varint(1 if self.fin else 0)
        writer.write_length_prefixed(self.data)
        return writer.getvalue()


@dataclass(frozen=True)
class DatagramFrame(Frame):
    """DATAGRAM (RFC 9221): unreliable application data."""

    data: bytes

    def encode(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(FrameType.DATAGRAM)
        writer.write_length_prefixed(self.data)
        return writer.getvalue()


@dataclass(frozen=True)
class ConnectionCloseFrame(Frame):
    """CONNECTION_CLOSE: terminates the connection."""

    error_code: int
    reason: str = ""

    def encode(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(FrameType.CONNECTION_CLOSE)
        writer.write_varint(self.error_code)
        writer.write_length_prefixed(self.reason.encode("utf-8"))
        return writer.getvalue()


@dataclass(frozen=True)
class HandshakeDoneFrame(Frame):
    """HANDSHAKE_DONE: server's confirmation that the handshake completed."""

    def encode(self) -> bytes:
        return bytes([FrameType.HANDSHAKE_DONE])


def encode_frames(frames: list[Frame]) -> bytes:
    """Concatenate the encodings of several frames."""
    return b"".join(frame.encode() for frame in frames)


def decode_frames(payload: bytes) -> list[Frame]:
    """Parse a packet payload into frames."""
    frames: list[Frame] = []
    reader = VarintReader(payload)
    while not reader.at_end():
        frame_type = reader.read_varint()
        if frame_type == FrameType.PADDING:
            # A run of padding: swallow consecutive zero bytes.
            length = 1
            while not reader.at_end() and payload[reader.offset] == 0:
                reader.read_uint8()
                length += 1
            frames.append(PaddingFrame(length))
        elif frame_type == FrameType.PING:
            frames.append(PingFrame())
        elif frame_type == FrameType.ACK:
            largest = reader.read_varint()
            delay = reader.read_varint()
            frames.append(AckFrame(largest=largest, delay_us=delay))
        elif frame_type == FrameType.CRYPTO:
            frames.append(CryptoFrame(reader.read_length_prefixed()))
        elif frame_type == FrameType.STREAM:
            stream_id = reader.read_varint()
            offset = reader.read_varint()
            fin = reader.read_varint() == 1
            data = reader.read_length_prefixed()
            frames.append(StreamFrame(stream_id=stream_id, offset=offset, data=data, fin=fin))
        elif frame_type == FrameType.DATAGRAM:
            frames.append(DatagramFrame(reader.read_length_prefixed()))
        elif frame_type == FrameType.CONNECTION_CLOSE:
            code = reader.read_varint()
            reason = reader.read_length_prefixed().decode("utf-8")
            frames.append(ConnectionCloseFrame(error_code=code, reason=reason))
        elif frame_type == FrameType.HANDSHAKE_DONE:
            frames.append(HandshakeDoneFrame())
        else:
            raise ValueError(f"unknown frame type: {frame_type:#x}")
    return frames
