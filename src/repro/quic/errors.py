"""QUIC error types and transport error codes (RFC 9000, section 20)."""

from __future__ import annotations

import enum


class TransportErrorCode(enum.IntEnum):
    """A subset of the QUIC transport error codes."""

    NO_ERROR = 0x0
    INTERNAL_ERROR = 0x1
    CONNECTION_REFUSED = 0x2
    FLOW_CONTROL_ERROR = 0x3
    STREAM_LIMIT_ERROR = 0x4
    STREAM_STATE_ERROR = 0x5
    FRAME_ENCODING_ERROR = 0x7
    PROTOCOL_VIOLATION = 0xA
    APPLICATION_ERROR = 0x100


class QuicError(Exception):
    """Base class for QUIC errors."""


class QuicConnectionError(QuicError):
    """A connection-fatal error, carrying a transport error code."""

    def __init__(self, code: TransportErrorCode, reason: str = "") -> None:
        super().__init__(f"{code.name}: {reason}" if reason else code.name)
        self.code = code
        self.reason = reason


class StreamError(QuicError):
    """Raised for invalid per-stream operations."""


class HandshakeError(QuicError):
    """Raised when the simulated TLS handshake fails."""
