"""Pluggable congestion control for :class:`~repro.quic.connection.QuicConnection`.

Two controllers ship:

* :class:`NullCongestionController` — the default.  Never blocks a send,
  keeps no state, costs nothing on the hot path; every frozen seeded
  experiment output is bit-identical with it installed (it *is* the
  pre-congestion-control behaviour).  A process-wide singleton
  (:data:`NULL_CONGESTION`) is shared by every connection that does not
  configure a controller.
* :class:`NewRenoCongestionController` — a NewReno-style loss-based
  controller in the shape of RFC 9002 §7: slow start doubles cwnd per RTT
  (cwnd grows by the acked bytes), congestion avoidance adds roughly one
  MSS per cwnd of acked data, and a loss event halves cwnd into a recovery
  epoch.  Packets lost inside the current recovery epoch do not trigger a
  second reduction (NewReno's single-reduction-per-round rule, keyed on
  packet numbers: only a loss *above* the epoch's largest-sent packet
  starts a new reduction).

The controller interface is deliberately small — four packet-lifecycle
hooks plus :meth:`CongestionController.can_send` — and is driven entirely
from the connection's existing send/ACK/PTO paths, so alternative
controllers (CUBIC, BBR-lite) drop in without touching the connection.

Determinism: controllers are pure functions of the packet-event sequence;
they draw no randomness and read no wall clock, so a seeded run with a
given controller is exactly reproducible.
"""

from __future__ import annotations

__all__ = [
    "CongestionController",
    "NullCongestionController",
    "NewRenoCongestionController",
    "NULL_CONGESTION",
    "DEFAULT_MSS",
    "INITIAL_WINDOW_PACKETS",
    "MINIMUM_WINDOW_PACKETS",
    "LOSS_REDUCTION_FACTOR",
]

#: Assumed maximum segment size in bytes.  The simulator's QUIC packets are
#: not MTU-fragmented, so this is a unit for window arithmetic rather than a
#: hard packet-size cap; 1280 matches QUIC's minimum datagram size
#: (RFC 9000 §14) and msquic's default.
DEFAULT_MSS = 1280

#: Initial congestion window, in MSS units (RFC 9002 §7.2 recommends 10).
INITIAL_WINDOW_PACKETS = 10

#: Floor for the congestion window after repeated reductions (RFC 9002 §7.2).
MINIMUM_WINDOW_PACKETS = 2

#: Multiplicative decrease applied on a loss event (RFC 9002 §7.3.2).
LOSS_REDUCTION_FACTOR = 0.5


class CongestionController:
    """Interface driven by :class:`~repro.quic.connection.QuicConnection`.

    Hook call contract (all sizes in wire bytes of the UDP payload):

    * :meth:`on_packet_sent` — once per ack-eliciting packet, at transmit;
    * :meth:`on_packets_acked` — once per ACK frame that newly acknowledges
      ack-eliciting packets, with ``(packet_number, size)`` pairs in
      ascending packet-number order;
    * :meth:`on_packets_lost` — once per loss event (PTO fire), with the
      pairs declared lost, ascending;
    * :meth:`on_packets_discarded` — for packets removed from the in-flight
      ledger without being acked or counting as a congestion signal
      (0-RTT packets re-queued after rejection);
    * :meth:`can_send` — consulted before sending a *new* ack-eliciting
      packet of ``size`` bytes; retransmissions bypass it (a PTO probe must
      be able to leave even with the window full, RFC 9002 §7.5).
    """

    __slots__ = ()

    #: Class-level fast-path flag: connections skip every hook call when the
    #: installed controller declares itself inert.  Real controllers leave
    #: this True.
    active = True

    def on_packet_sent(self, packet_number: int, size: int) -> None:
        raise NotImplementedError

    def on_packets_acked(self, packets: list[tuple[int, int]]) -> None:
        raise NotImplementedError

    def on_packets_lost(self, packets: list[tuple[int, int]]) -> None:
        raise NotImplementedError

    def on_packets_discarded(self, packets: list[tuple[int, int]]) -> None:
        raise NotImplementedError

    def can_send(self, size: int) -> bool:
        raise NotImplementedError

    # ---------------------------------------------------------------- stats
    @property
    def congestion_window(self) -> int:
        """Current congestion window in bytes (telemetry gauge)."""
        raise NotImplementedError

    @property
    def bytes_in_flight(self) -> int:
        """Ack-eliciting bytes sent but not yet acked/lost (telemetry gauge)."""
        raise NotImplementedError

    @property
    def congestion_events(self) -> int:
        """Number of window reductions taken (monotonic counter)."""
        raise NotImplementedError


class NullCongestionController(CongestionController):
    """No congestion control: never blocks, tracks nothing.

    This is the default and the bit-identity baseline — with it installed
    the connection's behaviour (and therefore every frozen seeded
    experiment output) is exactly the pre-controller behaviour.  The
    connection checks :attr:`active` once and skips the hook calls
    entirely, so the steady-state fan-out path does not even pay the
    method dispatch.
    """

    __slots__ = ()

    active = False

    def on_packet_sent(self, packet_number: int, size: int) -> None:
        pass

    def on_packets_acked(self, packets: list[tuple[int, int]]) -> None:
        pass

    def on_packets_lost(self, packets: list[tuple[int, int]]) -> None:
        pass

    def on_packets_discarded(self, packets: list[tuple[int, int]]) -> None:
        pass

    def can_send(self, size: int) -> bool:
        return True

    @property
    def congestion_window(self) -> int:
        return 0

    @property
    def bytes_in_flight(self) -> int:
        return 0

    @property
    def congestion_events(self) -> int:
        return 0


#: Shared stateless instance installed by default on every connection.
NULL_CONGESTION = NullCongestionController()


class NewRenoCongestionController(CongestionController):
    """NewReno-style loss-based congestion control (RFC 9002 §7 shape).

    State machine:

    * **slow start** (``cwnd < ssthresh``, initially always): every newly
      acked byte grows cwnd by one byte — doubling per RTT;
    * **congestion avoidance**: each acked packet grows cwnd by
      ``mss * size // cwnd`` — roughly one MSS per cwnd of acked data;
    * **recovery**: a loss event sets ``ssthresh = cwnd / 2`` (floored at
      the minimum window), collapses cwnd to ssthresh and opens a recovery
      epoch covering every packet number sent so far.  Losses of packets
      inside the epoch are *not* new congestion signals — only a lost
      packet sent after the epoch opened triggers the next reduction.

    There is no explicit RTT input: the connection's PTO machinery decides
    *when* packets are lost; this controller only decides how the window
    reacts.
    """

    __slots__ = (
        "_mss",
        "_cwnd",
        "_ssthresh",
        "_minimum_window",
        "_bytes_in_flight",
        "_recovery_until",
        "_largest_sent",
        "_congestion_events",
    )

    def __init__(
        self,
        mss: int = DEFAULT_MSS,
        initial_window_packets: int = INITIAL_WINDOW_PACKETS,
        minimum_window_packets: int = MINIMUM_WINDOW_PACKETS,
    ) -> None:
        if mss <= 0:
            raise ValueError(f"mss must be positive: {mss}")
        if initial_window_packets < minimum_window_packets:
            raise ValueError(
                "initial window smaller than minimum window: "
                f"{initial_window_packets} < {minimum_window_packets}"
            )
        self._mss = mss
        self._cwnd = mss * initial_window_packets
        self._ssthresh = float("inf")
        self._minimum_window = mss * minimum_window_packets
        self._bytes_in_flight = 0
        # Packet numbers <= _recovery_until were sent before (or during) the
        # current recovery epoch; their loss is attributed to the reduction
        # already taken.  -1 means no epoch yet.
        self._recovery_until = -1
        self._largest_sent = -1
        self._congestion_events = 0

    # ------------------------------------------------------------- lifecycle
    def on_packet_sent(self, packet_number: int, size: int) -> None:
        self._bytes_in_flight += size
        if packet_number > self._largest_sent:
            self._largest_sent = packet_number

    def on_packets_acked(self, packets: list[tuple[int, int]]) -> None:
        for packet_number, size in packets:
            self._bytes_in_flight -= size
            if packet_number <= self._recovery_until:
                # Acked packets from before the reduction do not grow the
                # collapsed window (RFC 9002 §7.3.2: recovery ends when a
                # post-epoch packet is acked; growth resumes with those).
                continue
            if self._cwnd < self._ssthresh:
                self._cwnd += size
            else:
                self._cwnd += self._mss * size // self._cwnd
        if self._bytes_in_flight < 0:
            self._bytes_in_flight = 0

    def on_packets_lost(self, packets: list[tuple[int, int]]) -> None:
        largest_lost = -1
        for packet_number, size in packets:
            self._bytes_in_flight -= size
            if packet_number > largest_lost:
                largest_lost = packet_number
        if self._bytes_in_flight < 0:
            self._bytes_in_flight = 0
        if largest_lost > self._recovery_until:
            # New congestion signal: multiplicative decrease, one reduction
            # per round — everything sent up to now joins this epoch.
            self._congestion_events += 1
            reduced = int(self._cwnd * LOSS_REDUCTION_FACTOR)
            self._ssthresh = max(reduced, self._minimum_window)
            self._cwnd = self._ssthresh
            self._recovery_until = self._largest_sent

    def on_packets_discarded(self, packets: list[tuple[int, int]]) -> None:
        for _packet_number, size in packets:
            self._bytes_in_flight -= size
        if self._bytes_in_flight < 0:
            self._bytes_in_flight = 0

    def can_send(self, size: int) -> bool:
        return self._bytes_in_flight + size <= self._cwnd

    # ---------------------------------------------------------------- stats
    @property
    def congestion_window(self) -> int:
        return self._cwnd

    @property
    def bytes_in_flight(self) -> int:
        return self._bytes_in_flight

    @property
    def congestion_events(self) -> int:
        return self._congestion_events

    @property
    def ssthresh(self) -> float:
        """Slow-start threshold in bytes (``inf`` until the first loss)."""
        return self._ssthresh

    @property
    def in_slow_start(self) -> bool:
        """Whether the controller is still in slow start."""
        return self._cwnd < self._ssthresh
