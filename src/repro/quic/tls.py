"""A simulated TLS 1.3 handshake with session tickets.

Real cryptography is irrelevant to the paper's arguments, but the *timing
structure* of the TLS handshake is central to them: a full handshake costs
one round trip before application data can be sent, while a resumed handshake
with a previously obtained session ticket allows 0-RTT application data in
the very first flight.

The classes here model exactly that: the client builds a ``ClientHello``
(optionally with an ``early_data`` indication when it holds a ticket), the
server answers with a ``ServerHello`` that includes a fresh session ticket,
and both sides derive a "handshake confirmed" state.  ALPN negotiation is
included because the paper points out that future MoQT versions will move
version negotiation into ALPN (§5.2, third optimisation).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class AlpnMismatchError(Exception):
    """Raised when client and server share no application protocol."""


@dataclass(frozen=True)
class SessionTicket:
    """A resumption ticket issued by a server.

    Attributes
    ----------
    server_name:
        The peer the ticket is valid for.
    alpn:
        The application protocol negotiated when the ticket was issued;
        0-RTT data may only be sent for the same protocol.
    issued_at:
        Virtual time of issuance.
    lifetime:
        Validity period in seconds (tickets expire like real NewSessionTicket
        lifetimes do).
    ticket_id:
        Opaque identifier, unique per issuing server.
    """

    server_name: str
    alpn: str
    issued_at: float
    lifetime: float = 7 * 24 * 3600.0
    ticket_id: int = 0

    def is_valid(self, now: float) -> bool:
        """Whether the ticket can still be used at virtual time ``now``."""
        return now < self.issued_at + self.lifetime


class SessionTicketStore:
    """Client-side store of session tickets, keyed by server name."""

    def __init__(self) -> None:
        self._tickets: dict[str, SessionTicket] = {}

    def put(self, ticket: SessionTicket) -> None:
        """Store (or replace) the ticket for the ticket's server."""
        self._tickets[ticket.server_name] = ticket

    def get(self, server_name: str, now: float) -> SessionTicket | None:
        """A valid ticket for ``server_name``, or ``None``."""
        ticket = self._tickets.get(server_name)
        if ticket is None:
            return None
        if not ticket.is_valid(now):
            del self._tickets[server_name]
            return None
        return ticket

    def remove(self, server_name: str) -> None:
        """Forget the ticket for a server (e.g. after a rejected 0-RTT)."""
        self._tickets.pop(server_name, None)

    def __len__(self) -> int:
        return len(self._tickets)


@dataclass
class ClientHello:
    """The client's first handshake message."""

    server_name: str
    alpn_protocols: tuple[str, ...]
    session_ticket: SessionTicket | None = None
    offers_early_data: bool = False

    def to_bytes(self) -> bytes:
        """A compact serialisation used inside CRYPTO frames."""
        ticket = self.session_ticket.ticket_id if self.session_ticket else 0
        alpn = ",".join(self.alpn_protocols)
        early = 1 if self.offers_early_data else 0
        return f"CH|{self.server_name}|{alpn}|{ticket}|{early}".encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "ClientHello":
        """Parse the compact serialisation."""
        kind, server_name, alpn, ticket, early = data.decode("utf-8").split("|")
        if kind != "CH":
            raise ValueError("not a ClientHello")
        ticket_id = int(ticket)
        session_ticket = None
        if ticket_id:
            # The receiving server only needs to know a ticket was presented.
            session_ticket = SessionTicket(
                server_name=server_name, alpn="", issued_at=0.0, ticket_id=ticket_id
            )
        return cls(
            server_name=server_name,
            alpn_protocols=tuple(alpn.split(",")) if alpn else (),
            session_ticket=session_ticket,
            offers_early_data=early == "1",
        )


@dataclass
class ServerHello:
    """The server's handshake response."""

    alpn: str
    accepts_early_data: bool
    new_ticket_id: int

    def to_bytes(self) -> bytes:
        """A compact serialisation used inside CRYPTO frames."""
        early = 1 if self.accepts_early_data else 0
        return f"SH|{self.alpn}|{early}|{self.new_ticket_id}".encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "ServerHello":
        """Parse the compact serialisation."""
        kind, alpn, early, ticket = data.decode("utf-8").split("|")
        if kind != "SH":
            raise ValueError("not a ServerHello")
        return cls(alpn=alpn, accepts_early_data=early == "1", new_ticket_id=int(ticket))


@dataclass
class ServerTlsContext:
    """Server-side handshake policy: supported ALPNs and 0-RTT acceptance."""

    alpn_protocols: tuple[str, ...]
    accept_early_data: bool = True
    _next_ticket_id: int = field(default=1, repr=False)
    #: Ticket ids reserved for the next arrivals (FIFO), ahead of the
    #: counter.  Aggregate-leaf attach uses this to hand each materialised
    #: connection the exact ticket id the dense run would have issued it,
    #: while the counter jumps past the counted population so later
    #: reconnects also stay dense-identical.  Empty in normal operation.
    _queued_ticket_ids: list[int] = field(default_factory=list, repr=False)

    @property
    def next_ticket_id(self) -> int:
        """The id the counter would issue next (ignoring any queued ids)."""
        return self._next_ticket_id

    def queue_ticket_ids(self, ticket_ids: list[int], resume_at: int) -> None:
        """Reserve explicit ids for upcoming handshakes, then resume at
        ``resume_at``.  The queued ids are consumed in order before the
        counter is touched again."""
        self._queued_ticket_ids.extend(ticket_ids)
        self._next_ticket_id = resume_at

    def process_client_hello(self, hello: ClientHello) -> ServerHello:
        """Negotiate ALPN and decide whether to accept early data."""
        selected = None
        for candidate in hello.alpn_protocols:
            if candidate in self.alpn_protocols:
                selected = candidate
                break
        if selected is None:
            raise AlpnMismatchError(
                f"no common ALPN: client={hello.alpn_protocols} server={self.alpn_protocols}"
            )
        accepts = bool(
            self.accept_early_data and hello.offers_early_data and hello.session_ticket
        )
        if self._queued_ticket_ids:
            ticket_id = self._queued_ticket_ids.pop(0)
        else:
            ticket_id = self._next_ticket_id
            self._next_ticket_id += 1
        return ServerHello(alpn=selected, accepts_early_data=accepts, new_ticket_id=ticket_id)
