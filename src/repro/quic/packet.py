"""QUIC packets.

The simulated stack distinguishes the packet types that matter for handshake
timing — INITIAL, HANDSHAKE, ZERO_RTT and ONE_RTT — and encodes each packet
as a small header (type, connection ID, packet number) followed by its
frames.  One simulated UDP datagram carries exactly one packet; coalescing is
not modelled because it does not change round-trip counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.quic.frames import (
    AckFrame,
    AckRangesFrame,
    Frame,
    PaddingFrame,
    decode_frames_range,
    encode_frames_into,
)
from repro.quic.varint import VarintError, append_varint, _VALUE_MASK


class PacketType(enum.IntEnum):
    """Packet number spaces / encryption levels relevant to timing."""

    INITIAL = 0
    HANDSHAKE = 1
    ZERO_RTT = 2
    ONE_RTT = 3


_PACKET_TYPE_BY_VALUE = {member.value: member for member in PacketType}


@dataclass(slots=True)
class Packet:
    """A QUIC packet: type, connection id, packet number and frames."""

    packet_type: PacketType
    connection_id: int
    packet_number: int
    frames: tuple[Frame, ...] = field(default_factory=tuple)

    def encode_into(self, buffer: bytearray) -> None:
        """Serialise the packet into ``buffer`` (a pooled send buffer on the
        hot path).

        Header and frames share the output buffer; the frame payload is
        batched separately only because its varint length prefixes it.
        """
        payload = bytearray()
        encode_frames_into(payload, self.frames)
        buffer.append(int(self.packet_type))
        append_varint(buffer, self.connection_id)
        append_varint(buffer, self.packet_number)
        append_varint(buffer, len(payload))
        buffer += payload

    def encode(self) -> bytes:
        """Serialise the packet."""
        buffer = bytearray()
        self.encode_into(buffer)
        return bytes(buffer)

    @classmethod
    def decode(cls, data: bytes) -> "Packet":
        """Parse a packet from bytes.

        Header varints are parsed inline (this runs once per simulated
        datagram); the frames are parsed in place by
        :func:`~repro.quic.frames.decode_frames_range` without copying the
        payload out.
        """
        length = len(data)
        if length == 0:
            raise VarintError("truncated packet: empty datagram")
        packet_type = _PACKET_TYPE_BY_VALUE[data[0]]
        offset = 1
        from_bytes = int.from_bytes
        mask = _VALUE_MASK
        try:
            # Three header varints, unrolled: connection id, packet number,
            # payload length.
            first = data[offset]
            prefix = first >> 6
            if prefix == 0:
                connection_id = first
                offset += 1
            else:
                stop = offset + (1 << prefix)
                if stop > length:
                    raise VarintError("truncated packet header")
                connection_id = from_bytes(data[offset:stop], "big") & mask[prefix]
                offset = stop
            first = data[offset]
            prefix = first >> 6
            if prefix == 0:
                packet_number = first
                offset += 1
            else:
                stop = offset + (1 << prefix)
                if stop > length:
                    raise VarintError("truncated packet header")
                packet_number = from_bytes(data[offset:stop], "big") & mask[prefix]
                offset = stop
            first = data[offset]
            prefix = first >> 6
            if prefix == 0:
                payload_length = first
                offset += 1
            else:
                stop = offset + (1 << prefix)
                if stop > length:
                    raise VarintError("truncated packet header")
                payload_length = from_bytes(data[offset:stop], "big") & mask[prefix]
                offset = stop
        except IndexError:
            raise VarintError("truncated packet header") from None
        end = offset + payload_length
        if end > length:
            raise VarintError(f"truncated packet payload: need {payload_length} bytes")
        frames, _ = decode_frames_range(data, offset, end)
        return cls(
            packet_type=packet_type,
            connection_id=connection_id,
            packet_number=packet_number,
            frames=tuple(frames),
        )

    @property
    def is_ack_eliciting(self) -> bool:
        """Whether the peer must acknowledge this packet."""
        for frame in self.frames:
            if not isinstance(frame, (AckFrame, AckRangesFrame, PaddingFrame)):
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(frame).__name__ for frame in self.frames)
        return (
            f"Packet({self.packet_type.name} cid={self.connection_id} "
            f"pn={self.packet_number} [{kinds}])"
        )
