"""QUIC packets.

The simulated stack distinguishes the packet types that matter for handshake
timing — INITIAL, HANDSHAKE, ZERO_RTT and ONE_RTT — and encodes each packet
as a small header (type, connection ID, packet number) followed by its
frames.  One simulated UDP datagram carries exactly one packet; coalescing is
not modelled because it does not change round-trip counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.quic.frames import Frame, decode_frames, encode_frames
from repro.quic.varint import VarintReader, VarintWriter


class PacketType(enum.IntEnum):
    """Packet number spaces / encryption levels relevant to timing."""

    INITIAL = 0
    HANDSHAKE = 1
    ZERO_RTT = 2
    ONE_RTT = 3


@dataclass(frozen=True)
class Packet:
    """A QUIC packet: type, connection id, packet number and frames."""

    packet_type: PacketType
    connection_id: int
    packet_number: int
    frames: tuple[Frame, ...] = field(default_factory=tuple)

    def encode(self) -> bytes:
        """Serialise the packet."""
        writer = VarintWriter()
        writer.write_uint8(int(self.packet_type))
        writer.write_varint(self.connection_id)
        writer.write_varint(self.packet_number)
        writer.write_length_prefixed(encode_frames(list(self.frames)))
        return writer.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "Packet":
        """Parse a packet from bytes."""
        reader = VarintReader(data)
        packet_type = PacketType(reader.read_uint8())
        connection_id = reader.read_varint()
        packet_number = reader.read_varint()
        payload = reader.read_length_prefixed()
        return cls(
            packet_type=packet_type,
            connection_id=connection_id,
            packet_number=packet_number,
            frames=tuple(decode_frames(payload)),
        )

    @property
    def is_ack_eliciting(self) -> bool:
        """Whether the peer must acknowledge this packet."""
        from repro.quic.frames import AckFrame, PaddingFrame

        return any(
            not isinstance(frame, (AckFrame, PaddingFrame)) for frame in self.frames
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(frame).__name__ for frame in self.frames)
        return (
            f"Packet({self.packet_type.name} cid={self.connection_id} "
            f"pn={self.packet_number} [{kinds}])"
        )
