"""Simulated QUIC transport.

This package implements the subset of QUIC (RFC 9000/9221) that the paper's
latency and pub/sub arguments depend on, running over the discrete-event
simulator:

* variable-length integer encoding (:mod:`repro.quic.varint`), shared with the
  MoQT codec;
* frames and packets with a byte-exact wire format
  (:mod:`repro.quic.frames`, :mod:`repro.quic.packet`);
* a TLS-like handshake with session tickets enabling 0-RTT resumption
  (:mod:`repro.quic.tls`);
* ordered, reliable bidirectional and unidirectional streams plus unreliable
  DATAGRAM frames (:mod:`repro.quic.stream`);
* the connection state machine with handshake round trips, loss recovery,
  ACKs and idle timeouts (:mod:`repro.quic.connection`);
* endpoints that bind to simulated hosts and multiplex connections
  (:mod:`repro.quic.endpoint`).

The timing model reproduces what matters for the paper: a fresh connection
costs one round trip before application data can flow, a 0-RTT resumption
lets the first flight carry application data, and an established connection
adds no extra round trips.
"""

from repro.quic.varint import encode_varint, decode_varint, varint_size
from repro.quic.connection import ConnectionConfig, QuicConnection, QuicConnectionError
from repro.quic.endpoint import QuicEndpoint
from repro.quic.stream import QuicStream, StreamDirection
from repro.quic.tls import SessionTicket, SessionTicketStore

__all__ = [
    "encode_varint",
    "decode_varint",
    "varint_size",
    "ConnectionConfig",
    "QuicConnection",
    "QuicConnectionError",
    "QuicEndpoint",
    "QuicStream",
    "StreamDirection",
    "SessionTicket",
    "SessionTicketStore",
]
