"""QUIC variable-length integers (RFC 9000, section 16).

Varints encode unsigned integers up to 2^62 - 1 in 1, 2, 4 or 8 bytes; the
two most significant bits of the first byte give the length.  The same
encoding is used throughout MoQT, so the MoQT codec imports these helpers.
"""

from __future__ import annotations

MAX_VARINT = (1 << 62) - 1

_ONE_BYTE_MAX = 63
_TWO_BYTE_MAX = 16383
_FOUR_BYTE_MAX = 1073741823


class VarintError(ValueError):
    """Raised for out-of-range values or truncated encodings."""


def varint_size(value: int) -> int:
    """The number of bytes :func:`encode_varint` will use for ``value``."""
    if value < 0 or value > MAX_VARINT:
        raise VarintError(f"value out of varint range: {value}")
    if value <= _ONE_BYTE_MAX:
        return 1
    if value <= _TWO_BYTE_MAX:
        return 2
    if value <= _FOUR_BYTE_MAX:
        return 4
    return 8


def encode_varint(value: int) -> bytes:
    """Encode ``value`` as a QUIC varint."""
    size = varint_size(value)
    if size == 1:
        return bytes([value])
    if size == 2:
        return bytes([0x40 | (value >> 8), value & 0xFF])
    if size == 4:
        return bytes(
            [
                0x80 | (value >> 24),
                (value >> 16) & 0xFF,
                (value >> 8) & 0xFF,
                value & 0xFF,
            ]
        )
    return bytes(
        [
            0xC0 | (value >> 56),
            (value >> 48) & 0xFF,
            (value >> 40) & 0xFF,
            (value >> 32) & 0xFF,
            (value >> 24) & 0xFF,
            (value >> 16) & 0xFF,
            (value >> 8) & 0xFF,
            value & 0xFF,
        ]
    )


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint starting at ``offset``.

    Returns ``(value, next_offset)``.
    """
    if offset >= len(data):
        raise VarintError("truncated varint: no bytes available")
    first = data[offset]
    prefix = first >> 6
    length = 1 << prefix
    if offset + length > len(data):
        raise VarintError(f"truncated varint: need {length} bytes")
    value = first & 0x3F
    for index in range(1, length):
        value = (value << 8) | data[offset + index]
    return value, offset + length


class VarintReader:
    """A cursor over a byte string that reads varints and length-prefixed data.

    Both the QUIC packet parser and the MoQT message codec are written in
    terms of this reader, which keeps the parsing code flat and explicit.
    """

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._offset = offset

    @property
    def offset(self) -> int:
        """Current cursor position."""
        return self._offset

    @property
    def remaining(self) -> int:
        """Number of unread bytes."""
        return len(self._data) - self._offset

    def at_end(self) -> bool:
        """Whether the cursor is at the end of the data."""
        return self._offset >= len(self._data)

    def read_varint(self) -> int:
        """Read one varint."""
        value, self._offset = decode_varint(self._data, self._offset)
        return value

    def read_bytes(self, count: int) -> bytes:
        """Read exactly ``count`` raw bytes."""
        if self._offset + count > len(self._data):
            raise VarintError(f"truncated data: need {count} bytes, have {self.remaining}")
        chunk = self._data[self._offset: self._offset + count]
        self._offset += count
        return chunk

    def read_uint8(self) -> int:
        """Read a single byte as an unsigned integer."""
        return self.read_bytes(1)[0]

    def read_uint16(self) -> int:
        """Read a two-byte big-endian unsigned integer."""
        chunk = self.read_bytes(2)
        return (chunk[0] << 8) | chunk[1]

    def read_length_prefixed(self) -> bytes:
        """Read a varint length followed by that many bytes."""
        length = self.read_varint()
        return self.read_bytes(length)

    def read_remaining(self) -> bytes:
        """Read everything left."""
        chunk = self._data[self._offset:]
        self._offset = len(self._data)
        return chunk


class VarintWriter:
    """Builds byte strings out of varints and length-prefixed chunks."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def write_varint(self, value: int) -> "VarintWriter":
        """Append one varint."""
        self._buffer += encode_varint(value)
        return self

    def write_bytes(self, data: bytes) -> "VarintWriter":
        """Append raw bytes."""
        self._buffer += data
        return self

    def write_uint8(self, value: int) -> "VarintWriter":
        """Append a single byte."""
        if not 0 <= value <= 0xFF:
            raise VarintError(f"uint8 out of range: {value}")
        self._buffer.append(value)
        return self

    def write_uint16(self, value: int) -> "VarintWriter":
        """Append a two-byte big-endian unsigned integer."""
        if not 0 <= value <= 0xFFFF:
            raise VarintError(f"uint16 out of range: {value}")
        self._buffer += bytes([(value >> 8) & 0xFF, value & 0xFF])
        return self

    def write_length_prefixed(self, data: bytes) -> "VarintWriter":
        """Append a varint length followed by the data."""
        self.write_varint(len(data))
        self._buffer += data
        return self

    def getvalue(self) -> bytes:
        """The accumulated bytes."""
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)
