"""QUIC variable-length integers (RFC 9000, section 16).

Varints encode unsigned integers up to 2^62 - 1 in 1, 2, 4 or 8 bytes; the
two most significant bits of the first byte give the length.  The same
encoding is used throughout MoQT, so the MoQT codec imports these helpers.

This module sits under every packet, frame and control message the simulator
moves, so the codec is written for speed: one-byte encodings come from a
precomputed table, multi-byte encodings ride ``int.to_bytes`` /
``int.from_bytes`` (single C calls instead of per-byte Python arithmetic),
and :class:`VarintReader` parses over a :class:`memoryview` so cursors over
large buffers never copy the underlying data to read a varint.
"""

from __future__ import annotations

MAX_VARINT = (1 << 62) - 1

_ONE_BYTE_MAX = 63
_TWO_BYTE_MAX = 16383
_FOUR_BYTE_MAX = 1073741823

#: All 64 one-byte encodings, precomputed — the overwhelmingly common case
#: (frame types, stream IDs, message types, small lengths).
_ONE_BYTE = tuple(bytes((value,)) for value in range(64))

#: Value masks indexed by the two-bit length prefix (1, 2, 4, 8 bytes).
_VALUE_MASK = (0x3F, 0x3FFF, 0x3FFFFFFF, 0x3FFFFFFFFFFFFFFF)


class VarintError(ValueError):
    """Raised for out-of-range values or truncated encodings."""


def varint_size(value: int) -> int:
    """The number of bytes :func:`encode_varint` will use for ``value``."""
    if value < 0 or value > MAX_VARINT:
        raise VarintError(f"value out of varint range: {value}")
    if value <= _ONE_BYTE_MAX:
        return 1
    if value <= _TWO_BYTE_MAX:
        return 2
    if value <= _FOUR_BYTE_MAX:
        return 4
    return 8


def encode_varint(value: int) -> bytes:
    """Encode ``value`` as a QUIC varint."""
    if value <= _ONE_BYTE_MAX:
        if value < 0:
            raise VarintError(f"value out of varint range: {value}")
        return _ONE_BYTE[value]
    if value <= _TWO_BYTE_MAX:
        return (0x4000 | value).to_bytes(2, "big")
    if value <= _FOUR_BYTE_MAX:
        return (0x80000000 | value).to_bytes(4, "big")
    if value <= MAX_VARINT:
        return (0xC000000000000000 | value).to_bytes(8, "big")
    raise VarintError(f"value out of varint range: {value}")


def append_varint(buffer: bytearray, value: int) -> None:
    """Append the varint encoding of ``value`` to ``buffer`` in place.

    The batch-serialisation entry point: frame and packet encoders share one
    output buffer instead of allocating a writer (and joining byte strings)
    per element.
    """
    if value <= _ONE_BYTE_MAX:
        if value < 0:
            raise VarintError(f"value out of varint range: {value}")
        buffer += _ONE_BYTE[value]
    elif value <= _TWO_BYTE_MAX:
        buffer += (0x4000 | value).to_bytes(2, "big")
    elif value <= _FOUR_BYTE_MAX:
        buffer += (0x80000000 | value).to_bytes(4, "big")
    elif value <= MAX_VARINT:
        buffer += (0xC000000000000000 | value).to_bytes(8, "big")
    else:
        raise VarintError(f"value out of varint range: {value}")


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint starting at ``offset``.

    Returns ``(value, next_offset)``.
    """
    if offset >= len(data):
        raise VarintError("truncated varint: no bytes available")
    first = data[offset]
    prefix = first >> 6
    if prefix == 0:
        return first, offset + 1
    end = offset + (1 << prefix)
    if end > len(data):
        raise VarintError(f"truncated varint: need {1 << prefix} bytes")
    return int.from_bytes(data[offset:end], "big") & _VALUE_MASK[prefix], end


class VarintReader:
    """A cursor over a byte string that reads varints and length-prefixed data.

    Both the QUIC packet parser and the MoQT message codec are written in
    terms of this reader, which keeps the parsing code flat and explicit.
    ``data`` may be ``bytes``, ``bytearray`` or a ``memoryview``; mutable
    buffers are wrapped in a :class:`memoryview` so cursors over reassembly
    buffers never copy the data they scan (``bytes`` input is indexed and
    sliced directly — already zero-cost to construct from).
    """

    __slots__ = ("_view", "_length", "_offset")

    def __init__(self, data: bytes | bytearray | memoryview, offset: int = 0) -> None:
        if type(data) is not bytes and type(data) is not memoryview:
            data = memoryview(data)
        self._view = data
        self._length = len(data)
        self._offset = offset

    @property
    def offset(self) -> int:
        """Current cursor position."""
        return self._offset

    @property
    def remaining(self) -> int:
        """Number of unread bytes."""
        return self._length - self._offset

    def at_end(self) -> bool:
        """Whether the cursor is at the end of the data."""
        return self._offset >= self._length

    def read_varint(self) -> int:
        """Read one varint."""
        offset = self._offset
        if offset >= self._length:
            raise VarintError("truncated varint: no bytes available")
        view = self._view
        first = view[offset]
        prefix = first >> 6
        if prefix == 0:
            self._offset = offset + 1
            return first
        end = offset + (1 << prefix)
        if end > self._length:
            raise VarintError(f"truncated varint: need {1 << prefix} bytes")
        self._offset = end
        return int.from_bytes(view[offset:end], "big") & _VALUE_MASK[prefix]

    def read_bytes(self, count: int) -> bytes:
        """Read exactly ``count`` raw bytes."""
        end = self._offset + count
        if end > self._length:
            raise VarintError(f"truncated data: need {count} bytes, have {self.remaining}")
        chunk = self._view[self._offset: end]
        self._offset = end
        return chunk if type(chunk) is bytes else bytes(chunk)

    def read_uint8(self) -> int:
        """Read a single byte as an unsigned integer."""
        offset = self._offset
        if offset >= self._length:
            raise VarintError("truncated data: need 1 bytes, have 0")
        self._offset = offset + 1
        return self._view[offset]

    def peek_uint8(self) -> int:
        """The next byte without advancing the cursor."""
        if self._offset >= self._length:
            raise VarintError("truncated data: need 1 bytes, have 0")
        return self._view[self._offset]

    def read_uint16(self) -> int:
        """Read a two-byte big-endian unsigned integer."""
        end = self._offset + 2
        if end > self._length:
            raise VarintError(f"truncated data: need 2 bytes, have {self.remaining}")
        value = int.from_bytes(self._view[self._offset: end], "big")
        self._offset = end
        return value

    def read_length_prefixed(self) -> bytes:
        """Read a varint length followed by that many bytes."""
        length = self.read_varint()
        return self.read_bytes(length)

    def read_remaining(self) -> bytes:
        """Read everything left."""
        chunk = self._view[self._offset:]
        self._offset = self._length
        return chunk if type(chunk) is bytes else bytes(chunk)


class VarintWriter:
    """Builds byte strings out of varints and length-prefixed chunks."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def write_varint(self, value: int) -> "VarintWriter":
        """Append one varint."""
        append_varint(self._buffer, value)
        return self

    def write_bytes(self, data: bytes) -> "VarintWriter":
        """Append raw bytes."""
        self._buffer += data
        return self

    def write_uint8(self, value: int) -> "VarintWriter":
        """Append a single byte."""
        if not 0 <= value <= 0xFF:
            raise VarintError(f"uint8 out of range: {value}")
        self._buffer.append(value)
        return self

    def write_uint16(self, value: int) -> "VarintWriter":
        """Append a two-byte big-endian unsigned integer."""
        if not 0 <= value <= 0xFFFF:
            raise VarintError(f"uint16 out of range: {value}")
        self._buffer += value.to_bytes(2, "big")
        return self

    def write_length_prefixed(self, data: bytes) -> "VarintWriter":
        """Append a varint length followed by the data."""
        append_varint(self._buffer, len(data))
        self._buffer += data
        return self

    def getvalue(self) -> bytes:
        """The accumulated bytes."""
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)
