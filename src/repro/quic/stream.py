"""QUIC streams: ordered byte streams with a FIN bit.

Stream identifiers follow RFC 9000: the two low bits encode the initiator
(client/server) and directionality (bidirectional/unidirectional), so client
bidirectional streams are 0, 4, 8, ... and server unidirectional streams are
3, 7, 11, ...  MoQT relies on this: the control channel is the first client
bidirectional stream, while objects are delivered on unidirectional streams
opened by the publisher.
"""

from __future__ import annotations

import enum
from typing import Callable


class StreamDirection(enum.Enum):
    """Directionality of a stream."""

    BIDIRECTIONAL = "bidi"
    UNIDIRECTIONAL = "uni"


def make_stream_id(sequence: int, is_client: bool, direction: StreamDirection) -> int:
    """Compose a stream ID from its sequence number, initiator and direction."""
    stream_id = sequence << 2
    if not is_client:
        stream_id |= 0x1
    if direction is StreamDirection.UNIDIRECTIONAL:
        stream_id |= 0x2
    return stream_id


def stream_initiator_is_client(stream_id: int) -> bool:
    """Whether the stream was opened by the client."""
    return stream_id & 0x1 == 0


def stream_is_unidirectional(stream_id: int) -> bool:
    """Whether the stream is unidirectional."""
    return stream_id & 0x2 != 0


class _ReceiveBuffer:
    """Reassembles stream data received possibly out of order."""

    __slots__ = ("segments", "delivered", "fin_offset")

    def __init__(self) -> None:
        self.segments: dict[int, bytes] = {}
        self.delivered = 0
        self.fin_offset: int | None = None

    def receive(self, offset: int, data: bytes, fin: bool) -> tuple[bytes, bool]:
        """Insert one frame and return newly contiguous data plus FIN state."""
        if fin:
            self.fin_offset = offset + len(data)
        # Fast path: in-order data with nothing buffered (the overwhelmingly
        # common case on a loss-free link) is contiguous as-is — no segment
        # dict traffic and no reassembly copy.
        if offset == self.delivered and not self.segments:
            self.delivered = offset + len(data)
            return data, self._finished()
        # Retransmissions replay frames verbatim; segments that were already
        # delivered must not re-enter the buffer (they would never drain).
        # Retained data is copied: frame payloads may be views over pooled
        # receive buffers that are recycled once the delivery event returns.
        if data and offset >= self.delivered:
            self.segments[offset] = bytes(data)
        output = bytearray()
        while self.delivered in self.segments:
            chunk = self.segments.pop(self.delivered)
            output += chunk
            self.delivered += len(chunk)
        return bytes(output), self._finished()

    def _finished(self) -> bool:
        return self.fin_offset is not None and self.delivered >= self.fin_offset


class QuicStream:
    """One stream of a connection.

    The stream exposes a written-data queue consumed by the connection when
    building packets, and a receive path that reassembles incoming
    ``STREAM`` frames and hands contiguous data to the registered callback.
    """

    __slots__ = (
        "stream_id",
        "_send_offset",
        "_pending_send",
        "_receive",
        "_on_data",
        "send_closed",
        "receive_closed",
        "bytes_sent",
        "bytes_received",
    )

    def __init__(
        self,
        stream_id: int,
        on_data: Callable[[int, bytes, bool], None] | None = None,
    ) -> None:
        self.stream_id = stream_id
        self._send_offset = 0
        self._pending_send: list[tuple[int, bytes, bool]] = []
        self._receive = _ReceiveBuffer()
        self._on_data = on_data
        self.send_closed = False
        self.receive_closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def direction(self) -> StreamDirection:
        """Directionality derived from the stream ID."""
        if stream_is_unidirectional(self.stream_id):
            return StreamDirection.UNIDIRECTIONAL
        return StreamDirection.BIDIRECTIONAL

    def set_data_callback(self, callback: Callable[[int, bytes, bool], None]) -> None:
        """Install the callback invoked with (stream_id, data, fin)."""
        self._on_data = callback

    # ------------------------------------------------------------------- send
    def write(self, data: bytes, fin: bool = False) -> None:
        """Queue data (and optionally a FIN) for transmission."""
        if self.send_closed:
            raise ValueError(f"stream {self.stream_id} send side already closed")
        self._pending_send.append((self._send_offset, bytes(data), fin))
        self._send_offset += len(data)
        self.bytes_sent += len(data)
        if fin:
            self.send_closed = True

    def finish(self) -> None:
        """Close the send side without more data."""
        self.write(b"", fin=True)

    def take_pending(self) -> list[tuple[int, bytes, bool]]:
        """Drain the queued (offset, data, fin) chunks for packetisation."""
        pending, self._pending_send = self._pending_send, []
        return pending

    # ---------------------------------------------------------------- receive
    def receive(self, offset: int, data: bytes, fin: bool) -> None:
        """Process an incoming STREAM frame for this stream.

        Duplicate frames (retransmissions whose original — or whose ACK — was
        merely delayed, not lost) deliver nothing new and must not re-invoke
        the callback: a second ``finished`` notification would make stream
        consumers process the FIN twice.
        """
        already_finished = self.receive_closed
        contiguous, finished = self._receive.receive(offset, data, fin)
        self.bytes_received += len(contiguous)
        if finished:
            self.receive_closed = True
        newly_finished = finished and not already_finished
        if (contiguous or newly_finished) and self._on_data is not None:
            self._on_data(self.stream_id, contiguous, newly_finished)

    @property
    def is_finished(self) -> bool:
        """Whether both directions have been closed."""
        return self.send_closed and self.receive_closed
