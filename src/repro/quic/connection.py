"""The QUIC connection state machine.

A :class:`QuicConnection` reproduces the parts of QUIC that the paper's
latency and state-management arguments rest on:

* a fresh connection costs one round trip of handshake (CRYPTO in INITIAL
  packets) before either side may send application data;
* with a stored session ticket and 0-RTT enabled, the client may send
  application data in its very first flight (ZERO_RTT packets), so a lookup
  request reaches the server after a single one-way delay;
* an established connection can carry new streams with no additional round
  trips, which is what makes connection reuse (§5.2, first optimisation)
  effective;
* connections must be kept alive (PING keepalives) or they die silently after
  the idle timeout, forcing a full re-establishment (§5.1);
* loss is repaired by retransmission after a probe timeout, so object
  delivery over streams is reliable even on lossy links;
* peer failure is *detected*, never announced: a crashed peer simply stops
  acknowledging, so the only in-band failure signals a deployment has are
  consecutive probe timeouts and the idle timeout.  The connection exposes
  them as a liveness state machine (``healthy`` → ``suspect`` after
  :data:`QuicConnection.LIVENESS_SUSPECT_AFTER` consecutive PTOs, back to
  ``healthy`` when an ACK lands, ``dead`` on idle timeout or PTO give-up)
  with an observer callback, which is what drives relay failover without a
  control-plane kill signal (E13).

The implementation is callback-based and driven entirely by the discrete-
event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.netsim.packet import Address, Datagram
from repro.netsim.simulator import Simulator, Timer
from repro.quic.congestion import NULL_CONGESTION, CongestionController
from repro.quic.errors import QuicConnectionError, TransportErrorCode
from repro.quic.frames import (
    AckFrame,
    AckRangesFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    DatagramFrame,
    Frame,
    HandshakeDoneFrame,
    PingFrame,
    StreamFrame,
)
from repro.quic.packet import Packet, PacketType
from repro.quic.varint import append_varint, varint_size
from repro.quic.stream import (
    QuicStream,
    StreamDirection,
    make_stream_id,
    stream_initiator_is_client,
)
from repro.quic.tls import (
    AlpnMismatchError,
    ClientHello,
    ServerHello,
    ServerTlsContext,
    SessionTicket,
    SessionTicketStore,
)

PROTOCOL_LABEL = "quic"

#: Liveness states of the in-band failure detector.
LIVENESS_HEALTHY = "healthy"
LIVENESS_SUSPECT = "suspect"
LIVENESS_DEAD = "dead"


@dataclass
class ConnectionConfig:
    """Tunable parameters of a connection.

    Attributes
    ----------
    alpn_protocols:
        Application protocols offered (client) or supported (server).
    idle_timeout:
        Seconds of silence after which the connection is dropped
        (QUIC ``max_idle_timeout``).
    keepalive_interval:
        When set, PING frames are sent at this interval to keep the
        connection (and NAT bindings) alive; §5.1 discusses this trade-off.
    enable_0rtt:
        Whether the client attempts 0-RTT resumption when it has a ticket.
    initial_rtt:
        Seed for the retransmission timer before an RTT sample exists.
    liveness_suspect_after:
        Consecutive probe timeouts before the peer is *suspected* dead
        (``None`` keeps the class default,
        :attr:`QuicConnection.LIVENESS_SUSPECT_AFTER`).  The default of 2 is
        tuned for loss-free links, where consecutive PTOs really do mean
        the peer stopped talking; on links with random loss a double drop
        (data or ACK, twice in a row) hits the same signature with
        probability ``~loss**2`` *per packet*, so fleets of lossy-edge
        connections should raise this — at the fan-out experiments' 0.5 %
        access loss, threshold 2 fires a false suspicion every ~10k packets
        and each one evacuates a whole leaf.
    congestion_controller:
        Factory producing a fresh
        :class:`~repro.quic.congestion.CongestionController` per connection
        (each connection needs its own window state).  ``None`` — the
        default — installs the shared stateless
        :data:`~repro.quic.congestion.NULL_CONGESTION`, which never blocks
        and leaves every seeded output bit-identical to a build without
        congestion control.
    """

    alpn_protocols: tuple[str, ...] = ("moq-00",)
    idle_timeout: float = 30.0
    keepalive_interval: float | None = None
    enable_0rtt: bool = True
    initial_rtt: float = 0.1
    liveness_suspect_after: int | None = None
    congestion_controller: Callable[[], CongestionController] | None = None

    def __post_init__(self) -> None:
        # A zero or negative timer would arm an event in the past and spin
        # the simulator; fail at construction, not at the first PTO.
        if self.idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive: {self.idle_timeout}")
        if self.keepalive_interval is not None and self.keepalive_interval <= 0:
            raise ValueError(
                f"keepalive_interval must be positive: {self.keepalive_interval}"
            )
        if self.initial_rtt <= 0:
            raise ValueError(f"initial_rtt must be positive: {self.initial_rtt}")
        if self.liveness_suspect_after is not None and self.liveness_suspect_after < 1:
            raise ValueError(
                "liveness_suspect_after needs at least one probe timeout: "
                f"{self.liveness_suspect_after}"
            )


class _EncodedStreamPacket:
    """Retransmission record for a preassembled one-shot stream packet.

    :meth:`QuicConnection.send_encoded_stream` serialises straight into a
    pooled buffer, so nothing object-shaped survives the send for the loss
    machinery to replay.  This record is the minimal substitute: it exposes
    the ``packet_type`` / ``frames`` surface the retransmission and 0-RTT
    requeue paths read, materialising the frame only if the packet is
    actually lost.  ``chunk`` is the shared immutable stream payload, so N
    subscribers' unacked packets reference one body instead of N copies.
    """

    __slots__ = ("stream_id", "chunk")

    packet_type = PacketType.ONE_RTT

    def __init__(self, stream_id: int, chunk: bytes) -> None:
        self.stream_id = stream_id
        self.chunk = chunk

    @property
    def frames(self) -> tuple[StreamFrame, ...]:
        return (StreamFrame(stream_id=self.stream_id, offset=0, data=self.chunk, fin=True),)


def _frames_wire_estimate(frames: "list[Frame] | tuple[Frame, ...]") -> int:
    """Approximate wire size of a packet carrying ``frames``.

    Used only for the congestion window's admission check (the controller is
    fed exact sizes once a packet is actually transmitted): payload bytes
    dominate, so per-frame framing and the packet header are charged a flat
    8 bytes each.
    """
    size = 8
    for frame in frames:
        data = getattr(frame, "data", b"")
        size += len(data) + 8
    return size


@dataclass(slots=True)
class ConnectionStatistics:
    """Packet/byte counters of one connection."""

    packets_sent: int = 0
    packets_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    retransmissions: int = 0
    datagrams_sent: int = 0
    datagrams_received: int = 0
    pings_sent: int = 0
    #: Liveness state changes (healthy/suspect/dead in either direction) —
    #: the per-connection signal behind in-band failure detection (E13).
    liveness_transitions: int = 0


class QuicConnection:
    """One end of a QUIC connection.

    Instances are created by :class:`repro.quic.endpoint.QuicEndpoint` — via
    :meth:`~repro.quic.endpoint.QuicEndpoint.connect` on the client and
    automatically upon the first INITIAL packet on the server.

    Slotted: macro-scale runs hold one connection per subscriber per side
    (2×10⁵ instances at 100k subscribers), where per-instance ``__dict__``
    overhead alone costs hundreds of megabytes.
    """

    __slots__ = (
        "_simulator",
        "_send",
        "_acquire_buffer",
        "local_address",
        "peer_address",
        "connection_id",
        "is_client",
        "config",
        "server_name",
        "_ticket_store",
        "_server_tls",
        "statistics",
        "handshake_complete",
        "handshake_started_at",
        "handshake_completed_at",
        "negotiated_alpn",
        "used_0rtt",
        "early_data_accepted",
        "on_handshake_complete",
        "on_stream_data",
        "on_datagram",
        "on_closed",
        "on_liveness",
        "liveness",
        "liveness_cause",
        "suspected_at",
        "dead_at",
        "_streams",
        "_finished_streams",
        "_next_stream_sequence",
        "_next_packet_number",
        "_largest_acked",
        "_received_ranges",
        "_unacked",
        "_queued_app_frames",
        "_smoothed_rtt",
        "_sent_times",
        "_cc",
        "_cc_active",
        "_cc_sizes",
        "_cwnd_blocked",
        "_consecutive_loss_timeouts",
        "_loss_timer",
        "_idle_timer",
        "_keepalive_timer",
        "closed",
        "close_reason",
    )

    def __init__(
        self,
        *,
        simulator: Simulator,
        send_datagram: Callable[[bytes, Address], None],
        local_address: Address,
        peer_address: Address,
        connection_id: int,
        is_client: bool,
        config: ConnectionConfig,
        server_name: str = "",
        ticket_store: SessionTicketStore | None = None,
        server_tls: ServerTlsContext | None = None,
    ) -> None:
        self._simulator = simulator
        self._send = send_datagram
        #: Installed by the endpoint when its host network provides a
        #: :class:`~repro.netsim.packet.DatagramPool`: returns a recycled
        #: ``bytearray`` to serialise a packet into.  Pooled packets are
        #: handed to ``self._send`` as that bytearray (the endpoint recognises
        #: the type and ships it zero-copy as a pool-managed datagram); when
        #: absent, hot paths fall back to building plain ``bytes``.
        self._acquire_buffer: Callable[[], bytearray] | None = None
        self.local_address = local_address
        self.peer_address = peer_address
        self.connection_id = connection_id
        self.is_client = is_client
        self.config = config
        self.server_name = server_name or peer_address.host
        self._ticket_store = ticket_store
        self._server_tls = server_tls
        self.statistics = ConnectionStatistics()

        # Handshake state.
        self.handshake_complete = False
        self.handshake_started_at: float | None = None
        self.handshake_completed_at: float | None = None
        self.negotiated_alpn: str | None = None
        self.used_0rtt = False
        self.early_data_accepted = False

        # Application callbacks.
        self.on_handshake_complete: Callable[["QuicConnection"], None] | None = None
        self.on_stream_data: Callable[[int, bytes, bool], None] | None = None
        self.on_datagram: Callable[[bytes], None] | None = None
        self.on_closed: Callable[[int, str], None] | None = None
        #: Observer of in-band liveness transitions, invoked as
        #: ``on_liveness(connection, old_state, new_state)``.  Fires only for
        #: transport-*detected* transitions (consecutive PTOs, ACK recovery,
        #: idle timeout, PTO give-up) — never for locally or peer-initiated
        #: closes, which are announced, not detected.
        self.on_liveness: Callable[["QuicConnection", str, str], None] | None = None

        # In-band liveness state (healthy / suspect / dead).
        self.liveness = LIVENESS_HEALTHY
        #: What caused the latest liveness transition: ``"pto-suspect"``,
        #: ``"recovered"``, ``"idle-timeout"`` or ``"pto-give-up"``.
        self.liveness_cause = ""
        self.suspected_at: float | None = None
        self.dead_at: float | None = None

        # Streams.
        self._streams: dict[int, QuicStream] = {}
        #: IDs of peer-initiated one-shot streams already delivered whole (a
        #: single offset-0 FIN frame).  The fan-out receive path completes
        #: such streams without materialising a :class:`QuicStream`; the set
        #: is what keeps a late retransmission of the same frame from being
        #: delivered twice (the job ``receive_closed`` does for full stream
        #: state).
        self._finished_streams: set[int] = set()
        self._next_stream_sequence = {
            StreamDirection.BIDIRECTIONAL: 0,
            StreamDirection.UNIDIRECTIONAL: 0,
        }

        # Packetisation and loss recovery.
        self._next_packet_number = 0
        self._largest_acked = -1
        #: Packet numbers received from the peer, as merged inclusive
        #: ``[start, end]`` runs in ascending order.  On loss-free links this
        #: is always the single run ``[0, largest]`` (links deliver FIFO), so
        #: ACKs stay in their compact cumulative form; a gap switches the
        #: ACKs to exact ranges until pruned (see :meth:`_record_received`).
        self._received_ranges: list[list[int]] = []
        self._unacked: dict[int, Packet] = {}
        self._queued_app_frames: list[Frame] = []
        self._smoothed_rtt = config.initial_rtt
        self._sent_times: dict[int, float] = {}
        # Congestion control.  The default Null controller is a shared
        # stateless singleton and declares itself inert; ``_cc_active`` is
        # hoisted so the fan-out fast path pays one attribute read, not a
        # method dispatch, when no real controller is installed.
        factory = config.congestion_controller
        self._cc: CongestionController = factory() if factory is not None else NULL_CONGESTION
        self._cc_active = self._cc.active
        #: Wire sizes of in-flight ack-eliciting packets, kept only while a
        #: real controller is installed (it is fed (packet, size) pairs on
        #: ack/loss/discard).
        self._cc_sizes: dict[int, int] = {}
        #: FIFO of frame tuples held back by the congestion window, flushed
        #: oldest-first as ACKs (or loss-driven window collapses) reopen it.
        #: The packet type is recomputed at flush time so early data queued
        #: before handshake completion upgrades to ONE_RTT.
        self._cwnd_blocked: list[tuple[Frame, ...]] = []
        self._consecutive_loss_timeouts = 0
        self._loss_timer = Timer(simulator, self._on_loss_timeout)
        self._idle_timer = Timer(simulator, self._on_idle_timeout)
        self._keepalive_timer = Timer(simulator, self._on_keepalive)
        self.closed = False
        self.close_reason = ""

        self._idle_timer.start(config.idle_timeout)
        if config.keepalive_interval is not None:
            self._keepalive_timer.start(config.keepalive_interval)

    # ------------------------------------------------------------------ stats
    @property
    def smoothed_rtt(self) -> float:
        """The current RTT estimate."""
        return self._smoothed_rtt

    @property
    def congestion(self) -> CongestionController:
        """The installed congestion controller (telemetry reads its gauges)."""
        return self._cc

    @property
    def cwnd_blocked_packets(self) -> int:
        """Packets currently held back by the congestion window."""
        return len(self._cwnd_blocked)

    @property
    def handshake_rtts(self) -> float:
        """Round trips spent on connection establishment (0.0 for 0-RTT data).

        This is the quantity the §5.2 query-latency experiment reads: a full
        handshake contributes one RTT before the first request can be sent,
        0-RTT contributes none.
        """
        if self.used_0rtt and self.early_data_accepted:
            return 0.0
        return 1.0

    # -------------------------------------------------------------- handshake
    def start_handshake(self) -> None:
        """Client only: send the first flight (ClientHello, maybe 0-RTT)."""
        if not self.is_client:
            raise QuicConnectionError(
                TransportErrorCode.PROTOCOL_VIOLATION, "server cannot start handshake"
            )
        self.handshake_started_at = self._simulator.now
        ticket = None
        if self._ticket_store is not None and self.config.enable_0rtt:
            ticket = self._ticket_store.get(self.server_name, self._simulator.now)
        offers_early = ticket is not None
        hello = ClientHello(
            server_name=self.server_name,
            alpn_protocols=self.config.alpn_protocols,
            session_ticket=ticket,
            offers_early_data=offers_early,
        )
        if offers_early:
            # Optimistically enable application data in the first flight.
            self.used_0rtt = True
            self.early_data_accepted = True
        self._send_packet(PacketType.INITIAL, [CryptoFrame(hello.to_bytes())])

    def _process_client_hello(self, frame: CryptoFrame) -> None:
        assert self._server_tls is not None, "server connection lacks a TLS context"
        self.handshake_started_at = self._simulator.now
        hello = ClientHello.from_bytes(frame.data)
        try:
            server_hello = self._server_tls.process_client_hello(hello)
        except AlpnMismatchError as error:
            self.close(TransportErrorCode.CONNECTION_REFUSED, str(error))
            return
        self.negotiated_alpn = server_hello.alpn
        self.early_data_accepted = server_hello.accepts_early_data
        if hello.offers_early_data and not server_hello.accepts_early_data:
            # Rejected early data: the client will have to retransmit it as
            # 1-RTT data; we simply never deliver the 0-RTT packets.
            pass
        self.handshake_complete = True
        self.handshake_completed_at = self._simulator.now
        self._send_packet(
            PacketType.HANDSHAKE,
            [CryptoFrame(server_hello.to_bytes()), HandshakeDoneFrame()],
        )
        if self.on_handshake_complete is not None:
            self.on_handshake_complete(self)
        self._flush_queued_app_frames()

    def _process_server_hello(self, frame: CryptoFrame) -> None:
        server_hello = ServerHello.from_bytes(frame.data)
        self.negotiated_alpn = server_hello.alpn
        if self.used_0rtt and not server_hello.accepts_early_data:
            self.early_data_accepted = False
            # 0-RTT was rejected: requeue everything that was sent early.
            self._requeue_zero_rtt()
        if self._ticket_store is not None:
            self._ticket_store.put(
                SessionTicket(
                    server_name=self.server_name,
                    alpn=server_hello.alpn,
                    issued_at=self._simulator.now,
                    ticket_id=server_hello.new_ticket_id,
                )
            )
        self.handshake_complete = True
        self.handshake_completed_at = self._simulator.now
        if self.on_handshake_complete is not None:
            self.on_handshake_complete(self)
        self._flush_queued_app_frames()

    def _requeue_zero_rtt(self) -> None:
        discarded: list[tuple[int, int]] = []
        for packet_number, packet in sorted(self._unacked.items()):
            if packet.packet_type == PacketType.ZERO_RTT:
                self._queued_app_frames.extend(packet.frames)
                del self._unacked[packet_number]
                self._sent_times.pop(packet_number, None)
                if self._cc_active and packet_number in self._cc_sizes:
                    discarded.append((packet_number, self._cc_sizes.pop(packet_number)))
        if discarded:
            # Rejected early data leaves the in-flight ledger without being
            # acked and without signalling congestion (RFC 9002 §6.2.3).
            self._cc.on_packets_discarded(discarded)

    # ---------------------------------------------------------------- streams
    def open_stream(self, direction: StreamDirection = StreamDirection.BIDIRECTIONAL) -> QuicStream:
        """Open a new locally initiated stream."""
        sequence = self._next_stream_sequence[direction]
        self._next_stream_sequence[direction] += 1
        stream_id = make_stream_id(sequence, self.is_client, direction)
        stream = QuicStream(stream_id)
        self._streams[stream_id] = stream
        return stream

    def get_or_create_stream(self, stream_id: int) -> QuicStream:
        """Look up a stream, creating state for peer-initiated streams."""
        stream = self._streams.get(stream_id)
        if stream is None:
            stream = QuicStream(stream_id)
            self._streams[stream_id] = stream
        return stream

    def streams(self) -> dict[int, QuicStream]:
        """All streams keyed by ID."""
        return dict(self._streams)

    def send_stream_data(self, stream: QuicStream, data: bytes, fin: bool = False) -> None:
        """Write data on a stream and transmit it as soon as allowed."""
        if self.closed:
            raise QuicConnectionError(TransportErrorCode.PROTOCOL_VIOLATION, "connection closed")
        stream.write(data, fin)
        frames = [
            StreamFrame(stream_id=stream.stream_id, offset=offset, data=chunk, fin=chunk_fin)
            for offset, chunk, chunk_fin in stream.take_pending()
        ]
        self._send_app_frames(frames)

    def send_datagram_frame(self, data: bytes) -> None:
        """Send unreliable application data in a DATAGRAM frame."""
        self.statistics.datagrams_sent += 1
        self._send_app_frames([DatagramFrame(bytes(data))], reliable=False)

    def send_encoded_stream(self, chunk: bytes) -> int:
        """Send ``chunk`` as a complete one-shot unidirectional stream.

        The preassembled fan-out fast path: ``chunk`` is an already-encoded
        stream payload (e.g. a MoQT subgroup chunk shared across subscribers),
        and the packet around it is serialised directly into a pooled buffer —
        header-patch-only per subscriber, wire-identical to
        ``open_stream()`` + ``send_stream_data(..., fin=True)`` but with no
        per-call :class:`QuicStream`, ``StreamFrame`` or ``Packet`` objects
        and no intermediate payload copies.  Loss recovery is preserved: a
        compact retransmission record keeps a reference to ``chunk`` (which
        must therefore be immutable) until the packet is acknowledged.

        Returns the stream ID used.
        """
        if self.closed:
            raise QuicConnectionError(TransportErrorCode.PROTOCOL_VIOLATION, "connection closed")
        if not self.handshake_complete:
            # Rare (0-RTT / queued-frame semantics live in the general path).
            stream = self.open_stream(StreamDirection.UNIDIRECTIONAL)
            self.send_stream_data(stream, chunk, fin=True)
            return stream.stream_id
        sequence = self._next_stream_sequence[StreamDirection.UNIDIRECTIONAL]
        self._next_stream_sequence[StreamDirection.UNIDIRECTIONAL] = sequence + 1
        stream_id = make_stream_id(sequence, self.is_client, StreamDirection.UNIDIRECTIONAL)
        chunk_length = len(chunk)
        # frame type (1) + offset varint 0 (1) + fin byte (1) = 3.
        payload_length = 3 + varint_size(stream_id) + varint_size(chunk_length) + chunk_length
        if self._cc_active:
            wire_size = (
                1
                + varint_size(self.connection_id)
                + varint_size(self._next_packet_number)
                + varint_size(payload_length)
                + payload_length
            )
            if self._cwnd_blocked or not self._cc.can_send(wire_size):
                # Window full (or earlier sends already waiting — FIFO order
                # is part of the wire contract): hold the stream back; the ID
                # is already allocated and returned.  The flush path sends it
                # through _send_packet, whose encoding is byte-identical to
                # the hand-assembled fast path below.
                self._cwnd_blocked.append(
                    (StreamFrame(stream_id=stream_id, offset=0, data=chunk, fin=True),)
                )
                return stream_id
        packet_number = self._next_packet_number
        self._next_packet_number = packet_number + 1
        self._unacked[packet_number] = _EncodedStreamPacket(stream_id, chunk)
        self._sent_times[packet_number] = self._simulator.now
        if not self._loss_timer.is_running:
            self._loss_timer.start(self._probe_timeout())
        acquire = self._acquire_buffer
        buffer = acquire() if acquire is not None else bytearray()
        # Byte-identical to Packet(ONE_RTT, cid, pn, (StreamFrame(stream_id,
        # offset=0, chunk, fin=True),)).encode(): the frame payload length is
        # computed up front so header and payload share one buffer.
        buffer.append(int(PacketType.ONE_RTT))
        append_varint(buffer, self.connection_id)
        append_varint(buffer, packet_number)
        append_varint(buffer, payload_length)
        buffer.append(0x08)  # FrameType.STREAM
        append_varint(buffer, stream_id)
        buffer.append(0)  # offset
        buffer.append(1)  # fin
        append_varint(buffer, chunk_length)
        buffer += chunk
        self.statistics.packets_sent += 1
        self.statistics.bytes_sent += len(buffer)
        if self._cc_active:
            self._cc.on_packet_sent(packet_number, len(buffer))
            self._cc_sizes[packet_number] = len(buffer)
        self._send(buffer if acquire is not None else bytes(buffer), self.peer_address)
        self._restart_idle_timer()
        return stream_id

    # ------------------------------------------------------------ packetising
    def _can_send_app_data(self) -> bool:
        if self.handshake_complete:
            return True
        return self.is_client and self.used_0rtt and self.early_data_accepted

    def _app_packet_type(self) -> PacketType:
        if self.handshake_complete:
            return PacketType.ONE_RTT
        return PacketType.ZERO_RTT

    def _send_app_frames(self, frames: list[Frame], reliable: bool = True) -> None:
        if not frames:
            return
        if not self._can_send_app_data():
            self._queued_app_frames.extend(frames)
            return
        if self._cc_active and reliable:
            if self._cwnd_blocked or not self._cc.can_send(_frames_wire_estimate(frames)):
                self._cwnd_blocked.append(tuple(frames))
                return
        self._send_packet(self._app_packet_type(), frames, reliable=reliable)

    def _flush_cwnd_blocked(self) -> None:
        """Send window-blocked packets, oldest first, while the window allows.

        Called when ACKs shrink bytes-in-flight and when a loss event clears
        the in-flight ledger; stops at the first packet that still does not
        fit so FIFO order is never violated.
        """
        blocked = self._cwnd_blocked
        while blocked and not self.closed:
            frames = blocked[0]
            if not self._cc.can_send(_frames_wire_estimate(frames)):
                return
            del blocked[0]
            self._send_packet(self._app_packet_type(), list(frames))

    def _flush_queued_app_frames(self) -> None:
        if not self._queued_app_frames or not self._can_send_app_data():
            return
        frames, self._queued_app_frames = self._queued_app_frames, []
        self._send_packet(self._app_packet_type(), frames)

    def _send_packet(
        self, packet_type: PacketType, frames: list[Frame], reliable: bool = True
    ) -> None:
        packet = Packet(
            packet_type=packet_type,
            connection_id=self.connection_id,
            packet_number=self._next_packet_number,
            frames=tuple(frames),
        )
        self._next_packet_number += 1
        if reliable and packet.is_ack_eliciting:
            self._unacked[packet.packet_number] = packet
            self._sent_times[packet.packet_number] = self._simulator.now
            if not self._loss_timer.is_running:
                self._loss_timer.start(self._probe_timeout())
        self._transmit(packet)

    def _transmit(self, packet: Packet) -> None:
        acquire = self._acquire_buffer
        if acquire is not None:
            payload: bytes | bytearray = acquire()
            packet.encode_into(payload)
        else:
            payload = packet.encode()
        self.statistics.packets_sent += 1
        self.statistics.bytes_sent += len(payload)
        if self._cc_active and packet.is_ack_eliciting:
            self._cc.on_packet_sent(packet.packet_number, len(payload))
            self._cc_sizes[packet.packet_number] = len(payload)
        self._send(payload, self.peer_address)
        self._restart_idle_timer()

    def _probe_timeout(self) -> float:
        return max(2.5 * self._smoothed_rtt, 0.02)

    @property
    def probe_timeout(self) -> float:
        """The current probe-timeout base interval (before backoff)."""
        return self._probe_timeout()

    @property
    def idle_deadline(self) -> float | None:
        """Absolute time the idle timer will fire (None once closed)."""
        if self.closed:
            return None
        return self._idle_timer.deadline

    @property
    def keepalive_deadline(self) -> float | None:
        """Absolute time of the next keepalive PING, if keepalives are on."""
        return self._keepalive_timer.deadline

    @property
    def unacked_packets(self) -> int:
        """Ack-eliciting packets currently awaiting acknowledgement."""
        return len(self._unacked)

    #: Number of consecutive probe timeouts after which the peer is declared
    #: unreachable and the connection is abandoned (akin to a handshake /
    #: PTO give-up in real stacks; keeps unreachable-server probes bounded).
    MAX_CONSECUTIVE_LOSS_TIMEOUTS = 8

    #: Consecutive probe timeouts after which the peer is *suspected* dead.
    #: With doubling backoff the n-th consecutive PTO fires
    #: ``probe_timeout * (2**n - 1)`` after the unacknowledged send, so the
    #: suspicion latency is ``3 x probe_timeout`` at the default of 2.
    LIVENESS_SUSPECT_AFTER = 2

    #: The PTO backoff doubles per consecutive timeout but is capped at
    #: ``2**cap`` probe intervals, as real stacks cap their timers — without
    #: the cap, giving up after 8 consecutive timeouts could take minutes.
    PTO_BACKOFF_EXPONENT_CAP = 3

    def _set_liveness(self, state: str, cause: str) -> None:
        if self.liveness == state:
            return
        old, self.liveness = self.liveness, state
        self.liveness_cause = cause
        self.statistics.liveness_transitions += 1
        if state == LIVENESS_SUSPECT:
            self.suspected_at = self._simulator.now
        elif state == LIVENESS_DEAD:
            self.dead_at = self._simulator.now
        if self.on_liveness is not None:
            self.on_liveness(self, old, state)

    def _on_loss_timeout(self) -> None:
        if self.closed or not self._unacked:
            return
        self._consecutive_loss_timeouts += 1
        if self._consecutive_loss_timeouts > self.MAX_CONSECUTIVE_LOSS_TIMEOUTS:
            self._set_liveness(LIVENESS_DEAD, "pto-give-up")
            self._handle_close(
                int(TransportErrorCode.INTERNAL_ERROR), "peer unreachable", send_close=False
            )
            return
        suspect_after = self.config.liveness_suspect_after
        if suspect_after is None:
            suspect_after = self.LIVENESS_SUSPECT_AFTER
        if (
            self._consecutive_loss_timeouts >= suspect_after
            and self.liveness == LIVENESS_HEALTHY
        ):
            # The observer may react by abandoning this connection (a relay
            # failing over its uplink); retransmitting is then pointless.
            self._set_liveness(LIVENESS_SUSPECT, "pto-suspect")
            if self.closed:
                return
        self.statistics.retransmissions += len(self._unacked)
        if self._cc_active:
            # One loss event per PTO fire: every in-flight packet is declared
            # lost before the retransmissions below re-enter the ledger.
            sizes = self._cc_sizes
            lost_pairs = [
                (packet_number, sizes.pop(packet_number))
                for packet_number in sorted(self._unacked)
                if packet_number in sizes
            ]
            if lost_pairs:
                self._cc.on_packets_lost(lost_pairs)
        for packet_number in sorted(self._unacked):
            packet = self._unacked.pop(packet_number)
            self._sent_times.pop(packet_number, None)
            # Re-send the same frames in a new packet (new packet number).
            # Retransmissions bypass the congestion-window gate — a probe
            # must be able to leave even with the window full (RFC 9002
            # §7.5) — but do re-enter bytes-in-flight via _transmit.
            self._send_packet(packet.packet_type, list(packet.frames))
        if self._cc_active and self._cwnd_blocked and not self.closed:
            # The loss event cleared the in-flight ledger; the (halved)
            # window may have room for packets it previously blocked.
            self._flush_cwnd_blocked()
        # Exponential backoff: the n-th consecutive timeout waits 2**n probe
        # intervals (capped), so an unreachable peer is probed ever more
        # sparsely while give-up stays bounded in time.
        exponent = min(self._consecutive_loss_timeouts, self.PTO_BACKOFF_EXPONENT_CAP)
        self._loss_timer.start(self._probe_timeout() * (2.0 ** exponent))

    # ----------------------------------------------------------------- receive
    def datagram_received(self, payload: bytes) -> None:
        """Process one incoming UDP payload carrying a QUIC packet."""
        if self.closed:
            return
        self.packet_received(Packet.decode(payload), len(payload))

    def packet_received(self, packet: Packet, wire_size: int) -> None:
        """Process one already-decoded incoming packet of ``wire_size`` bytes."""
        if self.closed:
            return
        self.statistics.packets_received += 1
        self.statistics.bytes_received += wire_size
        self._restart_idle_timer()
        # Every packet (ACK-only ones included — they occupy the same number
        # space) lands in the received-set, so a gap in it means a real drop.
        self._record_received(packet.packet_number)
        ack_needed = packet.is_ack_eliciting
        for frame in packet.frames:
            self._process_frame(packet, frame)
        if self.closed:
            return
        if ack_needed:
            self._send_ack()

    #: Once the received-set spans more packet numbers than this below its
    #: top, the oldest gap is forgiven (its runs are merged).  A gap that old
    #: cannot cancel a repair: the sender abandons a packet number at its
    #: first PTO and re-sends the frames under a fresh number, so nothing
    #: anywhere near this old is still awaiting acknowledgement.  Pruning
    #: bounds both the received-set memory and the ACK_RANGES wire size on
    #: long-lived lossy connections.
    RECEIVED_RANGES_HORIZON = 4096

    def _record_received(self, packet_number: int) -> None:
        """Merge ``packet_number`` into the received-set runs."""
        ranges = self._received_ranges
        if not ranges:
            ranges.append([packet_number, packet_number])
            return
        last = ranges[-1]
        if packet_number == last[1] + 1:  # in-order fast path
            last[1] = packet_number
            return
        if packet_number > last[1]:  # jumped past a freshly dropped packet
            ranges.append([packet_number, packet_number])
            if packet_number - ranges[0][1] > self.RECEIVED_RANGES_HORIZON:
                while len(ranges) > 1 and ranges[-1][1] - ranges[0][1] > self.RECEIVED_RANGES_HORIZON:
                    ranges[1][0] = ranges[0][0]
                    del ranges[0]
            return
        # A duplicate, or a retransmission landing below the top run.  Rare
        # (requires prior loss), so a linear walk over the few runs is fine.
        for index, (start, end) in enumerate(ranges):
            if packet_number < start - 1:
                ranges.insert(index, [packet_number, packet_number])
                return
            if packet_number <= end + 1:
                if start <= packet_number <= end:
                    return  # duplicate
                if packet_number == start - 1:
                    ranges[index][0] = packet_number
                    if index > 0 and ranges[index - 1][1] + 1 == packet_number:
                        ranges[index][0] = ranges[index - 1][0]
                        del ranges[index - 1]
                else:  # packet_number == end + 1
                    ranges[index][1] = packet_number
                    if index + 1 < len(ranges) and ranges[index + 1][0] == packet_number + 1:
                        ranges[index][1] = ranges[index + 1][1]
                        del ranges[index + 1]
                return

    def _send_ack(self) -> None:
        # Hand-assembled wire bytes (identical to encoding a one-AckFrame
        # Packet): an ACK rides every ack-eliciting packet, so this path runs
        # once per received data packet and skips the Packet/Frame objects.
        # When the endpoint installed pooled sending, the bytes go straight
        # into a recycled buffer (ACKs dominate the reverse fan-out path).
        acquire = self._acquire_buffer
        buffer = acquire() if acquire is not None else bytearray()
        buffer.append(
            int(PacketType.ONE_RTT if self.handshake_complete else PacketType.INITIAL)
        )
        append_varint(buffer, self.connection_id)
        append_varint(buffer, self._next_packet_number)
        self._next_packet_number += 1
        ranges = self._received_ranges
        if len(ranges) == 1 and ranges[0][0] == 0:
            # Gap-free from packet 0 (always the case on loss-free links, and
            # then ``ranges[0][1]`` is the packet just received): cumulative
            # ACK, byte-identical to what this path always produced.
            largest = ranges[0][1]
            # ACK frame: type (1 byte) + largest + delay varint 0 (1 byte).
            append_varint(buffer, 2 + varint_size(largest))
            buffer.append(0x02)  # FrameType.ACK
            append_varint(buffer, largest)
            buffer.append(0)  # ack delay
        else:
            # The received-set has a gap: acknowledge exactly what arrived.
            # Acking the dropped number cumulatively would cancel its
            # retransmission — one double drop would become a permanent
            # delivery hole (the bug this branch exists to close).
            frame = AckRangesFrame(
                largest=ranges[-1][1],
                delay_us=0,
                ranges=tuple((start, end) for start, end in ranges),
            )
            encoded = bytearray()
            frame.encode_into(encoded)
            append_varint(buffer, len(encoded))
            buffer += encoded
        self.statistics.packets_sent += 1
        self.statistics.bytes_sent += len(buffer)
        self._send(buffer if acquire is not None else bytes(buffer), self.peer_address)
        self._restart_idle_timer()

    def _process_frame(self, packet: Packet, frame: Frame) -> None:
        # Ordered by frequency: streams and acks carry virtually all traffic.
        if isinstance(frame, StreamFrame):
            if not self.is_client and packet.packet_type == PacketType.ZERO_RTT:
                if not self.early_data_accepted and self.handshake_complete:
                    return  # rejected early data is dropped
            stream_id = frame.stream_id
            stream = self._streams.get(stream_id)
            if stream is None:
                if stream_id in self._finished_streams:
                    return  # late retransmission of a completed one-shot stream
                if (
                    frame.fin
                    and frame.offset == 0
                    and stream_id & 0x2
                    and self.on_stream_data is not None
                ):
                    # One-shot unidirectional stream delivered whole in its
                    # first frame — the fan-out data path.  Complete it
                    # without materialising stream state; the finished-set
                    # entry replaces ``receive_closed`` for duplicate
                    # suppression.
                    self._finished_streams.add(stream_id)
                    self.on_stream_data(stream_id, frame.data, True)
                    return
                stream = QuicStream(stream_id)
                self._streams[stream_id] = stream
            if stream._on_data is None and self.on_stream_data is not None:
                stream.set_data_callback(self.on_stream_data)
            stream.receive(frame.offset, frame.data, frame.fin)
        elif isinstance(frame, AckFrame):
            self._process_ack(frame)
        elif isinstance(frame, AckRangesFrame):
            self._process_ack_ranges(frame)
        elif isinstance(frame, CryptoFrame):
            if self.is_client:
                self._process_server_hello(frame)
            else:
                self._process_client_hello(frame)
        elif isinstance(frame, DatagramFrame):
            self.statistics.datagrams_received += 1
            if self.on_datagram is not None:
                self.on_datagram(frame.data)
        elif isinstance(frame, ConnectionCloseFrame):
            self._handle_close(frame.error_code, frame.reason, send_close=False)
        elif isinstance(frame, HandshakeDoneFrame):
            pass  # informational
        elif isinstance(frame, PingFrame):
            pass  # the ACK we send suffices
        # PADDING and unknown-but-parsed frames are ignored.

    def _process_ack(self, frame: AckFrame) -> None:
        # Cumulative ACK: the peer's received-set is gap-free from packet 0,
        # so everything at or below ``largest`` really was received.
        self._apply_ack([pn for pn in self._unacked if pn <= frame.largest], frame.largest)

    def _process_ack_ranges(self, frame: AckRangesFrame) -> None:
        # Exact ACK: the peer saw a gap; acknowledge only the listed ranges
        # so the dropped numbers stay unacked and the PTO machinery repairs
        # them.
        ranges = frame.ranges
        acked = [
            pn
            for pn in self._unacked
            if any(start <= pn <= end for start, end in ranges)
        ]
        self._apply_ack(acked, frame.largest)

    def _apply_ack(self, acked: "list[int]", largest: int) -> None:
        self._consecutive_loss_timeouts = 0
        if self.liveness == LIVENESS_SUSPECT:
            # The peer answered after all: the suspicion was a false positive.
            self._set_liveness(LIVENESS_HEALTHY, "recovered")
        self._largest_acked = max(self._largest_acked, largest)
        for packet_number in acked:
            sent_at = self._sent_times.pop(packet_number, None)
            if sent_at is not None:
                sample = self._simulator.now - sent_at
                self._smoothed_rtt = 0.875 * self._smoothed_rtt + 0.125 * sample
            del self._unacked[packet_number]
        if self._cc_active and acked:
            sizes = self._cc_sizes
            acked_pairs = [
                (packet_number, sizes.pop(packet_number))
                for packet_number in acked
                if packet_number in sizes
            ]
            if acked_pairs:
                self._cc.on_packets_acked(acked_pairs)
            if self._cwnd_blocked:
                self._flush_cwnd_blocked()
        if not self._unacked:
            self._loss_timer.stop()
        else:
            self._loss_timer.start(self._probe_timeout())

    # ------------------------------------------------------------------ timers
    def _restart_idle_timer(self) -> None:
        if self.closed:
            return
        # Inlined Timer.start fast path (this runs for every packet sent and
        # received): extending the deadline of an armed timer is one float
        # assignment, no heap traffic.
        timer = self._idle_timer
        deadline = self._simulator.now + self.config.idle_timeout
        event = timer._event  # noqa: SLF001 - hot path, same package
        if event is not None and not event.cancelled and event.time <= deadline:
            timer._deadline = deadline  # noqa: SLF001
        else:
            timer.start(self.config.idle_timeout)

    def _on_idle_timeout(self) -> None:
        # The only signal a silent peer ever gives is this timer firing: with
        # nothing in flight there are no probe timeouts, so idle expiry *is*
        # the in-band death notification (the observer runs before the close
        # teardown so it can react while the state is still intact).
        self._set_liveness(LIVENESS_DEAD, "idle-timeout")
        self._handle_close(int(TransportErrorCode.NO_ERROR), "idle timeout", send_close=False)

    def _on_keepalive(self) -> None:
        if self.closed:
            return
        self.statistics.pings_sent += 1
        self._send_packet(
            PacketType.ONE_RTT if self.handshake_complete else PacketType.INITIAL,
            [PingFrame()],
        )
        if self.config.keepalive_interval is not None:
            self._keepalive_timer.start(self.config.keepalive_interval)

    # ------------------------------------------------------------------- close
    def close(self, code: TransportErrorCode = TransportErrorCode.NO_ERROR, reason: str = "") -> None:
        """Close the connection, notifying the peer."""
        if self.closed:
            return
        close_packet = Packet(
            packet_type=PacketType.ONE_RTT if self.handshake_complete else PacketType.INITIAL,
            connection_id=self.connection_id,
            packet_number=self._next_packet_number,
            frames=(ConnectionCloseFrame(error_code=int(code), reason=reason),),
        )
        self._next_packet_number += 1
        self._transmit(close_packet)
        self._handle_close(int(code), reason, send_close=False)

    def _handle_close(self, code: int, reason: str, send_close: bool) -> None:
        if self.closed:
            return
        self.closed = True
        self.close_reason = reason
        # An announced close (local or via CONNECTION_CLOSE) ends liveness
        # tracking without an observer callback: nothing was *detected*.
        # The transitions that arrived here through the detectors (idle
        # expiry, PTO give-up) already stamped their cause via _set_liveness.
        if self.liveness != LIVENESS_DEAD:
            self.liveness = LIVENESS_DEAD
            self.liveness_cause = "closed"
            self.dead_at = self._simulator.now
        self._loss_timer.stop()
        self._idle_timer.stop()
        self._keepalive_timer.stop()
        if self.on_closed is not None:
            self.on_closed(code, reason)

    def abandon(self) -> None:
        """Tear the connection down without sending a byte or firing callbacks.

        Models the process owning the connection vanishing (a crashed relay):
        the peer is never told, all timers die with the process, and no
        application callback observes the end — the peer can only find out
        through its own liveness machinery.  Used by fault injectors.
        """
        if self.closed:
            return
        self.closed = True
        self.close_reason = "abandoned"
        if self.liveness != LIVENESS_DEAD:
            self.liveness = LIVENESS_DEAD
            self.liveness_cause = "abandoned"
            self.dead_at = self._simulator.now
        self._loss_timer.stop()
        self._idle_timer.stop()
        self._keepalive_timer.stop()
