"""E11 — relay fan-out: origin egress vs. subscriber count (§3, §5.3).

The paper argues that payload-oblivious relays let one authoritative server
serve millions of resolvers: arranged in a tree, every tier multiplies the
fan-out while the origin only ever pushes one copy per direct child.  This
experiment builds a three-tier CDN hierarchy (origin -> mid -> edge ->
subscribers) with :mod:`repro.relaynet`, scales the subscriber population,
pushes a batch of record updates, and compares the measured per-tier link
traffic against the closed-form model in :mod:`repro.analysis.fanout`:

* the objects entering each tier must equal ``receivers x updates``;
* origin egress must stay constant (O(branching factor)) as subscribers
  grow — the unicast baseline grows linearly instead;
* wire bytes per tier must match ``messages x bytes_per_update``, where the
  per-update wire size is calibrated once from a minimal one-relay,
  one-subscriber run.

Everything runs on the deterministic simulator, so repeated runs (same seed)
produce identical byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fanout import FanoutModel, fanout_model, relative_deviation
from repro.moqt.objectmodel import MoqtObject
from repro.moqt.origin import (  # noqa: F401  (historical re-exports)
    ORIGIN_HOST,
    ORIGIN_PORT,
    TRACK,
    OriginPublisher,
    build_origin,
)
from repro.moqt.relay import MOQT_ALPN  # noqa: F401  (historical re-export)
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.netsim.trace import NullTraceRecorder
from repro.relaynet import OriginCluster, RelayNetStats, RelayTreeBuilder, RelayTreeSpec
from repro.telemetry import Telemetry
from repro.telemetry.collect import collect_run

#: Virtual time between pushed updates (keeps pushes distinguishable in
#: traces without affecting byte counts — links have no bandwidth limit).
UPDATE_INTERVAL = 0.25


def _update_payload(group_id: int, payload_size: int) -> bytes:
    stem = f"update-{group_id}-".encode()
    return (stem * (payload_size // len(stem) + 1))[:payload_size]


@dataclass
class TreeRun:
    """Everything one seeded tree run measured."""

    #: Update-window statistics delta (setup traffic excluded).
    delta: RelayNetStats
    #: Objects the origin pushed during the window.
    origin_objects: int
    #: Objects delivered to subscriber callbacks during the window.
    delivered: int
    #: Total simulator events scheduled over the whole run.
    events_scheduled: int
    #: Datagram/buffer pool allocation and reuse counters at run end.
    pool_counters: dict[str, int]
    #: Lazy-deletion heap compactions over the whole run.
    compactions: int
    #: Fan-out waves that degraded to per-datagram transmission (must stay 0
    #: now that constrained links batch; gated in the perf harness).
    link_batch_fallback_waves: int = 0


def _run_tree(
    spec: RelayTreeSpec,
    subscribers: int,
    updates: int,
    payload_size: int,
    seed: int,
    telemetry: Telemetry | None = None,
    aggregate_leaves: bool = False,
) -> TreeRun:
    """Build the tree, push ``updates`` objects and measure the update window.

    ``telemetry`` is observational only: metrics are scraped at run end and
    the span tracer (cleared first, so one tracer can serve several seeded
    runs) records push/hop/delivery timestamps without scheduling events,
    drawing randomness or touching wire bytes — seeded outputs are
    bit-identical with or without it.

    ``spec.origins >= 2`` replaces the singleton origin with an
    :class:`~repro.relaynet.origincluster.OriginCluster` of that size.  A
    cluster that never fails adds zero traffic on any tree link — the
    standby's warm subscription rides its own origin-mesh links — so the
    measured tier tables are bit-identical to the singleton run (the
    determinism canary in the test suite pins exactly this).

    ``aggregate_leaves`` runs the subscriber edge in counted aggregate-leaf
    mode (:mod:`repro.relaynet.aggregate`): identical placement and wire
    behaviour per connection, one representative per leaf group, every
    measured statistic multiplied out — tier tables, origin egress and
    delivered counts are bit-identical to the dense run while
    ``events_scheduled`` collapses by roughly the leaf fan-out factor.
    """
    simulator = Simulator(seed=seed)
    # The experiment reads link statistics, never traces; a null recorder
    # removes two trace records per datagram from the fan-out hot path.
    network = Network(simulator, trace=NullTraceRecorder(simulator), telemetry=telemetry)
    if telemetry is not None and telemetry.spans is not None:
        telemetry.spans.clear()
    origin_cluster = None
    if spec.origins > 1:
        origin_cluster = OriginCluster(
            network, origins=spec.origins, standby_link=spec.tiers[0].uplink
        )
        publisher = origin_cluster.publisher
    else:
        publisher = build_origin(network)
    tree = RelayTreeBuilder(
        network,
        Address(ORIGIN_HOST, ORIGIN_PORT),
        origin_cluster=origin_cluster,
        aggregate_leaves=aggregate_leaves,
    ).build(spec)
    tree.attach_subscribers(subscribers)
    delivered = [0]
    # Each delivery counts once per subscriber the receiving object stands
    # in for (multiplicity is 1 everywhere in dense mode).
    tree.subscribe_all(
        TRACK,
        on_object=lambda subscriber, obj: delivered.__setitem__(
            0, delivered[0] + subscriber.multiplicity
        ),
    )
    simulator.run(until=simulator.now + 3.0)

    before = RelayNetStats.collect(tree)
    origin_before = publisher.objects_sent
    delivered_before = delivered[0]
    for update in range(updates):
        obj = MoqtObject(
            group_id=update + 2,
            object_id=0,
            payload=_update_payload(update + 2, payload_size),
        )
        if origin_cluster is not None:
            origin_cluster.push(obj)
        else:
            publisher.push(obj)
        simulator.run(until=simulator.now + UPDATE_INTERVAL)
    simulator.run(until=simulator.now + 3.0)
    delta = RelayNetStats.collect(tree).delta(before)
    if telemetry is not None:
        collect_run(telemetry.metrics, network, tree, origin_cluster=origin_cluster)
    return TreeRun(
        delta=delta,
        origin_objects=publisher.objects_sent - origin_before,
        delivered=delivered[0] - delivered_before,
        events_scheduled=simulator.events_scheduled,
        pool_counters=network.datagram_pool.counters(),
        compactions=simulator.compactions,
        link_batch_fallback_waves=network.link_batch_fallback_waves,
    )


def calibrate_bytes_per_update(payload_size: int, updates: int = 4, seed: int = 17) -> float:
    """Measure the wire bytes of one pushed update on a minimal tree.

    A one-relay, one-subscriber star carries exactly one copy of every update
    on its subscriber link, so the link-byte delta over the update window
    divided by the update count is the per-update wire size (payload plus
    subgroup-stream and QUIC framing) the fan-out model scales up.
    """
    run = _run_tree(RelayTreeSpec.star(relays=1), 1, updates, payload_size, seed)
    if run.delivered != updates:
        raise RuntimeError(f"calibration run lost updates: {run.delivered}/{updates}")
    return run.delta.subscriber_link_bytes / updates


@dataclass
class FanoutSample:
    """Measured and modelled traffic for one subscriber count."""

    subscribers: int
    updates: int
    tier_names: tuple[str, ...]
    measured_tier_bytes: tuple[int, ...]
    measured_tier_objects: tuple[int, ...]
    measured_origin_objects: int
    delivered_objects: int
    model: FanoutModel
    #: Total simulator events scheduled over the whole run (setup included) —
    #: the quantity link-batch fan-out keeps from growing with subscribers.
    events_scheduled: int = 0
    #: Datagram/buffer pool counters at run end (allocation vs. reuse) —
    #: surfaced so benchmarks can regress on pool hit rate.
    pool_counters: dict[str, int] | None = None
    #: Lazy-deletion heap compactions over the run.
    compactions: int = 0
    #: Per-tier latency summary from span tracing (None when tracing is off).
    latency: dict[str, object] | None = None
    #: Fan-out waves degraded to per-datagram transmission (0 unless a link
    #: was explicitly marked non-batchable).
    link_batch_fallback_waves: int = 0

    @property
    def max_tier_byte_deviation(self) -> float:
        """Largest relative error between measured and modelled tier bytes."""
        return max(
            relative_deviation(measured, predicted)
            for measured, predicted in zip(self.measured_tier_bytes, self.model.tier_bytes())
        )

    @property
    def origin_egress_bytes(self) -> int:
        """Measured bytes the origin sent into the top tier."""
        return self.measured_tier_bytes[0]

    def as_row(self) -> dict[str, object]:
        """Summary row: origin egress scaling and model agreement."""
        return {
            "subscribers": self.subscribers,
            "updates": self.updates,
            "origin_objects": self.measured_origin_objects,
            "model_origin": self.model.origin_messages,
            "unicast_origin": self.model.unicast_messages,
            "origin_bytes": self.origin_egress_bytes,
            "model_origin_bytes": round(self.model.origin_egress_bytes),
            "reduction_x": round(self.model.origin_reduction_factor, 2),
            "delivered": self.delivered_objects,
            "expected": self.subscribers * self.updates,
            "max_tier_dev": round(self.max_tier_byte_deviation, 4),
        }

    def tier_rows(self) -> list[dict[str, object]]:
        """One row per tier: measured vs. modelled messages and bytes."""
        rows = []
        for name, measured_bytes, measured_objects, model_messages, model_bytes in zip(
            self.tier_names,
            self.measured_tier_bytes,
            self.measured_tier_objects,
            self.model.tier_messages(),
            self.model.tier_bytes(),
        ):
            rows.append(
                {
                    "subscribers": self.subscribers,
                    "tier": name,
                    "objects": measured_objects,
                    "model_objects": model_messages,
                    "link_bytes": measured_bytes,
                    "model_bytes": round(model_bytes),
                    "deviation": round(
                        relative_deviation(measured_bytes, model_bytes), 4
                    ),
                }
            )
        return rows


@dataclass
class RelayFanoutResult:
    """All samples of the fan-out experiment plus the calibrated unit size."""

    samples: list[FanoutSample]
    bytes_per_update: float
    mid_relays: int
    edge_per_mid: int

    def rows(self) -> list[dict[str, object]]:
        """Per-sample summary rows."""
        return [sample.as_row() for sample in self.samples]

    def tier_rows(self) -> list[dict[str, object]]:
        """Per-tier detail rows across all samples."""
        return [row for sample in self.samples for row in sample.tier_rows()]


def run_relay_fanout(
    subscriber_counts: tuple[int, ...] = (10, 100, 1000),
    updates: int = 5,
    mid_relays: int = 4,
    edge_per_mid: int = 4,
    payload_size: int = 300,
    seed: int = 7,
    telemetry: Telemetry | None = None,
    origins: int = 1,
    aggregate_leaves: bool = False,
) -> RelayFanoutResult:
    """Run the fan-out experiment over a range of subscriber counts.

    Every sample uses the same three-tier CDN tree (``mid_relays`` mid
    relays, ``mid_relays * edge_per_mid`` edge relays), so origin egress
    staying flat across samples while subscribers grow two orders of
    magnitude is the tree doing its job.

    ``telemetry`` (optional) is threaded into every sample's network: the
    span tracer is cleared per sample and its per-tier latency summary lands
    on :attr:`FanoutSample.latency`; metrics are scraped at each sample's
    end (later samples overwrite earlier gauges).  Measured byte counts are
    unaffected — the calibration run deliberately stays telemetry-free.
    """
    bytes_per_update = calibrate_bytes_per_update(payload_size, seed=seed + 1)
    samples: list[FanoutSample] = []
    for count in subscriber_counts:
        spec = RelayTreeSpec.cdn(
            mid_relays=mid_relays, edge_per_mid=edge_per_mid, origins=origins
        )
        run = _run_tree(
            spec,
            count,
            updates,
            payload_size,
            seed,
            telemetry=telemetry,
            aggregate_leaves=aggregate_leaves,
        )
        delta = run.delta
        measured_bytes = delta.tier_uplink_bytes() + (delta.subscriber_link_bytes,)
        measured_objects = tuple(tier.objects_received for tier in delta.tiers) + (
            delta.subscriber_objects_received,
        )
        model = fanout_model(count, updates, spec.tier_sizes(), bytes_per_update)
        latency = None
        if telemetry is not None and telemetry.spans is not None:
            latency = telemetry.spans.summary()
        samples.append(
            FanoutSample(
                subscribers=count,
                updates=updates,
                tier_names=tuple(tier.name for tier in spec.tiers) + ("subscribers",),
                measured_tier_bytes=measured_bytes,
                measured_tier_objects=measured_objects,
                measured_origin_objects=run.origin_objects,
                delivered_objects=run.delivered,
                model=model,
                events_scheduled=run.events_scheduled,
                pool_counters=run.pool_counters,
                compactions=run.compactions,
                latency=latency,
                link_batch_fallback_waves=run.link_batch_fallback_waves,
            )
        )
    return RelayFanoutResult(
        samples=samples,
        bytes_per_update=bytes_per_update,
        mid_relays=mid_relays,
        edge_per_mid=edge_per_mid,
    )
