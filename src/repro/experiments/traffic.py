"""E6 — update traffic: request/response polling vs. pub/sub pushes.

The paper's second benefit claim: pushing updates to subscribed resolvers
"reduces the number of RR requests ... thereby limiting update traffic" (§2,
§5).  The experiment runs one record with a given TTL and change interval
for a fixed period and counts, at the authoritative server:

* classic DNS — the number of queries received from a continuously
  interested recursive resolver (one per TTL expiry);
* DNS over MoQT — the subscribe+fetch exchange plus one pushed object per
  record change.

Both are compared against the closed-form traffic model, and the crossover
(pub/sub wins when records change less often than once per TTL; polling wins
for extremely hot records with long TTLs) is reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.traffic import TrafficComparison, traffic_comparison
from repro.core.mapping import DnsQuestionKey
from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.experiments.topology import SmallTopology, SmallTopologyConfig


@dataclass
class TrafficSample:
    """Measured and modelled message counts for one (TTL, change interval)."""

    ttl: int
    change_interval: float
    duration: float
    measured_polling_queries: int
    measured_pubsub_messages: int
    model: TrafficComparison

    @property
    def measured_reduction_factor(self) -> float:
        """Measured polling messages divided by pub/sub messages."""
        if self.measured_pubsub_messages <= 0:
            return float("inf")
        return self.measured_polling_queries / self.measured_pubsub_messages

    def as_row(self) -> dict[str, object]:
        """Row representation for report tables."""
        return {
            "ttl": self.ttl,
            "change_interval": self.change_interval,
            "duration": self.duration,
            "polling_msgs": self.measured_polling_queries,
            "pubsub_msgs": self.measured_pubsub_messages,
            "model_polling": self.model.polling,
            "model_pubsub": self.model.pubsub,
            "reduction_x": round(self.measured_reduction_factor, 2),
            "pubsub_wins": self.measured_pubsub_messages < self.measured_polling_queries,
        }


@dataclass
class TrafficResult:
    """All samples of the traffic experiment."""

    samples: list[TrafficSample]

    def rows(self) -> list[dict[str, object]]:
        """Table rows."""
        return [sample.as_row() for sample in self.samples]


def _measure_one(ttl: int, change_interval: float, duration: float) -> TrafficSample:
    config = SmallTopologyConfig(record_ttl=ttl)
    topology = SmallTopology(config)
    simulator = topology.simulator
    key = DnsQuestionKey(qname=Name.from_text(config.domain), qtype=RecordType.A)

    # Pub/sub side: the forwarder subscribes once.
    topology.forwarder.resolve(key, lambda message, version: None)
    # Polling side: a continuously interested classic stub re-queries right
    # after every TTL expiry.  Polling a whisker later than the TTL makes
    # every poll a guaranteed cache miss at the recursive resolver, which is
    # the "continuously interested resolver" the closed-form model assumes.
    poll_interval = ttl * 1.02 + 0.1

    def classic_poll() -> None:
        topology.classic_stub.cache.flush()
        topology.classic_stub.resolve(config.domain, "A", lambda outcome: None)
        simulator.call_later(poll_interval, classic_poll)

    classic_poll()
    topology.run(1.0)

    auth_queries_before = topology.classic_auth.statistics.queries
    moqt_pushes_before = topology.moqt_auth.statistics.updates_published if topology.moqt_auth else 0
    moqt_fetches_before = topology.moqt_auth.statistics.fetches_served if topology.moqt_auth else 0

    # Drive record changes for the measurement period.
    start = simulator.now
    changes = 0
    address_counter = 20
    next_change = start + change_interval
    while next_change <= start + duration:
        topology.run(next_change - simulator.now)
        address_counter += 1
        topology.update_record(f"192.0.2.{address_counter % 250 + 1}")
        changes += 1
        next_change += change_interval
    topology.run(start + duration - simulator.now + 1.0)

    measured_polling = topology.classic_auth.statistics.queries - auth_queries_before
    measured_pubsub = 0
    if topology.moqt_auth is not None:
        measured_pubsub = (
            topology.moqt_auth.statistics.updates_published
            - moqt_pushes_before
            + (topology.moqt_auth.statistics.fetches_served - moqt_fetches_before)
        )
    model = traffic_comparison(
        duration=duration,
        ttl=ttl,
        change_interval=change_interval,
        resolvers=1,
        include_setup=False,
    )
    return TrafficSample(
        ttl=ttl,
        change_interval=change_interval,
        duration=duration,
        measured_polling_queries=measured_polling,
        measured_pubsub_messages=measured_pubsub,
        model=model,
    )


def run_traffic(
    configurations: list[tuple[int, float]] | None = None, duration: float = 600.0
) -> TrafficResult:
    """Run the traffic experiment.

    ``configurations`` is a list of ``(ttl, change_interval)`` pairs; the
    defaults cover the regimes the paper discusses — records that change
    slower than their TTL (pub/sub wins) and records that change much faster
    (pub/sub pushes more messages than polling but keeps resolvers current).
    """
    pairs = configurations if configurations is not None else [
        (300, 3600.0),   # rarely changing record, typical TTL
        (60, 600.0),     # moderately changing record, low TTL
        (10, 30.0),      # CDN-style: TTL 10 s, changes every 30 s
        (300, 60.0),     # hot record changing faster than its TTL
    ]
    samples = [_measure_one(ttl, interval, duration) for ttl, interval in pairs]
    return TrafficResult(samples=samples)
