"""E1 — Fig. 1a: record-type coverage and TTL distribution of the top list.

The paper reports, for the Tranco top-10k resolved from one vantage point:
8435 domains with A records, 2870 with AAAA and 1835 with HTTPS, with TTLs
clustering at [20, 60, 300, 600, 1200, 3600] s and HTTPS almost exclusively
at 300 s.  This experiment runs the measurement campaign against the
synthetic top list and reports the same quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dns.types import RecordType
from repro.measurement.campaign import CampaignConfig, MeasurementCampaign, TtlDistributionResult
from repro.workload.toplist import SyntheticToplist, ToplistConfig

#: The totals reported in the paper for the top-10k population.
PAPER_TOTALS = {RecordType.A: 8435, RecordType.AAAA: 2870, RecordType.HTTPS: 1835}


@dataclass
class Fig1aResult:
    """Measured Fig. 1a data plus the paper's reference totals."""

    population: int
    distribution: TtlDistributionResult
    paper_totals: dict[RecordType, int]

    def total_rows(self) -> list[dict[str, object]]:
        """Rows comparing measured and paper record-type totals."""
        scale = self.population / 10_000
        rows = []
        for rdtype in (RecordType.A, RecordType.AAAA, RecordType.HTTPS):
            rows.append(
                {
                    "type": rdtype.to_text(),
                    "measured": self.distribution.totals.get(rdtype, 0),
                    "paper": round(self.paper_totals[rdtype] * scale),
                    "measured_fraction": self.distribution.fraction(rdtype),
                    "paper_fraction": self.paper_totals[rdtype] / 10_000,
                }
            )
        return rows

    def ttl_rows(self) -> list[dict[str, object]]:
        """Per-type TTL histogram rows."""
        return self.distribution.rows()

    def https_share_at_300(self) -> float:
        """Share of HTTPS records with a TTL of exactly 300 s."""
        histogram = self.distribution.histograms.get(RecordType.HTTPS, {})
        total = sum(histogram.values())
        if total == 0:
            return 0.0
        return histogram.get(300, 0) / total


def run_fig1a(population: int = 10_000, seed: int = 20250624) -> Fig1aResult:
    """Run the Fig. 1a experiment for a toplist of the given size."""
    toplist = SyntheticToplist(ToplistConfig(size=population, seed=seed))
    campaign = MeasurementCampaign(toplist, config=CampaignConfig())
    distribution = campaign.ttl_distribution()
    return Fig1aResult(
        population=population, distribution=distribution, paper_totals=dict(PAPER_TOTALS)
    )
