"""E14 — origin failover: replicated origin with in-band promote-on-detect.

E13 proved the tree survives any *relay* dying silently; the origin was
still the single point of failure — the one node `report_failure` treated
as indestructible.  This experiment closes the last gap with the same
zero-control-plane discipline:

* the origin is an :class:`~repro.relaynet.origincluster.OriginCluster`
  (one active + warm standbys, each standby's track cache kept current by
  a live MoQT subscription to the active);
* the active is crashed **silently**
  (:meth:`~repro.relaynet.origincluster.OriginCluster.crash_active` — no
  close frames, nobody told); updates keep being pushed into the dead
  active during the outage (they reach nobody — the publisher-side replay
  ring is their only copy);
* the tier-0 relays' keepalive'd uplinks notice through consecutive probe
  timeouts (the PTO-suspect path of E13) and the first detector's report
  (:meth:`~repro.relaynet.topology.RelayTopology.report_origin_failure`)
  runs the deterministic epoch-numbered election: the lowest-index alive
  standby is promoted, the replay ring tops its warm cache up with the
  outage window, and every tier-0 uplink switches to the promoted origin
  over its pre-established link with a gap FETCH against the warm cache.

Measured and checked against :mod:`repro.analysis.promotion`
(= detection + election + the 3-RTT re-attach floor):

* detection latency — from the silent crash to the first in-band report,
  predicted from every tier-0 uplink's transport state snapshotted at
  crash time (first detector wins, exactly like the implementation);
* promotion latency — crash to the last tier-0 relay re-subscribed through
  the promoted standby (the whole population below tier 0 rides along
  untouched, which is what makes origin replication free at CDN scale);
* gapless delivery — every subscriber's sequence is exactly the published
  one across the origin swap, outage-window objects included;
* zero control-plane signals, zero false-positive failovers, exactly one
  epoch step.

Everything runs on the deterministic simulator: repeated runs with the
same seed produce identical detection latencies, delivery sequences and
promotion timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.promotion import PromotionModel, promotion_model
from repro.experiments.failure_detection import MODEL_TOLERANCE, _snapshot_models
from repro.experiments.relay_fanout import (
    ORIGIN_HOST,
    ORIGIN_PORT,
    TRACK,
    UPDATE_INTERVAL,
    _update_payload,
)
from repro.moqt.objectmodel import MoqtObject
from repro.moqt.relay import MOQT_ALPN
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.netsim.trace import NullTraceRecorder
from repro.quic.connection import ConnectionConfig
from repro.relaynet import FailoverEvent, OriginCluster, RelayTreeSpec
from repro.relaynet.topology import RelayTopology
from repro.telemetry import Telemetry
from repro.telemetry.collect import collect_run


@dataclass
class OriginFailoverResult:
    """Outcome of the E14 experiment."""

    subscribers: int
    updates: int
    origins: int
    #: The promotion failover event (None when detection never fired —
    #: itself a failure the checks surface).
    event: FailoverEvent | None
    #: Cluster epoch after the run (must be exactly 1: one death, one
    #: promotion, no re-elections).
    epoch: int
    promotions: int
    crashed_at: float
    #: Which in-band signal the first detector raised.
    detected_via: str
    #: Measured and predicted crash → first-report latency.
    detection_latency: float | None
    model: PromotionModel
    #: Measured crash → last tier-0 SUBSCRIBE_OK through the new active.
    promotion_latency: float | None
    #: Tier-0 relays re-pointed by the promotion.
    reattached_relays: int
    #: Outage-window objects the replay ring seeded into the new active.
    replayed_objects: int
    gapless_subscribers: int
    delivered_objects: int
    expected_objects: int
    duplicates_dropped: int
    recovery_fetches: int
    recovered_objects: int
    #: Failover events whose node was never actually crashed (must be 0).
    false_positive_events: int
    #: Control-plane kill signals issued (must be 0 — that is the point).
    control_plane_kills: int
    #: Per-subscriber delivered group sequences (determinism canary).
    delivery_sequences: dict[int, list[int]] = field(default_factory=dict)
    events: list[FailoverEvent] = field(default_factory=list)

    @property
    def gapless(self) -> bool:
        """Whether every subscriber saw a perfect sequence across the swap."""
        return self.gapless_subscribers == self.subscribers

    @property
    def detection_model_ok(self) -> bool:
        """Whether the measured detection matches the closed form."""
        return (
            self.detection_latency is not None
            and self.detected_via == self.model.path
            and abs(self.detection_latency - self.model.detection_latency)
            <= MODEL_TOLERANCE
        )

    @property
    def promotion_model_ok(self) -> bool:
        """Whether the measured promotion matches detection + election +
        the 3-RTT re-attach floor, for every re-pointed tier-0 relay."""
        if self.event is None or self.promotion_latency is None:
            return False
        latencies = [
            record.reattach_latency
            for record in self.event.orphans("relay")
            if record.reattach_latency is not None
        ]
        if len(latencies) != self.reattached_relays or not latencies:
            return False
        floor = self.model.reattach_latency
        if any(abs(latency - floor) > MODEL_TOLERANCE for latency in latencies):
            return False
        return (
            abs(self.promotion_latency - self.model.promotion_latency)
            <= MODEL_TOLERANCE
        )

    def rows(self) -> list[dict[str, object]]:
        """Per-phase rows: detection, election, re-attach, end-to-end."""
        detect = self.detection_latency if self.detection_latency is not None else -1.0
        promo = self.promotion_latency if self.promotion_latency is not None else -1.0
        return [
            {
                "phase": "detect",
                "via": self.detected_via,
                "measured_ms": round(detect * 1000, 3),
                "model_ms": round(self.model.detection_latency * 1000, 3),
            },
            {
                "phase": "elect",
                "via": f"epoch {self.epoch}",
                "measured_ms": 0.0,
                "model_ms": round(self.model.election_latency * 1000, 3),
            },
            {
                "phase": "reattach",
                "via": f"{self.reattached_relays} tier-0 uplinks",
                "measured_ms": round((promo - detect) * 1000, 3)
                if promo >= 0 and detect >= 0
                else -1.0,
                "model_ms": round(self.model.reattach_latency * 1000, 3),
            },
            {
                "phase": "promotion",
                "via": "end-to-end",
                "measured_ms": round(promo * 1000, 3),
                "model_ms": round(self.model.promotion_latency * 1000, 3),
            },
        ]

    def summary_row(self) -> dict[str, object]:
        """Headline row for reports."""
        return {
            "subscribers": self.subscribers,
            "updates": self.updates,
            "origins": self.origins,
            "epoch": self.epoch,
            "control_plane_kills": self.control_plane_kills,
            "delivered": self.delivered_objects,
            "expected": self.expected_objects,
            "gapless_subs": self.gapless_subscribers,
            "detect_ms": round(
                (self.detection_latency if self.detection_latency is not None else -1.0)
                * 1000,
                3,
            ),
            "promotion_ms": round(
                (self.promotion_latency if self.promotion_latency is not None else -1.0)
                * 1000,
                3,
            ),
            "detection_ok": self.detection_model_ok,
            "promotion_ok": self.promotion_model_ok,
            "replayed": self.replayed_objects,
            "recovery_fetches": self.recovery_fetches,
        }


def run_origin_failover(
    subscribers: int = 1000,
    mid_relays: int = 4,
    edge_per_mid: int = 4,
    origins: int = 2,
    updates_before: int = 4,
    updates_between: int = 6,
    updates_after: int = 6,
    payload_size: int = 300,
    seed: int = 31,
    keepalive_interval: float = 0.5,
    telemetry: Telemetry | None = None,
    aggregate_leaves: bool = False,
) -> OriginFailoverResult:
    """Silently crash the active origin under a live CDN tree; promote in-band.

    The stream pushes ``updates_before`` objects, silently crashes the
    active origin, keeps pushing ``updates_between`` more into the dead
    active (the replay ring is their only copy until the promotion seeds
    them into the standby), pushes ``updates_after`` after recovery has had
    time to run, and drains.  No control-plane signal is ever issued: the
    tier-0 relays' keepalive'd uplinks are the only detectors.

    Subscriber connections keep their default (long) idle timeout: the
    subscribers' leaves never die in this scenario, so nothing below tier 0
    should ever trigger — any failover event except the origin promotion
    counts as a false positive.
    """
    simulator = Simulator(seed=seed)
    network = Network(simulator, trace=NullTraceRecorder(simulator), telemetry=telemetry)
    if telemetry is not None and telemetry.spans is not None:
        telemetry.spans.clear()
    spec = RelayTreeSpec.cdn(
        mid_relays=mid_relays, edge_per_mid=edge_per_mid, origins=origins
    )
    cluster = OriginCluster(
        network, origins=spec.origins, standby_link=spec.tiers[0].uplink
    )
    topology = RelayTopology(
        network,
        Address(ORIGIN_HOST, ORIGIN_PORT),
        spec,
        uplink_connection=ConnectionConfig(
            alpn_protocols=(MOQT_ALPN,), keepalive_interval=keepalive_interval
        ),
        origin_cluster=cluster,
        aggregate_leaves=aggregate_leaves,
    )
    topology.attach_subscribers(subscribers)
    received: dict[int, list[int]] = {sub.index: [] for sub in topology.subscribers}
    if aggregate_leaves:
        topology.on_subscriber_split = lambda member, rep: received.__setitem__(
            member.index, list(received[rep.index])
        )
    topology.subscribe_all(
        TRACK, on_object=lambda sub, obj: received[sub.index].append(obj.group_id)
    )
    simulator.run(until=simulator.now + 1.0)

    next_group = 2

    def push(count: int) -> None:
        nonlocal next_group
        for _ in range(count):
            cluster.push(
                MoqtObject(
                    group_id=next_group,
                    object_id=0,
                    payload=_update_payload(next_group, payload_size),
                )
            )
            next_group += 1
            simulator.run(until=simulator.now + UPDATE_INTERVAL)

    push(updates_before)
    # Snapshot every tier-0 uplink's detector state, then crash silently.
    # The model takes the earliest predicted signal across the tier —
    # first detector wins, exactly like the implementation.
    victim = cluster.active
    models = _snapshot_models(
        [node.relay.upstream_quic_connection for node in topology.tiers[0]],
        simulator.now,
    )
    crashed_at = simulator.now
    cluster.crash_active()
    model = promotion_model(
        min(models, key=lambda m: m.detected_at),
        spec.tiers[0].uplink.delay,
        topology.session_config.alpn_version_negotiation,
    )
    push(updates_between)
    push(updates_after)
    simulator.run(until=simulator.now + 3.0)

    if aggregate_leaves:
        from repro.relaynet import expand_member_sequences

        received = expand_member_sequences(topology, received)
    updates = updates_before + updates_between + updates_after
    expected_sequence = list(range(2, updates + 2))
    gapless = sum(1 for groups in received.values() if groups == expected_sequence)
    delivered = sum(len(groups) for groups in received.values())

    event = victim.failure_event
    detection_latency = event.detection_latency if event is not None else None
    promotion_latency = None
    reattached = 0
    if event is not None:
        reattach_times = [
            record.reattached_at
            for record in event.orphans("relay")
            if record.reattached_at is not None
        ]
        reattached = len(reattach_times)
        if reattach_times:
            promotion_latency = max(reattach_times) - crashed_at
    false_positives = sum(
        1 for run_event in topology.events if run_event is not event
    )
    control_plane_kills = sum(
        1 for run_event in topology.events if run_event.cause in ("kill", "leave")
    )
    nodes = topology.nodes()
    if telemetry is not None:
        collect_run(telemetry.metrics, network, topology, origin_cluster=cluster)
    return OriginFailoverResult(
        subscribers=subscribers,
        updates=updates,
        origins=origins,
        event=event,
        epoch=cluster.epoch,
        promotions=len(cluster.promotions),
        crashed_at=crashed_at,
        detected_via=event.detected_via if event is not None else "",
        detection_latency=detection_latency,
        model=model,
        promotion_latency=promotion_latency,
        reattached_relays=reattached,
        replayed_objects=sum(p.replayed_objects for p in cluster.promotions),
        gapless_subscribers=gapless,
        delivered_objects=delivered,
        expected_objects=subscribers * updates,
        duplicates_dropped=sum(
            node.relay.statistics.duplicate_objects_dropped for node in nodes
        )
        + sum(sub.duplicates_dropped * sub.multiplicity for sub in topology.subscribers),
        recovery_fetches=sum(node.relay.statistics.recovery_fetches for node in nodes),
        recovered_objects=sum(node.relay.statistics.recovered_objects for node in nodes),
        false_positive_events=false_positives,
        control_plane_kills=control_plane_kills,
        delivery_sequences=received,
        events=list(topology.events),
    )
