"""Experiment drivers: one module per figure / quantitative claim of the paper.

Every experiment follows the same pattern: build a topology on the
discrete-event simulator (or take the workload models directly), run the
scenario, and return a small result dataclass whose fields correspond to the
rows/series the paper reports.  The benchmarks in ``benchmarks/`` call these
drivers; ``EXPERIMENTS.md`` records paper-vs-measured for each.

| Experiment | Paper artefact | Module |
|---|---|---|
| E1 | Fig. 1a TTL distribution | :mod:`repro.experiments.fig1a` |
| E2 | Fig. 1b change rates | :mod:`repro.experiments.fig1b` |
| E3 | Fig. 2 lookup sequence | :mod:`repro.experiments.fig2_sequence` |
| E4 | §5.2 query latency | :mod:`repro.experiments.query_latency` |
| E5 | §2/§5 update timeliness | :mod:`repro.experiments.staleness` |
| E6 | §2/§5 update traffic | :mod:`repro.experiments.traffic` |
| E7/E8 | §5.3 use-case estimates | :mod:`repro.experiments.usecases` |
| E9 | §5.1 state overhead | :mod:`repro.experiments.state_overhead` |
| E10 | §4.5 compatibility | :mod:`repro.experiments.compatibility` |
| E11 | §3/§5.3 relay fan-out | :mod:`repro.experiments.relay_fanout` |
"""

from repro.experiments.topology import SmallTopology, SmallTopologyConfig
from repro.experiments.report import format_table

__all__ = ["SmallTopology", "SmallTopologyConfig", "format_table"]
