"""E9 — §5.1: state-management overhead and subscription teardown policies.

Classic DNS over UDP keeps no connection state; DNS over MoQT keeps a QUIC
connection and MoQT session per upstream plus one subscription per tracked
question.  The experiment subscribes a resolver to a configurable number of
questions, measures its state counters, converts them to approximate bytes
with the analytical state model, and then compares the teardown policies of
§4.4 on a synthetic lookup history (how much state each retains and how many
re-subscriptions it would force).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.state_overhead import StateModel, endpoint_state_bytes, state_comparison
from repro.core.mapping import DnsQuestionKey
from repro.core.subscription import (
    AdaptivePolicy,
    IdleTimeoutPolicy,
    LruBudgetPolicy,
    NeverTearDown,
    SubscriptionRegistry,
    TeardownPolicy,
)
from repro.dns.name import Name
from repro.dns.types import RecordType


@dataclass
class PolicyOutcome:
    """How one teardown policy behaves on the synthetic lookup history."""

    policy: str
    tracked_at_end: int
    torn_down: int
    forced_resubscriptions: int
    state_bytes: int

    def as_row(self) -> dict[str, object]:
        """Row representation for report tables."""
        return {
            "policy": self.policy,
            "tracked": self.tracked_at_end,
            "torn_down": self.torn_down,
            "re_subscriptions": self.forced_resubscriptions,
            "state_kib": round(self.state_bytes / 1024, 1),
        }


@dataclass
class StateOverheadResult:
    """Per-policy outcomes plus the classic-vs-MoQT comparison."""

    policies: list[PolicyOutcome]
    classic_vs_moqt: dict[str, int]
    questions: int

    def rows(self) -> list[dict[str, object]]:
        """Table rows."""
        return [outcome.as_row() for outcome in self.policies]


def _question(index: int) -> DnsQuestionKey:
    return DnsQuestionKey(
        qname=Name.from_text(f"site{index:05d}.com."), qtype=RecordType.A
    )


def _run_policy(
    policy: TeardownPolicy,
    questions: int,
    duration: float,
    lookups_per_question: dict[int, list[float]],
    model: StateModel,
    upstream_servers: int,
) -> PolicyOutcome:
    registry = SubscriptionRegistry(policy)
    forced_resubscriptions = 0
    events: list[tuple[float, int]] = [
        (time, index)
        for index, times in lookups_per_question.items()
        for time in times
    ]
    events.sort()
    maintenance_interval = duration / 50.0
    next_maintenance = maintenance_interval
    torn_down = 0
    for time, index in events:
        while time >= next_maintenance:
            torn_down += len(registry.collect_victims(next_maintenance))
            next_maintenance += maintenance_interval
        key = _question(index)
        if registry.get(key) is None and registry.last_known_group(key) is not None:
            forced_resubscriptions += 1
        registry.record_lookup(key, time)
        registry.record_update(key, time, group_id=int(time))
    torn_down += len(registry.collect_victims(duration))
    state_bytes = endpoint_state_bytes(
        connections=upstream_servers,
        sessions=upstream_servers,
        subscriptions=registry.state_size(),
        cache_entries=registry.state_size(),
        model=model,
    )
    return PolicyOutcome(
        policy=policy.name,
        tracked_at_end=registry.state_size(),
        torn_down=torn_down,
        forced_resubscriptions=forced_resubscriptions,
        state_bytes=state_bytes,
    )


def run_state_overhead(
    questions: int = 1000,
    duration: float = 86_400.0,
    seed: int = 11,
    upstream_servers: int = 8,
) -> StateOverheadResult:
    """Run the state-overhead experiment.

    A synthetic one-day lookup history is generated with Zipf-like skew (a
    few hot questions looked up many times, a long tail looked up once or
    twice), then each §4.4 policy is replayed over it.
    """
    rng = random.Random(seed)
    lookups_per_question: dict[int, list[float]] = {}
    for index in range(questions):
        # Rank-dependent lookup counts: hot questions get many lookups.
        rate = max(1, int(50 / (1 + index // 20)))
        times = sorted(rng.uniform(0, duration) for _ in range(rate))
        lookups_per_question[index] = times

    model = StateModel()
    policies: list[TeardownPolicy] = [
        NeverTearDown(),
        IdleTimeoutPolicy(idle_timeout=3600.0),
        LruBudgetPolicy(budget=max(10, questions // 4)),
        AdaptivePolicy(base_retention=600.0),
    ]
    outcomes = [
        _run_policy(policy, questions, duration, lookups_per_question, model, upstream_servers)
        for policy in policies
    ]
    return StateOverheadResult(
        policies=outcomes,
        classic_vs_moqt=state_comparison(questions, upstream_servers, model),
        questions=questions,
    )
