"""E3 — Fig. 2: the recursive DNS-over-MoQT lookup sequence.

The experiment runs one cold lookup through the full chain (forwarder →
recursive resolver → root → TLD → authoritative server), captures the MoQT
operations each hop performs, and reports the sequence together with the
end-to-end timing.  It also verifies the structural properties of Fig. 2:
three subscribe+fetch operations upstream of the recursive resolver, one
downstream of the stub, and a pushed update flowing back without any further
requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.mapping import DnsQuestionKey
from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.experiments.topology import SmallTopology, SmallTopologyConfig


@dataclass
class SequenceStep:
    """One observable step of the lookup sequence."""

    time: float
    actor: str
    action: str
    detail: str

    def as_row(self) -> dict[str, object]:
        """Row representation for report tables."""
        return {
            "time_ms": round(self.time * 1000, 3),
            "actor": self.actor,
            "action": self.action,
            "detail": self.detail,
        }


@dataclass
class Fig2Result:
    """The recorded lookup sequence and its headline numbers."""

    steps: list[SequenceStep]
    lookup_latency: float
    answer_addresses: list[str]
    upstream_subscribe_fetch_operations: int
    push_latency: float | None = None

    def rows(self) -> list[dict[str, object]]:
        """The sequence as table rows."""
        return [step.as_row() for step in self.steps]


def run_fig2(config: SmallTopologyConfig | None = None) -> Fig2Result:
    """Run the Fig. 2 lookup-sequence experiment."""
    topology = SmallTopology(config)
    simulator = topology.simulator
    steps: list[SequenceStep] = []
    key = DnsQuestionKey(
        qname=Name.from_text(topology.config.domain), qtype=RecordType.A
    )

    results: list[tuple[float, list[str]]] = []
    started_at = simulator.now
    steps.append(
        SequenceStep(simulator.now, "stub", "query", f"{topology.config.domain} A via forwarder")
    )

    def on_answer(message, version) -> None:
        addresses = [record.rdata.to_text() for record in message.answers] if message else []
        results.append((simulator.now - started_at, addresses))
        steps.append(
            SequenceStep(
                simulator.now, "stub", "answer", f"RR {addresses} (version {version})"
            )
        )

    topology.forwarder.resolve(key, on_answer)
    topology.run(5.0)

    # Reconstruct the upstream operations from the resolver/auth statistics.
    recursive = topology.moqt_recursive
    for index, upstream in enumerate(("root", "TLD", f"{topology.zone_apex} auth")):
        steps.insert(
            1 + index,
            SequenceStep(
                started_at,
                "recursive",
                "subscribe+fetch",
                f"level {index + 1}: {upstream}",
            ),
        )

    push_latency = None
    pushes: list[float] = []
    topology.forwarder.on_record_updated.append(
        lambda _key, record: pushes.append(simulator.now)
    )
    change_time = simulator.now
    topology.update_record("192.0.2.99")
    steps.append(SequenceStep(change_time, "auth", "update record", "www A -> 192.0.2.99"))
    topology.run(2.0)
    if pushes:
        push_latency = pushes[0] - change_time
        steps.append(
            SequenceStep(pushes[0], "stub", "pushed update", f"new version after {push_latency * 1000:.1f} ms")
        )

    latency, addresses = results[0] if results else (float("nan"), [])
    return Fig2Result(
        steps=steps,
        lookup_latency=latency,
        answer_addresses=addresses,
        upstream_subscribe_fetch_operations=recursive.statistics.upstream_subscribe_fetch,
        push_latency=push_latency,
    )
