"""E10 — §4.5: incremental deployment and fallback to traditional DNS.

The experiment runs the MoQT resolver chain against an authoritative server
that does **not** support MoQT and checks the two §4.5 behaviours:

* the happy-eyeballs race still resolves the name (over classic UDP), and
  first-lookup latency stays close to pure UDP;
* in *decline* mode the stub's subscription is rejected with
  SUBSCRIBE_ERROR and no pushes arrive;
* in *periodic-refresh* mode the subscription is accepted, the recursive
  resolver re-requests the record once per TTL over UDP, and a changed record
  still reaches the subscribed stub — within one TTL rather than one
  propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compatibility import CompatibilityMode
from repro.core.mapping import DnsQuestionKey
from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.experiments.topology import SmallTopology, SmallTopologyConfig


@dataclass
class CompatibilityOutcome:
    """Result of one compatibility scenario."""

    mode: str
    resolved: bool
    lookup_latency: float
    answer_via_udp_fallback: bool
    update_delivered: bool
    update_latency: float | None

    def as_row(self) -> dict[str, object]:
        """Row representation for report tables."""
        return {
            "mode": self.mode,
            "resolved": self.resolved,
            "lookup_ms": round(self.lookup_latency * 1000, 2),
            "udp_fallback": self.answer_via_udp_fallback,
            "update_delivered": self.update_delivered,
            "update_latency_s": (
                round(self.update_latency, 3) if self.update_latency is not None else None
            ),
        }


@dataclass
class CompatibilityResult:
    """Outcomes of all compatibility scenarios."""

    outcomes: list[CompatibilityOutcome]
    moqt_baseline_update_latency: float | None

    def rows(self) -> list[dict[str, object]]:
        """Table rows."""
        return [outcome.as_row() for outcome in self.outcomes]

    def outcome(self, mode: str) -> CompatibilityOutcome:
        """Look up one scenario by mode name."""
        for candidate in self.outcomes:
            if candidate.mode == mode:
                return candidate
        raise KeyError(mode)


def _run_scenario(
    mode: CompatibilityMode, ttl: int, moqt_on_auth: bool
) -> CompatibilityOutcome:
    config = SmallTopologyConfig(
        record_ttl=ttl,
        moqt_on_auth=moqt_on_auth,
        happy_eyeballs=True,
        compatibility_mode=mode,
    )
    topology = SmallTopology(config)
    simulator = topology.simulator
    key = DnsQuestionKey(qname=Name.from_text(config.domain), qtype=RecordType.A)

    lookup_results: list[tuple[float, bool]] = []
    started = simulator.now
    topology.forwarder.resolve(
        key,
        lambda message, version: lookup_results.append(
            (simulator.now - started, message is not None)
        ),
    )
    topology.run(5.0)

    entry = topology.moqt_recursive.record(key)
    via_udp = entry is not None and not entry.via_moqt

    update_times: list[float] = []
    topology.forwarder.on_record_updated.append(
        lambda _key, record: update_times.append(simulator.now)
    )
    change_time = simulator.now
    topology.update_record("192.0.2.123")
    topology.run(ttl * 2.0 + 5.0)

    latency, resolved = lookup_results[0] if lookup_results else (float("nan"), False)
    return CompatibilityOutcome(
        mode=f"{mode.value}{'' if moqt_on_auth else ' (auth UDP-only)'}",
        resolved=resolved,
        lookup_latency=latency,
        answer_via_udp_fallback=via_udp,
        update_delivered=bool(update_times),
        update_latency=(update_times[0] - change_time) if update_times else None,
    )


def run_compatibility(ttl: int = 30) -> CompatibilityResult:
    """Run the compatibility scenarios.

    The MoQT-everywhere case is included as the baseline so the table shows
    how much update timeliness the fallback sacrifices (one TTL instead of
    one propagation delay).
    """
    baseline = _run_scenario(CompatibilityMode.PERIODIC_REFRESH, ttl, moqt_on_auth=True)
    decline = _run_scenario(CompatibilityMode.DECLINE_SUBSCRIPTION, ttl, moqt_on_auth=False)
    refresh = _run_scenario(CompatibilityMode.PERIODIC_REFRESH, ttl, moqt_on_auth=False)
    outcomes = [
        CompatibilityOutcome(
            mode="moqt-everywhere (baseline)",
            resolved=baseline.resolved,
            lookup_latency=baseline.lookup_latency,
            answer_via_udp_fallback=baseline.answer_via_udp_fallback,
            update_delivered=baseline.update_delivered,
            update_latency=baseline.update_latency,
        ),
        decline,
        refresh,
    ]
    return CompatibilityResult(
        outcomes=outcomes, moqt_baseline_update_latency=baseline.update_latency
    )
