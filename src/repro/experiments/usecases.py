"""E7/E8 — the §5.3 use-case estimates, plus a simulation cross-check.

The closed-form estimators reproduce the paper's numbers (≈5.5 Gbit/s of
global DDNS update traffic, ≈240 kbit/s of per-stub CDN update traffic).  A
small-scale simulation pushes real MoQT objects through the stack for a
scaled-down CDN scenario and checks that the measured per-stub update
bitrate matches the closed form, which validates extrapolating the formula.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.usecases import (
    UseCaseEstimate,
    cdn_stub_traffic_bps,
    ddns_update_traffic_bps,
    deep_space_update_traffic_bps,
)
from repro.core.mapping import DnsQuestionKey
from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.experiments.topology import SmallTopology, SmallTopologyConfig

#: The figures quoted in §5.3 of the paper.
PAPER_DDNS_GBPS = 5.5
PAPER_CDN_STUB_KBPS = 240.0


@dataclass
class UseCaseResult:
    """Closed-form estimates plus the simulation cross-check."""

    ddns: UseCaseEstimate
    cdn_stub: UseCaseEstimate
    deep_space: UseCaseEstimate
    simulated_cdn_domains: int
    simulated_cdn_duration: float
    simulated_cdn_update_bytes: int
    simulated_cdn_bps: float
    predicted_small_scale_bps: float

    def rows(self) -> list[dict[str, object]]:
        """Summary rows for report tables."""
        return [
            {
                "scenario": "ddns-global",
                "estimate": f"{self.ddns.gbps:.2f} Gbps",
                "paper": f"{PAPER_DDNS_GBPS:.1f} Gbps",
            },
            {
                "scenario": "cdn-per-stub",
                "estimate": f"{self.cdn_stub.kbps:.0f} kbps",
                "paper": f"{PAPER_CDN_STUB_KBPS:.0f} kbps",
            },
            {
                "scenario": "deep-space",
                "estimate": f"{self.deep_space.kbps:.2f} kbps",
                "paper": "(throttled; no figure given)",
            },
            {
                "scenario": "cdn-simulated-small-scale",
                "estimate": f"{self.simulated_cdn_bps / 1e3:.2f} kbps",
                "paper": f"model: {self.predicted_small_scale_bps / 1e3:.2f} kbps",
            },
        ]

    @property
    def cdn_simulation_relative_error(self) -> float:
        """Relative deviation of the simulated bitrate from the closed form."""
        if self.predicted_small_scale_bps == 0:
            return 0.0
        return abs(self.simulated_cdn_bps - self.predicted_small_scale_bps) / (
            self.predicted_small_scale_bps
        )


def _simulate_cdn_stub(
    domains: int, update_interval: float, duration: float
) -> tuple[int, float]:
    """Push updates for several subscribed domains and measure stub bytes.

    Uses one domain track per simulated topology for isolation from the other
    experiments; the per-domain byte counts add up linearly, so the result is
    ``domains`` times the single-domain measurement.
    """
    config = SmallTopologyConfig(record_ttl=int(update_interval))
    topology = SmallTopology(config)
    simulator = topology.simulator
    key = DnsQuestionKey(qname=Name.from_text(config.domain), qtype=RecordType.A)
    topology.forwarder.resolve(key, lambda message, version: None)
    topology.run(2.0)

    forwarder_session = topology.forwarder.sessions.get_session(
        topology.forwarder.upstream_address
    )
    bytes_before = forwarder_session.statistics.object_bytes_received
    start = simulator.now
    address_counter = 0
    next_change = start + update_interval
    while next_change <= start + duration:
        topology.run(next_change - simulator.now)
        address_counter += 1
        topology.update_record(f"198.51.100.{address_counter % 250 + 1}")
        next_change += update_interval
    topology.run(start + duration - simulator.now + 1.0)
    bytes_received = forwarder_session.statistics.object_bytes_received - bytes_before
    per_domain_bps = bytes_received * 8.0 / duration
    return bytes_received * domains, per_domain_bps * domains


def run_usecases(
    simulated_domains: int = 20,
    simulated_update_interval: float = 10.0,
    simulated_duration: float = 120.0,
) -> UseCaseResult:
    """Compute the §5.3 estimates and run the small-scale CDN cross-check."""
    ddns = ddns_update_traffic_bps()
    cdn = cdn_stub_traffic_bps()
    deep_space = deep_space_update_traffic_bps()
    update_bytes, simulated_bps = _simulate_cdn_stub(
        simulated_domains, simulated_update_interval, simulated_duration
    )
    # The closed form for the scaled-down scenario uses the actual observed
    # object size (DNS response + MoQT framing) rather than the paper's
    # assumed 300 B.
    updates = int(simulated_duration // simulated_update_interval)
    observed_update_size = (
        update_bytes / (simulated_domains * updates) if updates else 0.0
    )
    predicted_small = cdn_stub_traffic_bps(
        subscribed_domains=simulated_domains,
        update_interval_seconds=simulated_update_interval,
        update_size_bytes=observed_update_size,
    ).bits_per_second
    return UseCaseResult(
        ddns=ddns,
        cdn_stub=cdn,
        deep_space=deep_space,
        simulated_cdn_domains=simulated_domains,
        simulated_cdn_duration=simulated_duration,
        simulated_cdn_update_bytes=update_bytes,
        simulated_cdn_bps=simulated_bps,
        predicted_small_scale_bps=predicted_small,
    )
