"""E4 — §5.2: query latency of classic DNS vs. DNS over MoQT.

Scenarios measured on the simulated stack and predicted by the analytical
round-trip model:

* ``udp-first``      — classic stub → recursive with a cold cache (1 RTT to
  the recursive + 1 RTT per authority);
* ``udp-cached``     — classic stub → recursive with a warm cache;
* ``moqt-cold``      — first MoQT lookup ever: 3 RTTs per hop (QUIC + MoQT
  session + subscription);
* ``moqt-reused``    — sessions already established end to end, record not
  cached: 1 RTT per hop;
* ``moqt-0rtt``      — sessions previously established but closed; 0-RTT
  resumption: 2 RTTs per hop with today's MoQT;
* ``moqt-0rtt-alpn`` — 0-RTT plus ALPN-based version negotiation (future
  MoQT): 1 RTT per hop;
* ``moqt-pushed``    — the record is already subscribed at the forwarder:
  no network traffic at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.latency_model import TransportScenario, recursive_lookup_latency
from repro.core.mapping import DnsQuestionKey
from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.experiments.topology import SmallTopology, SmallTopologyConfig

#: Number of authority levels contacted on a cold lookup (root, TLD, auth).
AUTHORITY_LEVELS = 3


@dataclass
class LatencyMeasurement:
    """One scenario's measured and predicted latency."""

    scenario: str
    measured: float
    predicted: float

    @property
    def relative_error(self) -> float:
        """Relative deviation of measurement from prediction."""
        if self.predicted == 0:
            return 0.0 if self.measured == 0 else float("inf")
        return abs(self.measured - self.predicted) / self.predicted

    def as_row(self) -> dict[str, object]:
        """Row representation for report tables."""
        return {
            "scenario": self.scenario,
            "measured_ms": round(self.measured * 1000, 3),
            "predicted_ms": round(self.predicted * 1000, 3),
            "relative_error": round(self.relative_error, 4),
        }


@dataclass
class QueryLatencyResult:
    """All scenario measurements for one (stub RTT, upstream RTT) point."""

    stub_rtt: float
    upstream_rtt: float
    measurements: list[LatencyMeasurement]

    def rows(self) -> list[dict[str, object]]:
        """Table rows."""
        return [measurement.as_row() for measurement in self.measurements]

    def measurement(self, scenario: str) -> LatencyMeasurement:
        """Look up one scenario by name."""
        for candidate in self.measurements:
            if candidate.scenario == scenario:
                return candidate
        raise KeyError(scenario)


def _question(topology: SmallTopology) -> DnsQuestionKey:
    return DnsQuestionKey(qname=Name.from_text(topology.config.domain), qtype=RecordType.A)


def _measure_classic(topology: SmallTopology, warm_cache: bool) -> float:
    results: list[float] = []
    if warm_cache:
        topology.classic_stub.resolve(topology.config.domain, "A", lambda outcome: None)
        topology.run(5.0)
    # Use a fresh stub cache for the measured query so only the recursive
    # resolver's cache state differs between cold and warm runs.
    topology.classic_stub.cache.flush()
    started = topology.simulator.now
    topology.classic_stub.resolve(
        topology.config.domain, "A", lambda outcome: results.append(topology.simulator.now - started)
    )
    topology.run(5.0)
    return results[0] if results else float("nan")


def _measure_moqt(topology: SmallTopology, scenario: str) -> float:
    key = _question(topology)
    if scenario in ("moqt-reused", "moqt-pushed"):
        # Warm everything up with a first lookup.
        topology.forwarder.resolve(key, lambda message, version: None)
        topology.run(5.0)
    if scenario == "moqt-reused":
        # Drop the cached records but keep sessions: forces subscribe+fetch
        # over existing sessions at every hop.
        topology.forwarder._records.clear()  # noqa: SLF001 - experiment reaches into state
        topology.forwarder._in_flight.clear()  # noqa: SLF001
        topology.moqt_recursive._records.clear()  # noqa: SLF001
    if scenario in ("moqt-0rtt", "moqt-0rtt-alpn"):
        # Establish sessions once (collecting tickets), then close them so the
        # next lookup resumes with 0-RTT.
        topology.forwarder.resolve(key, lambda message, version: None)
        topology.run(5.0)
        topology.forwarder.sessions.close_all()
        topology.moqt_recursive.sessions.close_all()
        topology.forwarder._records.clear()  # noqa: SLF001
        topology.moqt_recursive._records.clear()  # noqa: SLF001
        topology.run(1.0)
    results: list[float] = []
    started = topology.simulator.now
    topology.forwarder.resolve(
        key, lambda message, version: results.append(topology.simulator.now - started)
    )
    topology.run(10.0)
    return results[0] if results else float("nan")


def _predictions(stub_rtt: float, upstream_rtt: float) -> dict[str, float]:
    upstream = [upstream_rtt] * AUTHORITY_LEVELS
    return {
        "udp-first": recursive_lookup_latency(TransportScenario.UDP, stub_rtt, upstream).total,
        "udp-cached": recursive_lookup_latency(
            TransportScenario.UDP, stub_rtt, [], recursive_cache_hit=True
        ).total,
        "moqt-cold": recursive_lookup_latency(
            TransportScenario.MOQT_COLD, stub_rtt, upstream
        ).total,
        "moqt-reused": recursive_lookup_latency(
            TransportScenario.MOQT_REUSED_SESSION, stub_rtt, upstream
        ).total,
        "moqt-0rtt": recursive_lookup_latency(
            TransportScenario.MOQT_0RTT, stub_rtt, upstream
        ).total,
        "moqt-0rtt-alpn": recursive_lookup_latency(
            TransportScenario.MOQT_0RTT_ALPN, stub_rtt, upstream
        ).total,
        "moqt-pushed": 0.0,
    }


def run_query_latency(
    stub_rtt: float = 0.010, upstream_rtt: float = 0.040
) -> QueryLatencyResult:
    """Measure every scenario for one RTT configuration."""
    predictions = _predictions(stub_rtt, upstream_rtt)
    measurements: list[LatencyMeasurement] = []

    def topology(**overrides) -> SmallTopology:
        config = SmallTopologyConfig(stub_rtt=stub_rtt, upstream_rtt=upstream_rtt, **overrides)
        return SmallTopology(config)

    measurements.append(
        LatencyMeasurement(
            "udp-first", _measure_classic(topology(), warm_cache=False), predictions["udp-first"]
        )
    )
    measurements.append(
        LatencyMeasurement(
            "udp-cached", _measure_classic(topology(), warm_cache=True), predictions["udp-cached"]
        )
    )
    measurements.append(
        LatencyMeasurement(
            "moqt-cold", _measure_moqt(topology(), "moqt-cold"), predictions["moqt-cold"]
        )
    )
    measurements.append(
        LatencyMeasurement(
            "moqt-reused", _measure_moqt(topology(), "moqt-reused"), predictions["moqt-reused"]
        )
    )
    measurements.append(
        LatencyMeasurement(
            "moqt-0rtt", _measure_moqt(topology(), "moqt-0rtt"), predictions["moqt-0rtt"]
        )
    )
    measurements.append(
        LatencyMeasurement(
            "moqt-0rtt-alpn",
            _measure_moqt(topology(alpn_version_negotiation=True), "moqt-0rtt-alpn"),
            predictions["moqt-0rtt-alpn"],
        )
    )
    measurements.append(
        LatencyMeasurement(
            "moqt-pushed", _measure_moqt(topology(), "moqt-pushed"), predictions["moqt-pushed"]
        )
    )
    return QueryLatencyResult(
        stub_rtt=stub_rtt, upstream_rtt=upstream_rtt, measurements=measurements
    )


def run_rtt_sweep(rtts: list[float] | None = None) -> list[QueryLatencyResult]:
    """Run the latency comparison across several upstream RTTs."""
    values = rtts if rtts is not None else [0.010, 0.040, 0.100]
    return [run_query_latency(stub_rtt=0.010, upstream_rtt=rtt) for rtt in values]
