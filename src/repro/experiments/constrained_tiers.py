"""E15 — constrained tiers: the serialisation-vs-propagation knee (§3, §5.3).

E11 charts relay fan-out on ideal links; this experiment reruns the same
CDN tree with *finite per-tier bandwidth* and charts where realism starts to
bite.  Each fan-out hop then costs ``wire_bytes * 8 / bandwidth`` of
serialisation on top of its propagation delay, and as the swept bandwidth
drops there is a knee where the serialisation sum overtakes the propagation
sum — below it, link capacity (not distance) dominates delivery latency.

Two checks make the sweep trustworthy:

* the measured push-to-delivery time of every update at every subscriber
  must equal :class:`repro.analysis.constrained.ConstrainedPathModel`'s
  closed form **bit-exactly** (the model replays the simulator's float
  fold, see the module docstring there);
* the whole sweep must run without a single ``transmit_many`` fallback
  wave — constrained links batching is the tentpole bugfix this experiment
  exists to exercise.

A separate lossy sample puts independent random loss on the access tier and
a NewReno congestion controller on every relay's downstream side
(:mod:`repro.quic.congestion`), proving the loss-repair path end to end:
all updates are delivered despite drops, retransmissions and window
reductions are observable, and the fallback counter stays zero.

:func:`run_constrained_macro` scales the lossy regime to the E11 macro
population (100k subscribers) for the perf harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.constrained import ConstrainedPathModel, HopSpec, knee_index
from repro.moqt.objectmodel import MoqtObject
from repro.moqt.origin import ORIGIN_HOST, ORIGIN_PORT, TRACK, build_origin
from repro.moqt.relay import MOQT_ALPN
from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.netsim.trace import NullTraceRecorder
from repro.quic.congestion import NewRenoCongestionController
from repro.quic.connection import ConnectionConfig
from repro.relaynet import RelayNetStats, RelayTreeBuilder, RelayTreeSpec
from repro.experiments.relay_fanout import UPDATE_INTERVAL, _update_payload

#: Per-tier propagation delays — identical to the unconstrained E11 CDN
#: defaults, so the only variable the sweep moves is bandwidth.
CORE_DELAY = 0.020
METRO_DELAY = 0.010
ACCESS_DELAY = 0.005

#: Descending bandwidth sweep (bits/s), applied to all three hops.  With the
#: calibrated 328 B per update the serialisation sum crosses the 35 ms
#: propagation sum between 250 and 200 kbit/s, so the knee lands mid-sweep.
DEFAULT_BANDWIDTH_SWEEP = (
    10_000_000.0,
    2_000_000.0,
    1_000_000.0,
    500_000.0,
    250_000.0,
    200_000.0,
    100_000.0,
    50_000.0,
)


def _constrained_spec(
    bandwidth: float | None,
    access_loss: float = 0.0,
    mid_relays: int = 4,
    edge_per_mid: int = 4,
) -> RelayTreeSpec:
    """The E11 CDN shape with finite per-tier bandwidth (and optional loss
    on the access tier — the lossy-edge regime)."""
    return RelayTreeSpec.cdn(
        mid_relays=mid_relays,
        edge_per_mid=edge_per_mid,
        core_link=LinkConfig(delay=CORE_DELAY, bandwidth=bandwidth),
        metro_link=LinkConfig(delay=METRO_DELAY, bandwidth=bandwidth),
        access_link=LinkConfig(
            delay=ACCESS_DELAY, bandwidth=bandwidth, loss_rate=access_loss
        ),
    )


#: Consecutive probe timeouts before a lossy-edge connection suspects its
#: peer.  The stock threshold of 2 is a *double-drop* signature: at 0.5 %
#: random loss it false-fires roughly once per 10k packets, and every false
#: suspicion evacuates an entire leaf's subscriber population.  Six PTOs
#: (``loss**6`` per packet, ~1e-14) keeps in-band failure detection armed
#: while making random loss statistically invisible to it.
LOSSY_SUSPECT_AFTER = 6


def _newreno_downstream() -> ConnectionConfig:
    """Downstream (fan-out sender side) configuration with NewReno installed."""
    return ConnectionConfig(
        alpn_protocols=(MOQT_ALPN,),
        liveness_suspect_after=LOSSY_SUSPECT_AFTER,
        congestion_controller=NewRenoCongestionController,
    )


def _lossy_subscriber() -> ConnectionConfig:
    """Subscriber-side configuration for lossy access links: same transport,
    desensitised failure detector (see :data:`LOSSY_SUSPECT_AFTER`)."""
    return ConnectionConfig(
        alpn_protocols=(MOQT_ALPN,),
        liveness_suspect_after=LOSSY_SUSPECT_AFTER,
    )


@dataclass
class ConstrainedRun:
    """Everything one constrained tree run measured."""

    #: Update-window statistics delta (setup traffic excluded).
    delta: RelayNetStats
    #: Simulator time each update was pushed at, in push order.
    push_times: list[float]
    #: Per update (same order), every subscriber delivery's absolute time.
    delivery_times: list[list[float]]
    #: Objects delivered to subscriber callbacks during the window.
    delivered: int
    #: Fan-out waves degraded to per-datagram transmission (must be 0).
    link_batch_fallback_waves: int
    #: Total simulator events scheduled over the whole run.
    events_scheduled: int


def _run_constrained_tree(
    spec: RelayTreeSpec,
    subscribers: int,
    updates: int,
    payload_size: int,
    seed: int,
    downstream_connection: ConnectionConfig | None = None,
    subscriber_connection: ConnectionConfig | None = None,
    drain: float = 3.0,
) -> ConstrainedRun:
    """Build the constrained tree, push updates, record delivery instants.

    Mirrors E11's ``_run_tree`` but keeps absolute per-delivery timestamps
    (the closed-form check compares them bit-exactly) and the network's
    fallback-wave counter.  Always dense: counted aggregate leaves are a
    statistics construct for ideal links and are rejected on constrained
    ones (``Link.extra_bytes``).
    """
    simulator = Simulator(seed=seed)
    network = Network(simulator, trace=NullTraceRecorder(simulator))
    publisher = build_origin(network)
    tree = RelayTreeBuilder(
        network,
        Address(ORIGIN_HOST, ORIGIN_PORT),
        subscriber_connection=subscriber_connection,
        downstream_connection=downstream_connection,
    ).build(spec)
    tree.attach_subscribers(subscribers)
    delivered = [0]
    push_times: list[float] = []
    delivery_times: list[list[float]] = []
    group_slot: dict[int, int] = {}

    def on_object(subscriber, obj) -> None:
        delivered[0] += subscriber.multiplicity
        slot = group_slot.get(obj.group_id)
        if slot is not None:
            delivery_times[slot].append(simulator.now)

    tree.subscribe_all(TRACK, on_object=on_object)
    simulator.run(until=simulator.now + 3.0)

    before = RelayNetStats.collect(tree)
    delivered_before = delivered[0]
    for update in range(updates):
        group_id = update + 2
        group_slot[group_id] = len(push_times)
        push_times.append(simulator.now)
        delivery_times.append([])
        publisher.push(
            MoqtObject(
                group_id=group_id,
                object_id=0,
                payload=_update_payload(group_id, payload_size),
            )
        )
        simulator.run(until=simulator.now + UPDATE_INTERVAL)
    simulator.run(until=simulator.now + drain)
    delta = RelayNetStats.collect(tree).delta(before)
    return ConstrainedRun(
        delta=delta,
        push_times=push_times,
        delivery_times=delivery_times,
        delivered=delivered[0] - delivered_before,
        link_batch_fallback_waves=network.link_batch_fallback_waves,
        events_scheduled=simulator.events_scheduled,
    )


def calibrate_wire_bytes(payload_size: int, updates: int = 4, seed: int = 17) -> int:
    """Exact on-the-wire bytes of one pushed update (one datagram per hop).

    Same minimal one-relay, one-subscriber calibration as E11's byte model,
    but returning the integral per-update size the serialisation model
    needs — a non-integral result would mean the framing is not constant
    per update, which would invalidate the closed form, so it raises.
    """
    from repro.experiments.relay_fanout import calibrate_bytes_per_update

    value = calibrate_bytes_per_update(payload_size, updates=updates, seed=seed)
    if not float(value).is_integer():
        raise RuntimeError(f"per-update wire size is not constant: {value}")
    return int(value)


@dataclass
class ConstrainedTierSample:
    """One bandwidth sweep point: measured vs. modelled delivery latency."""

    bandwidth: float
    subscribers: int
    updates: int
    model: ConstrainedPathModel
    #: Mean measured push-to-delivery latency (identical across updates and
    #: subscribers on the symmetric tree; kept as a float for the table).
    measured_latency: float
    #: Whether every delivery time equalled the closed form bit-exactly.
    model_exact: bool
    delivered: int
    link_batch_fallback_waves: int
    events_scheduled: int

    @property
    def serialisation_seconds(self) -> float:
        """Modelled per-update serialisation total along the path."""
        return self.model.serialisation_seconds

    @property
    def propagation_seconds(self) -> float:
        """Propagation total along the path (bandwidth-independent)."""
        return self.model.propagation_seconds

    @property
    def serialisation_dominates(self) -> bool:
        """Whether this sweep point sits at or past the knee."""
        return self.model.serialisation_dominates

    def as_row(self) -> dict[str, object]:
        return {
            "bandwidth_kbps": round(self.bandwidth / 1000.0, 1),
            "latency_ms": round(self.measured_latency * 1000.0, 3),
            "model_ms": round(self.model.delivery_latency() * 1000.0, 3),
            "serialisation_ms": round(self.serialisation_seconds * 1000.0, 3),
            "propagation_ms": round(self.propagation_seconds * 1000.0, 3),
            "dominates": self.serialisation_dominates,
            "model_exact": self.model_exact,
            "delivered": self.delivered,
            "fallback_waves": self.link_batch_fallback_waves,
        }


@dataclass
class ConstrainedLossSample:
    """The lossy-edge run: NewReno on the fan-out side, loss on access links."""

    bandwidth: float
    access_loss: float
    subscribers: int
    updates: int
    delivered: int
    expected: int
    #: Sender-side QUIC retransmissions across the tree's fan-out hops
    #: during the update window (loss repair at work).
    retransmissions: int
    #: NewReno window reductions across the relays' downstream connections.
    congestion_events: int
    link_batch_fallback_waves: int
    events_scheduled: int

    @property
    def repaired(self) -> bool:
        """Whether every update reached every subscriber despite the loss."""
        return self.delivered == self.expected

    def as_row(self) -> dict[str, object]:
        return {
            "bandwidth_kbps": round(self.bandwidth / 1000.0, 1),
            "loss": self.access_loss,
            "delivered": self.delivered,
            "expected": self.expected,
            "repaired": self.repaired,
            "retransmissions": self.retransmissions,
            "congestion_events": self.congestion_events,
            "fallback_waves": self.link_batch_fallback_waves,
        }


@dataclass
class ConstrainedTiersResult:
    """The full E15 sweep plus the lossy-edge sample."""

    samples: list[ConstrainedTierSample]
    loss_sample: ConstrainedLossSample
    wire_bytes: int

    @property
    def model_knee_index(self) -> int:
        """First sweep index where the model says serialisation dominates."""
        return knee_index([sample.model for sample in self.samples])

    @property
    def measured_knee_index(self) -> int:
        """First sweep index where *measured* latency minus propagation
        meets or exceeds propagation; ``-1`` if never."""
        for index, sample in enumerate(self.samples):
            if (
                sample.measured_latency - sample.propagation_seconds
                >= sample.propagation_seconds
            ):
                return index
        return -1

    @property
    def knee_matches_model(self) -> bool:
        """Whether the measured knee lands exactly on the modelled one."""
        return self.measured_knee_index == self.model_knee_index

    @property
    def all_model_exact(self) -> bool:
        """Whether every sweep point matched the closed form bit-exactly."""
        return all(sample.model_exact for sample in self.samples)

    @property
    def total_fallback_waves(self) -> int:
        """Fallback waves across the sweep and the lossy run (must be 0)."""
        return (
            sum(sample.link_batch_fallback_waves for sample in self.samples)
            + self.loss_sample.link_batch_fallback_waves
        )

    def rows(self) -> list[dict[str, object]]:
        """Per-sweep-point table rows."""
        return [sample.as_row() for sample in self.samples]

    def summary_row(self) -> dict[str, object]:
        return {
            "wire_bytes": self.wire_bytes,
            "model_knee": self.model_knee_index,
            "measured_knee": self.measured_knee_index,
            "knee_matches": self.knee_matches_model,
            "all_model_exact": self.all_model_exact,
            "fallback_waves": self.total_fallback_waves,
            "loss_repaired": self.loss_sample.repaired,
            "loss_retransmissions": self.loss_sample.retransmissions,
            "congestion_events": self.loss_sample.congestion_events,
        }


def run_constrained_tiers(
    bandwidths: tuple[float, ...] = DEFAULT_BANDWIDTH_SWEEP,
    subscribers: int = 100,
    updates: int = 5,
    mid_relays: int = 4,
    edge_per_mid: int = 4,
    payload_size: int = 300,
    seed: int = 7,
    access_loss: float = 0.05,
) -> ConstrainedTiersResult:
    """Run the E15 bandwidth sweep plus one lossy-edge sample.

    ``bandwidths`` must descend: the knee indices are defined as *first
    index where serialisation dominates*, which is only meaningful on a
    monotone sweep.
    """
    if list(bandwidths) != sorted(bandwidths, reverse=True):
        raise ValueError(f"bandwidth sweep must descend: {bandwidths}")
    wire_bytes = calibrate_wire_bytes(payload_size, seed=seed + 1)
    samples: list[ConstrainedTierSample] = []
    for bandwidth in bandwidths:
        model = ConstrainedPathModel(
            hops=(
                HopSpec(delay=CORE_DELAY, bandwidth=bandwidth),
                HopSpec(delay=METRO_DELAY, bandwidth=bandwidth),
                HopSpec(delay=ACCESS_DELAY, bandwidth=bandwidth),
            ),
            wire_bytes=wire_bytes,
        )
        if not model.no_queueing_below(UPDATE_INTERVAL):
            raise ValueError(
                f"bandwidth {bandwidth} backlogs the FIFO at the push "
                f"interval {UPDATE_INTERVAL}; the closed form would not apply"
            )
        run = _run_constrained_tree(
            _constrained_spec(bandwidth, mid_relays=mid_relays, edge_per_mid=edge_per_mid),
            subscribers,
            updates,
            payload_size,
            seed,
        )
        exact = True
        latency_total = 0.0
        latency_count = 0
        for push_time, deliveries in zip(run.push_times, run.delivery_times):
            predicted = model.delivery_time(push_time)
            for delivered_at in deliveries:
                if delivered_at != predicted:
                    exact = False
                latency_total += delivered_at - push_time
                latency_count += 1
        samples.append(
            ConstrainedTierSample(
                bandwidth=bandwidth,
                subscribers=subscribers,
                updates=updates,
                model=model,
                measured_latency=latency_total / latency_count if latency_count else 0.0,
                model_exact=exact and latency_count == subscribers * updates,
                delivered=run.delivered,
                link_batch_fallback_waves=run.link_batch_fallback_waves,
                events_scheduled=run.events_scheduled,
            )
        )
    loss_bandwidth = bandwidths[len(bandwidths) // 2]
    loss_run = _run_constrained_tree(
        _constrained_spec(
            loss_bandwidth,
            access_loss=access_loss,
            mid_relays=mid_relays,
            edge_per_mid=edge_per_mid,
        ),
        subscribers,
        updates,
        payload_size,
        seed,
        downstream_connection=_newreno_downstream(),
        subscriber_connection=_lossy_subscriber(),
        drain=6.0,
    )
    loss_sample = ConstrainedLossSample(
        bandwidth=loss_bandwidth,
        access_loss=access_loss,
        subscribers=subscribers,
        updates=updates,
        delivered=loss_run.delivered,
        expected=subscribers * updates,
        retransmissions=loss_run.delta.downstream_retransmissions,
        congestion_events=loss_run.delta.congestion_events,
        link_batch_fallback_waves=loss_run.link_batch_fallback_waves,
        events_scheduled=loss_run.events_scheduled,
    )
    return ConstrainedTiersResult(
        samples=samples, loss_sample=loss_sample, wire_bytes=wire_bytes
    )


@dataclass
class ConstrainedMacroResult:
    """The lossy constrained regime at E11 macro scale (dense subscribers)."""

    subscribers: int
    updates: int
    delivered: int
    expected: int
    retransmissions: int
    congestion_events: int
    link_batch_fallback_waves: int
    events_scheduled: int

    @property
    def repaired(self) -> bool:
        """Whether loss repair delivered every update to every subscriber."""
        return self.delivered == self.expected


def run_constrained_macro(
    subscribers: int = 100_000,
    updates: int = 5,
    mid_relays: int = 4,
    edge_per_mid: int = 4,
    payload_size: int = 300,
    seed: int = 7,
    bandwidth: float = 2_000_000.0,
    access_loss: float = 0.005,
) -> ConstrainedMacroResult:
    """E11's macro population on constrained, lossy tiers.

    Dense subscribers (aggregate leaves are an ideal-link construct), finite
    bandwidth on every tier, independent loss on the access links and
    NewReno on every relay's downstream side.  The point is scale: with the
    batch path bandwidth- and loss-aware this completes inside the perf
    smoke budget with the fallback-wave counter at zero — the regime the
    old silent fallback made unrunnable.
    """
    run = _run_constrained_tree(
        _constrained_spec(
            bandwidth,
            access_loss=access_loss,
            mid_relays=mid_relays,
            edge_per_mid=edge_per_mid,
        ),
        subscribers,
        updates,
        payload_size,
        seed,
        downstream_connection=_newreno_downstream(),
        subscriber_connection=_lossy_subscriber(),
        drain=6.0,
    )
    return ConstrainedMacroResult(
        subscribers=subscribers,
        updates=updates,
        delivered=run.delivered,
        expected=subscribers * updates,
        retransmissions=run.delta.downstream_retransmissions,
        congestion_events=run.delta.congestion_events,
        link_batch_fallback_waves=run.link_batch_fallback_waves,
        events_scheduled=run.events_scheduled,
    )
