"""Standard simulation topologies used by the experiments.

:class:`SmallTopology` builds the three-level hierarchy of Fig. 2 — a stub
host running a forwarder, a recursive resolver, and root / TLD /
authoritative servers — with every authority optionally serving both classic
DNS over UDP and DNS over MoQT on the same host (incremental deployment,
§4.5).  Experiments that need the full synthetic top list build on
:func:`build_workload_topology`, which instantiates one authoritative host
per workload assignment group.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.auth_server import MoqAuthoritativeServer
from repro.core.compatibility import CompatibilityMode, HappyEyeballsConfig
from repro.core.forwarder import ForwarderConfig, MoqForwarder
from repro.core.recursive import MoqRecursiveResolver, ResolverConfig
from repro.core.session_manager import SessionManagerConfig
from repro.dns.name import Name
from repro.dns.server import AuthoritativeServer
from repro.dns.resolver import RecursiveResolver, StubResolver
from repro.dns.types import DNS_UDP_PORT, MOQT_PORT
from repro.dns.zone import Zone
from repro.moqt.session import MoqtSessionConfig
from repro.netsim.link import LinkConfig
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.workload.zones import ROOT_SERVER_ADDRESS, WorkloadZones

STUB_HOST = "10.0.0.2"
RECURSIVE_HOST = "10.0.0.53"
ROOT_HOST = "198.41.0.4"
TLD_HOST = "192.5.6.30"
AUTH_HOST = "93.184.216.1"


@dataclass
class SmallTopologyConfig:
    """Parameters of the small three-level topology."""

    domain: str = "www.example.com."
    record_ttl: int = 300
    initial_address: str = "192.0.2.10"
    stub_rtt: float = 0.010
    upstream_rtt: float = 0.040
    #: Which authorities additionally run a MoQT server.
    moqt_on_root: bool = True
    moqt_on_tld: bool = True
    moqt_on_auth: bool = True
    #: Whether the recursive resolver races UDP against MoQT (§4.5).
    happy_eyeballs: bool = False
    compatibility_mode: CompatibilityMode = CompatibilityMode.PERIODIC_REFRESH
    #: Session manager behaviour (reuse / 0-RTT) for the MoQT resolver chain.
    reuse_sessions: bool = True
    enable_0rtt: bool = True
    alpn_version_negotiation: bool = False
    #: Optional QUIC parameters for connections the recursive resolver accepts
    #: from stubs (used by the deep-space example to survive long delays).
    resolver_downstream_connection: object | None = None
    seed: int = 42


class SmallTopology:
    """A fully wired three-level DNS hierarchy with classic and MoQT stacks."""

    def __init__(self, config: SmallTopologyConfig | None = None) -> None:
        self.config = config if config is not None else SmallTopologyConfig()
        self.simulator = Simulator(seed=self.config.seed)
        self.network = Network(self.simulator)
        self._build_hosts()
        self._build_zones()
        self._build_servers()
        self._build_resolvers()

    # ---------------------------------------------------------------- plumbing
    def _build_hosts(self) -> None:
        for host in (STUB_HOST, RECURSIVE_HOST, ROOT_HOST, TLD_HOST, AUTH_HOST):
            self.network.add_host(host)
        stub_link = LinkConfig(delay=self.config.stub_rtt / 2.0)
        upstream_link = LinkConfig(delay=self.config.upstream_rtt / 2.0)
        self.network.connect(STUB_HOST, RECURSIVE_HOST, stub_link)
        for upstream in (ROOT_HOST, TLD_HOST, AUTH_HOST):
            self.network.connect(RECURSIVE_HOST, upstream, upstream_link)

    def _build_zones(self) -> None:
        domain = Name.from_text(self.config.domain)
        # The zone apex is the parent of the queried name (www.example.com ->
        # example.com); single-label domains are their own apex.
        apex = domain.parent() if len(domain) > 1 else domain
        tld = Name(domain.labels[-1:])
        self.domain_name = domain
        self.zone_apex = apex
        self.root_zone = Zone(".")
        self.root_zone.add(tld, "NS", f"ns.{tld.to_text()}", ttl=3600, bump=False)
        self.root_zone.add(Name.from_text(f"ns.{tld.to_text()}"), "A", TLD_HOST, ttl=3600, bump=False)
        self.tld_zone = Zone(tld)
        ns_name = Name((b"ns1",) + apex.labels)
        self.tld_zone.add(apex, "NS", ns_name.to_text(), ttl=3600, bump=False)
        self.tld_zone.add(ns_name, "A", AUTH_HOST, ttl=3600, bump=False)
        self.auth_zone = Zone(apex)
        self.auth_zone.add(ns_name, "A", AUTH_HOST, ttl=3600, bump=False)
        self.auth_zone.add(
            domain, "A", self.config.initial_address, ttl=self.config.record_ttl, bump=False
        )

    def _build_servers(self) -> None:
        self.classic_root = AuthoritativeServer(self.network.host(ROOT_HOST), [self.root_zone])
        self.classic_tld = AuthoritativeServer(self.network.host(TLD_HOST), [self.tld_zone])
        self.classic_auth = AuthoritativeServer(self.network.host(AUTH_HOST), [self.auth_zone])
        self.moqt_root = (
            MoqAuthoritativeServer(self.network.host(ROOT_HOST), [self.root_zone])
            if self.config.moqt_on_root
            else None
        )
        self.moqt_tld = (
            MoqAuthoritativeServer(self.network.host(TLD_HOST), [self.tld_zone])
            if self.config.moqt_on_tld
            else None
        )
        self.moqt_auth = (
            MoqAuthoritativeServer(self.network.host(AUTH_HOST), [self.auth_zone])
            if self.config.moqt_on_auth
            else None
        )

    def _build_resolvers(self) -> None:
        config = self.config
        session_manager = SessionManagerConfig(
            reuse_sessions=config.reuse_sessions,
            enable_0rtt=config.enable_0rtt,
            alpn_version_negotiation=config.alpn_version_negotiation,
        )
        resolver_config = ResolverConfig(
            happy_eyeballs=HappyEyeballsConfig(enabled=config.happy_eyeballs),
            compatibility_mode=config.compatibility_mode,
            session_manager=session_manager,
            moqt_session=MoqtSessionConfig(
                alpn_version_negotiation=config.alpn_version_negotiation
            ),
            downstream_connection=config.resolver_downstream_connection,
        )
        self.moqt_recursive = MoqRecursiveResolver(
            self.network.host(RECURSIVE_HOST),
            root_servers=[Address(ROOT_HOST, MOQT_PORT)],
            config=resolver_config,
        )
        # The classic recursive resolver serves on a distinct UDP port so it
        # can coexist with the MoQT resolver's UDP fallback interface.
        self.classic_recursive = RecursiveResolver(
            self.network.host(RECURSIVE_HOST),
            root_servers=[Address(ROOT_HOST, DNS_UDP_PORT)],
            serve_port=5353,
        )
        forwarder_config = ForwarderConfig(
            listen_port=DNS_UDP_PORT,
            session_manager=SessionManagerConfig(
                reuse_sessions=config.reuse_sessions,
                enable_0rtt=config.enable_0rtt,
                alpn_version_negotiation=config.alpn_version_negotiation,
            ),
            moqt_session=MoqtSessionConfig(
                alpn_version_negotiation=config.alpn_version_negotiation
            ),
        )
        self.forwarder = MoqForwarder(
            self.network.host(STUB_HOST),
            recursive_moqt_address=Address(RECURSIVE_HOST, MOQT_PORT),
            config=forwarder_config,
        )
        self.classic_stub = StubResolver(
            self.network.host(STUB_HOST), Address(RECURSIVE_HOST, 5353)
        )

    # ------------------------------------------------------------------ helpers
    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.simulator.run(until=self.simulator.now + duration)

    def update_record(self, new_address: str) -> int:
        """Change the experiment domain's A record; returns the new zone serial.

        The replacement is a single atomic zone change so exactly one version
        bump (and therefore one MoQT push per subscriber) results.
        """
        from repro.dns.rdata import ARdata
        from repro.dns.rr import ResourceRecord, RRset
        from repro.dns.types import RecordType

        record = ResourceRecord(
            self.domain_name, RecordType.A, ARdata(new_address), self.config.record_ttl
        )
        self.auth_zone.replace_rrset(RRset(self.domain_name, RecordType.A, [record]))
        return self.auth_zone.serial


@dataclass
class WorkloadTopology:
    """A topology hosting a full synthetic workload."""

    simulator: Simulator
    network: Network
    zones: WorkloadZones
    moqt_servers: dict[str, MoqAuthoritativeServer]
    classic_servers: dict[str, AuthoritativeServer]
    recursive: MoqRecursiveResolver
    forwarder: MoqForwarder


def build_workload_topology(
    zones: WorkloadZones,
    stub_rtt: float = 0.010,
    upstream_rtt: float = 0.040,
    moqt_fraction: float = 1.0,
    seed: int = 42,
) -> WorkloadTopology:
    """Build a topology serving a synthetic workload.

    ``moqt_fraction`` controls which share of authoritative hosts (beyond the
    root, which always supports MoQT) also run a MoQT server — the knob for
    the incremental-deployment experiment.
    """
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    network.add_host(STUB_HOST)
    network.add_host(RECURSIVE_HOST)
    network.connect(STUB_HOST, RECURSIVE_HOST, LinkConfig(delay=stub_rtt / 2.0))

    moqt_servers: dict[str, MoqAuthoritativeServer] = {}
    classic_servers: dict[str, AuthoritativeServer] = {}
    host_zones = zones.all_hosts()
    moqt_hosts = _select_moqt_hosts(host_zones, moqt_fraction)
    for host_address, served_zones in host_zones.items():
        host = network.add_host(host_address)
        network.connect(RECURSIVE_HOST, host_address, LinkConfig(delay=upstream_rtt / 2.0))
        classic_servers[host_address] = AuthoritativeServer(host, list(served_zones))
        if host_address in moqt_hosts:
            moqt_servers[host_address] = MoqAuthoritativeServer(host, list(served_zones))

    recursive = MoqRecursiveResolver(
        network.host(RECURSIVE_HOST),
        root_servers=[Address(ROOT_SERVER_ADDRESS, MOQT_PORT)],
        config=ResolverConfig(
            happy_eyeballs=HappyEyeballsConfig(enabled=moqt_fraction < 1.0),
        ),
    )
    forwarder = MoqForwarder(
        network.host(STUB_HOST), recursive_moqt_address=Address(RECURSIVE_HOST, MOQT_PORT)
    )
    return WorkloadTopology(
        simulator=simulator,
        network=network,
        zones=zones,
        moqt_servers=moqt_servers,
        classic_servers=classic_servers,
        recursive=recursive,
        forwarder=forwarder,
    )


def _select_moqt_hosts(host_zones: dict[str, list[Zone]], fraction: float) -> set[str]:
    hosts = sorted(host_zones)
    if fraction >= 1.0:
        return set(hosts)
    selected = {ROOT_SERVER_ADDRESS}
    remaining = [host for host in hosts if host != ROOT_SERVER_ADDRESS]
    count = int(round(fraction * len(remaining)))
    selected.update(remaining[:count])
    return selected
