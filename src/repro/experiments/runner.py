"""Run every experiment and render a combined report.

``python -m repro.experiments.runner`` executes all experiments with fast
default parameters and prints the tables that ``EXPERIMENTS.md`` records.
Individual experiments are importable functions, so the benchmarks can run
them with their own parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.experiments.compatibility import run_compatibility
from repro.experiments.constrained_tiers import run_constrained_tiers
from repro.experiments.failure_detection import run_failure_detection
from repro.experiments.fig1a import run_fig1a
from repro.experiments.origin_failover import run_origin_failover
from repro.experiments.fig1b import run_fig1b
from repro.experiments.fig2_sequence import run_fig2
from repro.experiments.flash_crowd import run_flash_crowd
from repro.experiments.query_latency import run_query_latency
from repro.experiments.relay_churn import run_relay_churn
from repro.experiments.relay_fanout import run_relay_fanout
from repro.experiments.report import format_table
from repro.experiments.staleness import run_staleness
from repro.experiments.state_overhead import run_state_overhead
from repro.experiments.traffic import run_traffic
from repro.experiments.usecases import run_usecases


@dataclass
class ExperimentReport:
    """One experiment's identifier, title and rendered table."""

    experiment_id: str
    title: str
    table: str
    result: Any


def run_all(fast: bool = True) -> list[ExperimentReport]:
    """Run every experiment; ``fast`` shrinks populations and durations."""
    reports: list[ExperimentReport] = []

    fig1a = run_fig1a(population=2_000 if fast else 10_000)
    reports.append(
        ExperimentReport("E1", "Fig. 1a — record types and TTL distribution",
                         format_table(fig1a.total_rows()), fig1a)
    )
    fig1b = run_fig1b(
        population=1_000 if fast else 10_000,
        max_domains_per_ttl=60 if fast else None,
    )
    reports.append(
        ExperimentReport("E2", "Fig. 1b — change rate per TTL",
                         format_table(fig1b.rows()), fig1b)
    )
    fig2 = run_fig2()
    reports.append(
        ExperimentReport("E3", "Fig. 2 — recursive DNS-over-MoQT lookup sequence",
                         format_table(fig2.rows()), fig2)
    )
    latency = run_query_latency()
    reports.append(
        ExperimentReport("E4", "§5.2 — query latency per transport scenario",
                         format_table(latency.rows()), latency)
    )
    staleness = run_staleness(ttls=[10, 60] if fast else [10, 60, 300])
    reports.append(
        ExperimentReport("E5", "§5 — update timeliness (staleness)",
                         format_table(staleness.rows()), staleness)
    )
    traffic = run_traffic(duration=120.0 if fast else 600.0,
                          configurations=[(10, 30.0), (60, 600.0)] if fast else None)
    reports.append(
        ExperimentReport("E6", "§5 — upstream message counts (polling vs pub/sub)",
                         format_table(traffic.rows()), traffic)
    )
    usecases = run_usecases(simulated_duration=30.0 if fast else 120.0)
    reports.append(
        ExperimentReport("E7/E8", "§5.3 — use-case traffic estimates",
                         format_table(usecases.rows()), usecases)
    )
    state = run_state_overhead(questions=200 if fast else 1000)
    reports.append(
        ExperimentReport("E9", "§5.1 — state overhead and teardown policies",
                         format_table(state.rows()), state)
    )
    compatibility = run_compatibility(ttl=10 if fast else 30)
    reports.append(
        ExperimentReport("E10", "§4.5 — compatibility / incremental deployment",
                         format_table(compatibility.rows()), compatibility)
    )
    fanout = run_relay_fanout(
        subscriber_counts=(10, 50) if fast else (10, 100, 1000),
        updates=3 if fast else 5,
        mid_relays=2 if fast else 4,
        edge_per_mid=2 if fast else 4,
    )
    reports.append(
        ExperimentReport("E11", "§3/§5.3 — relay fan-out: origin egress vs subscribers",
                         format_table(fanout.rows()), fanout)
    )
    churn = run_relay_churn(
        subscribers=60 if fast else 1000,
        mid_relays=2 if fast else 4,
        edge_per_mid=2 if fast else 4,
        updates_before=2 if fast else 4,
        updates_between=2 if fast else 4,
        updates_after=2 if fast else 4,
    )
    churn_table = "\n\n".join(
        [format_table(churn.rows()), format_table([churn.summary_row()])]
    )
    reports.append(
        ExperimentReport("E12", "§3/§5.3 — relay churn: failover and FETCH gap recovery",
                         churn_table, churn)
    )
    detection = run_failure_detection(
        subscribers=60 if fast else 1000,
        mid_relays=2 if fast else 4,
        edge_per_mid=2 if fast else 4,
        updates_before=2 if fast else 4,
        updates_between=4 if fast else 6,
        updates_after=4 if fast else 6,
    )
    detection_table = "\n\n".join(
        [format_table(detection.rows()), format_table([detection.summary_row()])]
    )
    reports.append(
        ExperimentReport("E13", "§3/§5.3 — in-band failure detection: PTO/idle-driven failover",
                         detection_table, detection)
    )
    failover = run_origin_failover(
        subscribers=60 if fast else 1000,
        mid_relays=2 if fast else 4,
        edge_per_mid=2 if fast else 4,
        updates_before=2 if fast else 4,
        updates_between=4 if fast else 6,
        updates_after=4 if fast else 6,
    )
    failover_table = "\n\n".join(
        [format_table(failover.rows()), format_table([failover.summary_row()])]
    )
    reports.append(
        ExperimentReport("E14", "§3/§5.3 — origin failover: replicated origin, in-band promotion",
                         failover_table, failover)
    )
    constrained = run_constrained_tiers(
        subscribers=20 if fast else 100,
        updates=3 if fast else 5,
        mid_relays=2 if fast else 4,
        edge_per_mid=2 if fast else 4,
    )
    constrained_table = "\n\n".join(
        [
            format_table(constrained.rows()),
            format_table([constrained.loss_sample.as_row()]),
            format_table([constrained.summary_row()]),
        ]
    )
    reports.append(
        ExperimentReport("E15", "§3/§5.3 — constrained tiers: the serialisation-vs-propagation knee",
                         constrained_table, constrained)
    )
    crowd = run_flash_crowd(
        stormers=24 if fast else 100,
        baseline_stormers=(16, 48) if fast else (50, 200),
    )
    crowd_table = "\n\n".join(
        [
            format_table([sample.as_row() for sample in crowd.baselines]),
            format_table([crowd.throttled.as_row()]),
            format_table([crowd.spillover.as_row()]),
            format_table([crowd.summary_row()]),
        ]
    )
    reports.append(
        ExperimentReport("E16", "§3 robustness — flash-crowd admission: bounded relays vs unbounded queues",
                         crowd_table, crowd)
    )
    return reports


def main() -> None:
    """Entry point for ``python -m repro.experiments.runner``."""
    for report in run_all(fast=True):
        print(f"== {report.experiment_id}: {report.title}")
        print(report.table)
        print()


if __name__ == "__main__":
    main()
