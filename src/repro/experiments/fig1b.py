"""E2 — Fig. 1b: A-record change counts over 300 TTL-spaced observations.

The paper's finding: the lower the TTL the more changes — TTLs of 300 s and
below show at least 71 changes at the 90th percentile over 300 observations,
while TTLs of 600 s and above show no changes at all up to the same
percentile.  The experiment reproduces the per-TTL change-count percentiles
from the calibrated change processes using the lexicographic comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.measurement.campaign import CampaignConfig, ChangeRateResult, MeasurementCampaign
from repro.workload.change_model import ChangeModel, ChangeModelConfig
from repro.workload.toplist import SyntheticToplist, ToplistConfig

#: The paper's headline reference points for Fig. 1b.
PAPER_P90_LOW_TTL_MIN_CHANGES = 71
PAPER_HIGH_TTL_P90_CHANGES = 0
LOW_TTL_THRESHOLD = 300


@dataclass
class Fig1bResult:
    """Measured Fig. 1b data."""

    change_rates: ChangeRateResult
    observations: int

    def rows(self) -> list[dict[str, float]]:
        """Per-TTL percentile rows."""
        return self.change_rates.rows()

    def low_ttl_p90_minimum(self) -> float:
        """The smallest p90 change count among TTL clusters <= 300 s."""
        values = [
            summary.p90
            for ttl, summary in self.change_rates.summaries.items()
            if ttl <= LOW_TTL_THRESHOLD
        ]
        return min(values) if values else 0.0

    def high_ttl_p90_maximum(self) -> float:
        """The largest p90 change count among TTL clusters >= 600 s."""
        values = [
            summary.p90
            for ttl, summary in self.change_rates.summaries.items()
            if ttl >= 600
        ]
        return max(values) if values else 0.0

    def matches_paper_shape(self) -> bool:
        """Whether the headline qualitative findings hold."""
        return (
            self.low_ttl_p90_minimum() >= PAPER_P90_LOW_TTL_MIN_CHANGES
            and self.high_ttl_p90_maximum() <= PAPER_HIGH_TTL_P90_CHANGES
        )


def run_fig1b(
    population: int = 2_000,
    observations: int = 300,
    max_domains_per_ttl: int | None = 150,
    seed: int = 20250624,
) -> Fig1bResult:
    """Run the Fig. 1b experiment.

    The default population is smaller than the full 10k because the change
    study needs 300 observations per domain; the per-TTL cap keeps the run
    short while leaving enough domains per cluster for stable percentiles.
    """
    toplist = SyntheticToplist(ToplistConfig(size=population, seed=seed))
    change_model = ChangeModel(ChangeModelConfig(seed=seed))
    campaign = MeasurementCampaign(
        toplist,
        change_model=change_model,
        config=CampaignConfig(
            observations=observations, max_domains_per_ttl=max_domains_per_ttl
        ),
    )
    return Fig1bResult(change_rates=campaign.change_rates(), observations=observations)
