"""E16 — flash-crowd admission: bounded relays vs. the unbounded baseline.

A flash crowd — thousands of resolvers joining a popular track inside a
few tens of milliseconds — is the robustness case the relay tree has to
survive: §3's payload-oblivious fan-out only helps if an edge relay can
*refuse* work it cannot absorb instead of queueing it without bound.
This experiment injects synchronized subscribe storms
(:meth:`~repro.relaynet.topology.RelayTopology.flash_crowd`) and measures
three regimes on the deterministic simulator:

1. **Baseline (no admission control).**  An unlimited relay takes every
   SUBSCRIBE of a cold-track storm into its pending-subscribe queue while
   the single upstream subscription completes — the queue's high-water
   mark equals the storm size and grows without bound as storms grow.
   Nothing is lost on the simulator, but the pathology the admission
   policy exists to cap is measured directly.
2. **Token-bucket admission.**  The same storm against a rate-limited
   relay: the overflow is answered with ``SUBSCRIBE_ERROR(retry_after)``,
   every rejected client retries once at its reserved token slot, and
   100% are eventually admitted.  Measured completion time and the full
   join-latency distribution must match the closed-form replay in
   :mod:`repro.analysis.admission` **bit-exactly**.
3. **Spillover.**  The geo-concentrated crowd: the storm pinned to one
   edge relay of a wider tier, with client-side spillover enabled —
   rejected subscribers re-home to the least-loaded non-saturated
   sibling, spreading a local hotspot across the tier while still
   admitting everyone.

Determinism: the storms draw nothing from the RNG when ``retry_after`` is
advertised (retries are reservation-scheduled), so repeated runs with one
seed are bit-identical; the jittered-backoff path (no hint) draws from
the seeded simulator RNG and is equally reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.admission import AdmissionModel, percentile
from repro.moqt.origin import ORIGIN_HOST, ORIGIN_PORT, TRACK, build_origin
from repro.moqt.track import FullTrackName
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.netsim.trace import NullTraceRecorder
from repro.relaynet import (
    AdmissionPolicy,
    RelayTree,
    RelayTreeBuilder,
    RelayTreeSpec,
    RetryPolicy,
)
from repro.telemetry import Telemetry
from repro.telemetry.collect import collect_run

#: Virtual seconds given to tree setup / pre-warm before a storm fires.
SETTLE = 3.0
#: Virtual seconds the simulator runs after the last join to drain retries.
DRAIN = 10.0


def _build_tree(
    seed: int,
    relays: int,
    admission: AdmissionPolicy | None,
    prewarm: int,
    track: FullTrackName,
) -> tuple[Simulator, RelayTree]:
    """One star tree below the origin, optionally pre-warmed and settled."""
    simulator = Simulator(seed=seed)
    network = Network(simulator, trace=NullTraceRecorder(simulator))
    build_origin(network)
    tree = RelayTreeBuilder(
        network, Address(ORIGIN_HOST, ORIGIN_PORT), admission=admission
    ).build(RelayTreeSpec.star(relays=relays))
    if prewarm:
        tree.attach_subscribers(prewarm)
        tree.subscribe_all(track)
    simulator.run(until=simulator.now + SETTLE)
    return simulator, tree


# --------------------------------------------------------------------- baseline
@dataclass
class BaselineSample:
    """One cold-track storm against an *unlimited* relay."""

    stormers: int
    admitted: int
    #: Largest pending-subscribe queue the relay ever held — the unbounded
    #: pathology: equals the storm size and keeps growing with it.
    pending_high_water: int
    rejections: int

    def as_row(self) -> dict[str, object]:
        return {
            "scenario": "baseline",
            "stormers": self.stormers,
            "admitted": self.admitted,
            "rejections": self.rejections,
            "pending_high_water": self.pending_high_water,
        }


def _run_baseline(stormers: int, window: float, seed: int) -> BaselineSample:
    simulator, tree = _build_tree(seed, relays=1, admission=None, prewarm=0, track=TRACK)
    storm = tree.flash_crowd(stormers, window, TRACK)
    simulator.run(until=simulator.now + DRAIN)
    relay = tree.leaves()[0].relay
    return BaselineSample(
        stormers=stormers,
        admitted=storm.admitted,
        pending_high_water=relay.statistics.pending_subscribe_high_water,
        rejections=relay.statistics.admission_rejections,
    )


# -------------------------------------------------------------------- throttled
@dataclass
class ThrottledSample:
    """One storm against a rate-limited relay, measured vs. the model."""

    stormers: int
    window: float
    policy: AdmissionPolicy
    admitted: int
    rejections: int
    measured_completion: float
    model_completion: float
    measured_p99_join: float
    model_p99_join: float
    #: Whether measured completion AND every join latency matched the
    #: closed-form replay float-for-float.
    exact: bool
    #: Analytic drain floor ``(count - depth) / rate`` the measured
    #: completion must dominate.
    drain_floor: float
    pending_high_water: int

    def as_row(self) -> dict[str, object]:
        return {
            "scenario": "throttled",
            "stormers": self.stormers,
            "admitted": self.admitted,
            "rejections": self.rejections,
            "completion_s": round(self.measured_completion, 6),
            "model_s": round(self.model_completion, 6),
            "p99_join_s": round(self.measured_p99_join, 6),
            "model_p99_s": round(self.model_p99_join, 6),
            "drain_floor_s": round(self.drain_floor, 6),
            "exact": self.exact,
            "pending_high_water": self.pending_high_water,
        }


def _run_throttled(
    stormers: int, window: float, policy: AdmissionPolicy, seed: int
) -> ThrottledSample:
    # Pre-warm one subscriber so the storm's track is live at the relay and
    # every admitted SUBSCRIBE is answered synchronously — the model's
    # no-upstream-round-trip precondition.
    simulator, tree = _build_tree(seed, relays=1, admission=policy, prewarm=1, track=TRACK)
    start = simulator.now
    storm = tree.flash_crowd(stormers, window, TRACK)
    simulator.run(until=simulator.now + DRAIN)
    storm.raise_for_failures()
    model = AdmissionModel(
        count=stormers,
        window=window,
        start=start,
        policy=policy,
        link_delay=tree.spec.subscriber_link.delay,
        alpn_version_negotiation=tree.session_config.alpn_version_negotiation,
    )
    measured_latencies = sorted(record.join_latency for record in storm.records)
    modelled_latencies = sorted(model.join_latencies())
    measured_completion = storm.completion_time or 0.0
    model_completion = model.completion_time()
    relay = tree.leaves()[0].relay
    return ThrottledSample(
        stormers=stormers,
        window=window,
        policy=policy,
        admitted=storm.admitted,
        rejections=relay.statistics.admission_rejections,
        measured_completion=measured_completion,
        model_completion=model_completion,
        measured_p99_join=percentile(measured_latencies, 0.99),
        model_p99_join=model.p99_join_latency(),
        exact=(
            measured_completion == model_completion
            and measured_latencies == modelled_latencies
        ),
        drain_floor=model.drain_time_lower_bound(),
        pending_high_water=relay.statistics.pending_subscribe_high_water,
    )


# -------------------------------------------------------------------- spillover
@dataclass
class SpilloverSample:
    """A storm pinned to one edge relay of a wider tier, spillover on."""

    stormers: int
    leaves: int
    admitted: int
    rejections: int
    spillovers: int
    #: Admitted subscribers per leaf, in leaf order — the hotspot spread.
    per_leaf: tuple[int, ...]
    completion: float

    def as_row(self) -> dict[str, object]:
        return {
            "scenario": "spillover",
            "stormers": self.stormers,
            "leaves": self.leaves,
            "admitted": self.admitted,
            "rejections": self.rejections,
            "spillovers": self.spillovers,
            "per_leaf": "/".join(str(count) for count in self.per_leaf),
            "completion_s": round(self.completion, 6),
        }


def _run_spillover(
    stormers: int,
    window: float,
    leaves: int,
    policy: AdmissionPolicy,
    seed: int,
    telemetry: Telemetry | None = None,
) -> SpilloverSample:
    simulator, tree = _build_tree(
        seed, relays=leaves, admission=policy, prewarm=leaves, track=TRACK
    )
    storm = tree.topology.flash_crowd(
        stormers,
        window,
        TRACK,
        retry=RetryPolicy(max_spillovers=1),
        leaf=tree.leaves()[0],
    )
    simulator.run(until=simulator.now + DRAIN)
    storm.raise_for_failures()
    admitted_on = {node.host.address: 0 for node in tree.leaves()}
    for record in storm.records:
        admitted_on[record.leaf] += 1
    if telemetry is not None:
        collect_run(telemetry.metrics, tree.network, tree)
    return SpilloverSample(
        stormers=stormers,
        leaves=leaves,
        admitted=storm.admitted,
        rejections=storm.rejections,
        spillovers=storm.spillovers,
        per_leaf=tuple(admitted_on[node.host.address] for node in tree.leaves()),
        completion=storm.completion_time or 0.0,
    )


# ----------------------------------------------------------------------- result
@dataclass
class FlashCrowdResult:
    """All three admission regimes of one seeded E16 run."""

    baselines: list[BaselineSample]
    throttled: ThrottledSample
    spillover: SpilloverSample

    @property
    def baseline_high_water_grows(self) -> bool:
        """Whether the unbounded queue pathology scales with storm size."""
        marks = [sample.pending_high_water for sample in self.baselines]
        return all(
            later > earlier for earlier, later in zip(marks, marks[1:])
        ) and marks[-1] >= self.baselines[-1].stormers

    def rows(self) -> list[dict[str, object]]:
        """One row per scenario run."""
        rows = [sample.as_row() for sample in self.baselines]
        rows.append(self.throttled.as_row())
        rows.append(self.spillover.as_row())
        return rows

    def summary_row(self) -> dict[str, object]:
        """The gates the perf harness and CI check."""
        return {
            "baseline_high_water_grows": self.baseline_high_water_grows,
            "throttled_all_admitted": self.throttled.admitted == self.throttled.stormers,
            "throttled_rejections": self.throttled.rejections,
            "model_exact": self.throttled.exact,
            "bounded_high_water": self.throttled.pending_high_water,
            "spillover_all_admitted": self.spillover.admitted == self.spillover.stormers,
            "spillovers": self.spillover.spillovers,
        }


def run_flash_crowd(
    stormers: int = 24,
    window: float = 0.05,
    subscribe_rate: float = 200.0,
    bucket_depth: int = 4,
    baseline_stormers: tuple[int, ...] = (16, 48),
    spillover_leaves: int = 3,
    seed: int = 11,
    telemetry: Telemetry | None = None,
) -> FlashCrowdResult:
    """Run E16: baseline pathology, model-exact throttling, spillover.

    Each scenario is its own seeded simulator run (storms are destructive
    to relay state, so they never share a tree).  The throttled scenario
    must admit every stormer with at least one rejection and match
    :class:`~repro.analysis.admission.AdmissionModel` bit-exactly; the
    spillover scenario must admit every stormer while moving some of them
    off the pinned hotspot leaf.
    """
    policy = AdmissionPolicy(subscribe_rate=subscribe_rate, bucket_depth=bucket_depth)
    baselines = [
        _run_baseline(count, window, seed) for count in baseline_stormers
    ]
    throttled = _run_throttled(stormers, window, policy, seed)
    spillover = _run_spillover(
        stormers, window, spillover_leaves, policy, seed, telemetry=telemetry
    )
    return FlashCrowdResult(
        baselines=baselines, throttled=throttled, spillover=spillover
    )
