"""E12 — relay churn: failover and gap recovery under a live CDN tree.

E11 showed a *static* relay tree keeps origin egress at O(branching
factor).  This experiment shows the tree survives what real CDNs are made
of — relays crashing mid-stream — without breaking the subscriber-facing
contract: every subscriber still observes every object exactly once, in
order.

The run builds the three-tier CDN hierarchy (origin -> mid -> edge ->
subscribers), subscribes the whole population and pushes a stream of
record updates.  Mid-stream it kills one *mid-tier* relay (orphaning a
whole edge subtree) and, later, one *edge* relay (orphaning directly
attached subscribers).  The topology layer re-homes every orphan through
the failover policy; the MoQT layer re-subscribes live tracks through the
new parent, fills the delivery gap with a FETCH against the new parent's
cache, and dedupes by (group, object) ID.

Measured per kill, and checked against :mod:`repro.analysis.churn`:

* re-attach latency per orphan tier — three round trips on the orphan <->
  new-parent link (QUIC handshake, MoQT SETUP, SUBSCRIBE), independent of
  the subscriber count;
* gapless delivery — after the final drain every subscriber's received
  sequence is exactly ``2 .. updates+1``, duplicate-free and in publish
  order, with the gap objects arriving via the recovery FETCH rather than
  the (dead) old parent.

Everything runs on the deterministic simulator: repeated runs with the
same seed produce identical latencies and byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.churn import RecoveryModel, recovery_model
from repro.experiments.relay_fanout import (
    ORIGIN_HOST,
    ORIGIN_PORT,
    TRACK,
    UPDATE_INTERVAL,
    _update_payload,
    build_origin,
)
from repro.moqt.objectmodel import MoqtObject
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.netsim.trace import NullTraceRecorder
from repro.relaynet import (
    FailoverEvent,
    OriginCluster,
    RelayTreeBuilder,
    RelayTreeSpec,
)
from repro.relaynet.topology import FailoverPolicy
from repro.telemetry import Telemetry
from repro.telemetry.collect import collect_run


@dataclass
class KillSample:
    """One relay kill: who died, who re-homed, and how fast."""

    cause: str
    killed: str
    killed_tier: str
    at: float
    orphan_relays: int
    orphan_subscribers: int
    #: Measured re-attach latencies grouped by the orphan's tier.
    latencies_by_tier: dict[str, list[float]]
    #: Closed-form prediction per orphan tier (same grouping).
    model_by_tier: dict[str, RecoveryModel]
    complete: bool

    def rows(self) -> list[dict[str, object]]:
        """One row per orphan tier: measured vs. modelled re-attach latency."""
        rows: list[dict[str, object]] = []
        for tier, latencies in sorted(self.latencies_by_tier.items()):
            model = self.model_by_tier.get(tier)
            predicted = model.reattach_latency if model is not None else 0.0
            mean = sum(latencies) / len(latencies) if latencies else 0.0
            rows.append(
                {
                    "killed": f"{self.killed} ({self.cause})",
                    "orphan_tier": tier,
                    "orphans": len(latencies),
                    "reattach_ms_mean": round(mean * 1000, 3),
                    "reattach_ms_max": round(max(latencies) * 1000, 3) if latencies else 0.0,
                    "model_ms": round(predicted * 1000, 3),
                    "complete": self.complete,
                }
            )
        return rows


@dataclass
class RelayChurnResult:
    """Outcome of the churn experiment."""

    subscribers: int
    updates: int
    kills: list[KillSample]
    #: Subscribers whose delivered sequence is exactly the published one
    #: (gapless, duplicate-free, in order).
    gapless_subscribers: int
    delivered_objects: int
    expected_objects: int
    #: Duplicates suppressed below the application: at re-homed relays and
    #: at re-attached subscribers (the FETCH/live overlap).
    relay_duplicates_dropped: int
    subscriber_duplicates_dropped: int
    recovery_fetches: int
    recovered_objects: int
    subscriber_gap_fetches: int
    #: Per-subscriber delivered group sequences, keyed by subscriber index —
    #: the determinism canary compares these bit-for-bit across seeded runs.
    delivery_sequences: dict[int, list[int]] = field(default_factory=dict)
    events: list[FailoverEvent] = field(default_factory=list)

    @property
    def gapless(self) -> bool:
        """Whether every subscriber saw a perfect sequence."""
        return self.gapless_subscribers == self.subscribers

    def rows(self) -> list[dict[str, object]]:
        """Per-kill, per-orphan-tier summary rows."""
        return [row for kill in self.kills for row in kill.rows()]

    def summary_row(self) -> dict[str, object]:
        """Headline row for reports."""
        return {
            "subscribers": self.subscribers,
            "updates": self.updates,
            "kills": len(self.kills),
            "delivered": self.delivered_objects,
            "expected": self.expected_objects,
            "gapless_subs": self.gapless_subscribers,
            "dup_dropped": self.relay_duplicates_dropped + self.subscriber_duplicates_dropped,
            "recovery_fetches": self.recovery_fetches + self.subscriber_gap_fetches,
            "recovered_objects": self.recovered_objects,
        }


def _kill_sample(
    event: FailoverEvent,
    spec: RelayTreeSpec,
    alpn_version_negotiation: bool,
) -> KillSample:
    """Pair a failover event's measurements with the model's predictions."""
    model_by_tier: dict[str, RecoveryModel] = {}
    for tier_spec in spec.tiers:
        # Orphans of this tier re-home over their own uplink class.
        model_by_tier[tier_spec.name] = recovery_model(
            tier_spec.uplink.delay, alpn_version_negotiation
        )
    model_by_tier["subscribers"] = recovery_model(
        spec.subscriber_link.delay, alpn_version_negotiation
    )
    return KillSample(
        cause=event.cause,
        killed=event.node,
        killed_tier=event.tier,
        at=event.at,
        orphan_relays=len(event.orphans("relay")),
        orphan_subscribers=len(event.orphans("subscriber")),
        latencies_by_tier=event.latencies_by_tier(),
        model_by_tier=model_by_tier,
        complete=event.complete,
    )


def run_relay_churn(
    subscribers: int = 1000,
    mid_relays: int = 4,
    edge_per_mid: int = 4,
    updates_before: int = 4,
    updates_between: int = 4,
    updates_after: int = 4,
    payload_size: int = 300,
    seed: int = 23,
    failover_policy: FailoverPolicy | None = None,
    kill_edge: bool = True,
    origins: int = 1,
    telemetry: Telemetry | None = None,
    aggregate_leaves: bool = False,
) -> RelayChurnResult:
    """Kill relays under a live CDN tree and measure the recovery.

    The stream pushes ``updates_before`` objects, kills a mid-tier relay
    (its whole edge subtree re-homes and gap-fills via FETCH), pushes
    ``updates_between`` more, kills an edge relay (its subscribers
    re-attach to surviving leaves), and pushes ``updates_after`` more.
    Set ``kill_edge=False`` for the single mid-tier kill of the E12
    acceptance run.

    ``origins > 1`` publishes through a replicated
    :class:`~repro.relaynet.origincluster.OriginCluster` instead of the
    singleton origin.  No origin is crashed here, so every measured output
    must be identical either way — the determinism canary the E14 battery
    locks in.

    ``aggregate_leaves`` attaches the population in counted aggregate-leaf
    mode.  A kill that touches an aggregated leaf dissolves its group —
    exactly the affected members materialise and re-attach individually —
    so delivery sequences, gapless counts and re-attach latencies are
    bit-identical to the dense run.
    """
    simulator = Simulator(seed=seed)
    network = Network(simulator, trace=NullTraceRecorder(simulator), telemetry=telemetry)
    if telemetry is not None and telemetry.spans is not None:
        telemetry.spans.clear()
    spec = RelayTreeSpec.cdn(
        mid_relays=mid_relays, edge_per_mid=edge_per_mid, origins=origins
    )
    origin_cluster = None
    if spec.origins > 1:
        origin_cluster = OriginCluster(
            network, origins=spec.origins, standby_link=spec.tiers[0].uplink
        )
        publisher = origin_cluster.publisher
    else:
        publisher = build_origin(network)
    builder = RelayTreeBuilder(
        network,
        Address(ORIGIN_HOST, ORIGIN_PORT),
        failover_policy=failover_policy,
        origin_cluster=origin_cluster,
        aggregate_leaves=aggregate_leaves,
    )
    tree = builder.build(spec)
    tree.attach_subscribers(subscribers)
    received: dict[int, list[int]] = {sub.index: [] for sub in tree.subscribers}
    if aggregate_leaves:
        # A materialised member inherits its representative's delivery
        # history — that history *is* the member's own under the aggregate
        # invariant.  Copied before the member sees any new traffic.
        tree.topology.on_subscriber_split = lambda member, rep: received.__setitem__(
            member.index, list(received[rep.index])
        )
    tree.subscribe_all(
        TRACK, on_object=lambda sub, obj: received[sub.index].append(obj.group_id)
    )
    simulator.run(until=simulator.now + 3.0)

    next_group = 2

    def push(count: int) -> None:
        nonlocal next_group
        for _ in range(count):
            obj = MoqtObject(
                group_id=next_group,
                object_id=0,
                payload=_update_payload(next_group, payload_size),
            )
            if origin_cluster is not None:
                origin_cluster.push(obj)
            else:
                publisher.push(obj)
            next_group += 1
            simulator.run(until=simulator.now + UPDATE_INTERVAL)

    events: list[FailoverEvent] = []
    push(updates_before)
    # Kill a mid-tier relay while an update is still in flight: its edge
    # subtree must re-home and recover the missed objects via FETCH.
    mid_victims = [node for node in tree.tier("mid") if node.alive]
    events.append(tree.kill_relay(mid_victims[len(mid_victims) // 2]))
    push(updates_between)
    if kill_edge:
        # Then kill an edge relay: its subscribers re-attach to surviving
        # leaves and gap-fill from their caches.
        edge_victims = [node for node in tree.tier("edge") if node.alive]
        events.append(tree.kill_relay(edge_victims[0]))
    push(updates_after)
    simulator.run(until=simulator.now + 5.0)

    if aggregate_leaves:
        from repro.relaynet import expand_member_sequences

        received = expand_member_sequences(tree.topology, received)
    updates = updates_before + updates_between + updates_after
    expected_sequence = list(range(2, updates + 2))
    gapless = sum(1 for groups in received.values() if groups == expected_sequence)
    delivered = sum(len(groups) for groups in received.values())

    alpn = tree.session_config.alpn_version_negotiation
    kills = [_kill_sample(event, spec, alpn) for event in events]
    relay_duplicates = sum(
        node.relay.statistics.duplicate_objects_dropped for node in tree.nodes()
    )
    recovery_fetches = sum(
        node.relay.statistics.recovery_fetches for node in tree.nodes()
    )
    recovered_objects = sum(
        node.relay.statistics.recovered_objects for node in tree.nodes()
    )
    subscriber_duplicates = sum(
        sub.duplicates_dropped * sub.multiplicity for sub in tree.subscribers
    )
    gap_fetches = sum(sub.gap_fetches * sub.multiplicity for sub in tree.subscribers)
    if telemetry is not None:
        collect_run(telemetry.metrics, network, tree, origin_cluster=origin_cluster)
    return RelayChurnResult(
        subscribers=subscribers,
        updates=updates,
        kills=kills,
        gapless_subscribers=gapless,
        delivered_objects=delivered,
        expected_objects=subscribers * updates,
        relay_duplicates_dropped=relay_duplicates,
        subscriber_duplicates_dropped=subscriber_duplicates,
        recovery_fetches=recovery_fetches,
        recovered_objects=recovered_objects,
        subscriber_gap_fetches=gap_fetches,
        delivery_sequences=received,
        events=events,
    )
