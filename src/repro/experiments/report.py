"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _render_value(value: Any) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.001):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[dict[str, Any]], columns: Iterable[str] | None = None) -> str:
    """Render a list of row dictionaries as an aligned text table.

    Columns default to the keys of the first row, in order.  Every experiment
    and benchmark prints its results through this helper so the output is
    directly comparable to the tables in ``EXPERIMENTS.md``.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)"
    column_names = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_render_value(row.get(name, "")) for name in column_names] for row in rows]
    widths = [
        max(len(name), *(len(line[index]) for line in rendered))
        for index, name in enumerate(column_names)
    ]
    header = "  ".join(name.ljust(widths[index]) for index, name in enumerate(column_names))
    separator = "  ".join("-" * widths[index] for index in range(len(column_names)))
    body = [
        "  ".join(line[index].ljust(widths[index]) for index in range(len(column_names)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def format_mapping(mapping: dict[str, Any], title: str | None = None) -> str:
    """Render a flat mapping as ``key: value`` lines."""
    lines = [] if title is None else [title]
    for key, value in mapping.items():
        lines.append(f"  {key}: {_render_value(value)}")
    return "\n".join(lines)
