"""E13 — in-band failure detection: failover with zero control-plane kills.

E12 measured failover with an oracle: the topology controller *knew* a
relay died (it killed it) and evacuated the subtree in the same instant,
so re-attach latency was the pure 3-RTT floor.  Real CDN deployments have
no such oracle — a crashed relay simply stops answering, and the only
failure signals any orphan has are its own QUIC timers.  This experiment
closes that gap: relays are crashed *silently*
(:meth:`repro.relaynet.RelayTopology.crash_relay` — no close frames, no
controller notification) and recovery is driven purely in-band:

* **mid-tier crash → PTO-suspect path.**  Edge relays run keepalive PINGs
  on their uplinks; the first PING after the crash goes unacknowledged,
  consecutive probe timeouts (doubling backoff) reach the suspect
  threshold, and the orphan reports the dead parent through
  :meth:`~repro.relaynet.RelayTopology.report_failure`, which runs the
  ordinary failover policies — pending subscribes are transplanted to the
  new parent instead of erroring back;
* **edge crash → idle-timeout path.**  Subscribers only ever receive, so
  nothing of theirs can go unacknowledged; their shortened idle timeout is
  the detector, firing exactly ``idle_timeout`` after the last packet the
  dead leaf delivered.

Measured per crash and checked against :mod:`repro.analysis.detection`
(with re-attach stacked on the 3-RTT floor of :mod:`repro.analysis.churn`):

* detection latency — from the silent crash to the first in-band report,
  predicted from the orphans' transport state (keepalive phase + probe
  timeout backoff, or the idle deadline) snapshotted at crash time;
* re-attach latency per orphan tier — still the 3-RTT floor, now starting
  at detection rather than at the crash;
* gapless delivery — every subscriber's sequence is exactly the published
  one, duplicate-free and in order, with the detection window's objects
  arriving via the recovery FETCH.

Everything runs on the deterministic simulator: repeated runs with the
same seed produce identical detection latencies and delivery sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.churn import RecoveryModel, recovery_model
from repro.analysis.detection import DetectionModel
from repro.experiments.relay_fanout import (
    ORIGIN_HOST,
    ORIGIN_PORT,
    TRACK,
    UPDATE_INTERVAL,
    _update_payload,
    build_origin,
)
from repro.moqt.objectmodel import MoqtObject
from repro.moqt.relay import MOQT_ALPN
from repro.netsim.network import Network
from repro.netsim.packet import Address
from repro.netsim.simulator import Simulator
from repro.netsim.trace import NullTraceRecorder
from repro.quic.connection import ConnectionConfig
from repro.relaynet import FailoverEvent, OriginCluster, RelayTreeSpec
from repro.relaynet.topology import RelayNode, RelayTopology
from repro.telemetry import Telemetry
from repro.telemetry.collect import collect_run

#: Floating-point slack when comparing simulator timestamps against the
#: closed-form model (the simulator and the model associate the same sums
#: differently).
MODEL_TOLERANCE = 1e-9


@dataclass
class DetectionSample:
    """One silent crash: how it was detected, how fast, and the failover."""

    killed: str
    killed_tier: str
    crashed_at: float
    #: Which in-band signal the first reporter raised ("pto-suspect" /
    #: "idle-timeout" / "pto-give-up").
    detected_via: str
    #: The path the model predicted would win.
    model_path: str
    #: Seconds from the crash to the first report, measured and predicted.
    detection_latency: float
    model_detection_latency: float
    orphan_relays: int
    orphan_subscribers: int
    #: Measured re-attach latencies (detection → SUBSCRIBE_OK) per tier.
    latencies_by_tier: dict[str, list[float]]
    #: The 3-RTT re-attach floor per orphan tier.
    reattach_model_by_tier: dict[str, RecoveryModel]
    complete: bool

    @property
    def detection_model_ok(self) -> bool:
        """Whether the measured detection matches the closed form."""
        return (
            self.detected_via == self.model_path
            and abs(self.detection_latency - self.model_detection_latency)
            <= MODEL_TOLERANCE
        )

    @property
    def reattach_model_ok(self) -> bool:
        """Whether every orphan re-attached on the 3-RTT floor."""
        for tier, latencies in self.latencies_by_tier.items():
            model = self.reattach_model_by_tier.get(tier)
            if model is None:
                return False
            if any(
                abs(latency - model.reattach_latency) > MODEL_TOLERANCE
                for latency in latencies
            ):
                return False
        return True

    def rows(self) -> list[dict[str, object]]:
        """One row per orphan tier: detection + re-attach, measured vs model."""
        rows: list[dict[str, object]] = []
        for tier, latencies in sorted(self.latencies_by_tier.items()):
            model = self.reattach_model_by_tier.get(tier)
            reattach_model = model.reattach_latency if model is not None else 0.0
            mean = sum(latencies) / len(latencies) if latencies else 0.0
            rows.append(
                {
                    "killed": self.killed,
                    "path": self.detected_via,
                    "orphan_tier": tier,
                    "orphans": len(latencies),
                    "detect_ms": round(self.detection_latency * 1000, 3),
                    "detect_model_ms": round(self.model_detection_latency * 1000, 3),
                    "reattach_ms_mean": round(mean * 1000, 3),
                    "reattach_model_ms": round(reattach_model * 1000, 3),
                    "failover_ms_model": round(
                        (self.model_detection_latency + reattach_model) * 1000, 3
                    ),
                    "complete": self.complete,
                }
            )
        return rows


@dataclass
class FailureDetectionResult:
    """Outcome of the E13 experiment."""

    subscribers: int
    updates: int
    samples: list[DetectionSample]
    gapless_subscribers: int
    delivered_objects: int
    expected_objects: int
    relay_duplicates_dropped: int
    subscriber_duplicates_dropped: int
    recovery_fetches: int
    recovered_objects: int
    subscriber_gap_fetches: int
    #: Uplink failures the relays noticed through transport liveness.
    uplink_failures_detected: int
    #: Failover events whose node was never actually crashed (must be 0).
    false_positive_events: int
    #: Control-plane kill signals issued (must be 0 — that is the point).
    control_plane_kills: int
    #: Per-subscriber delivered group sequences (determinism canary).
    delivery_sequences: dict[int, list[int]] = field(default_factory=dict)
    events: list[FailoverEvent] = field(default_factory=list)

    @property
    def gapless(self) -> bool:
        """Whether every subscriber saw a perfect sequence."""
        return self.gapless_subscribers == self.subscribers

    @property
    def detection_model_ok(self) -> bool:
        """Whether every crash's detection matched the closed form."""
        return all(sample.detection_model_ok for sample in self.samples)

    @property
    def reattach_model_ok(self) -> bool:
        """Whether every orphan re-attached on the 3-RTT floor."""
        return all(sample.reattach_model_ok for sample in self.samples)

    def rows(self) -> list[dict[str, object]]:
        """Per-crash, per-orphan-tier summary rows."""
        return [row for sample in self.samples for row in sample.rows()]

    def summary_row(self) -> dict[str, object]:
        """Headline row for reports."""
        return {
            "subscribers": self.subscribers,
            "updates": self.updates,
            "crashes": len(self.samples),
            "control_plane_kills": self.control_plane_kills,
            "delivered": self.delivered_objects,
            "expected": self.expected_objects,
            "gapless_subs": self.gapless_subscribers,
            "detection_ok": self.detection_model_ok,
            "reattach_ok": self.reattach_model_ok,
            "dup_dropped": self.relay_duplicates_dropped
            + self.subscriber_duplicates_dropped,
            "recovery_fetches": self.recovery_fetches + self.subscriber_gap_fetches,
        }


def detection_model_for_connection(connection, crashed_at: float) -> DetectionModel:
    """Snapshot a live connection's detector inputs at crash time.

    The bridge between the implementation-independent closed forms in
    :mod:`repro.analysis.detection` and a running
    :class:`~repro.quic.connection.QuicConnection`: the transport's timer
    deadlines, probe timeout and liveness constants become the model's
    inputs (a test pins the analysis-side default constants to the
    transport's, so drift between model and implementation stays visible).
    """
    idle_deadline = connection.idle_deadline
    if idle_deadline is None:
        raise ValueError("connection is closed; nothing left to detect with")
    return DetectionModel(
        crashed_at=crashed_at,
        probe_timeout=connection.probe_timeout,
        next_send_at=connection.keepalive_deadline,
        idle_deadline=idle_deadline,
        suspect_after=connection.LIVENESS_SUSPECT_AFTER,
        backoff_cap=connection.PTO_BACKOFF_EXPONENT_CAP,
        idle_timeout=connection.config.idle_timeout,
    )


def _snapshot_models(
    connections, now: float
) -> list[DetectionModel]:
    """Model the in-band detector of each orphan connection at crash time.

    The closed forms assume a quiescent connection (nothing already
    unacknowledged when the peer dies); the experiment schedules its
    crashes between update bursts so that holds, and fails loudly if not.
    Orphans without a transport (lazy relays that never subscribed — too
    few subscribers for the tree) have nothing to detect with and are
    skipped; at least one observable orphan is required.
    """
    models = []
    for connection in connections:
        if connection is None:
            continue
        if connection.unacked_packets:
            raise RuntimeError(
                "crash scheduled while data was in flight; the closed-form "
                "detection model does not apply"
            )
        models.append(detection_model_for_connection(connection, now))
    if not models:
        raise ValueError(
            "no orphan holds a live uplink/session to the crash victim — "
            "the tree is too sparse for in-band detection (attach more "
            "subscribers so every edge relay subscribes upstream)"
        )
    return models


def _sample(
    event: FailoverEvent,
    crashed_at: float,
    models: list[DetectionModel],
    spec: RelayTreeSpec,
    alpn_version_negotiation: bool,
) -> DetectionSample:
    """Pair one detected failover with the predictions made at crash time."""
    best = min(models, key=lambda model: model.detected_at)
    reattach_model_by_tier: dict[str, RecoveryModel] = {}
    for tier_spec in spec.tiers:
        reattach_model_by_tier[tier_spec.name] = recovery_model(
            tier_spec.uplink.delay, alpn_version_negotiation
        )
    reattach_model_by_tier["subscribers"] = recovery_model(
        spec.subscriber_link.delay, alpn_version_negotiation
    )
    return DetectionSample(
        killed=event.node,
        killed_tier=event.tier,
        crashed_at=crashed_at,
        detected_via=event.detected_via,
        model_path=best.path,
        detection_latency=event.detection_latency if event.detection_latency is not None else -1.0,
        model_detection_latency=best.detected_at - crashed_at,
        orphan_relays=len(event.orphans("relay")),
        orphan_subscribers=len(event.orphans("subscriber")),
        latencies_by_tier=event.latencies_by_tier(),
        reattach_model_by_tier=reattach_model_by_tier,
        complete=event.complete,
    )


def run_failure_detection(
    subscribers: int = 1000,
    mid_relays: int = 4,
    edge_per_mid: int = 4,
    updates_before: int = 4,
    updates_between: int = 6,
    updates_after: int = 6,
    payload_size: int = 300,
    seed: int = 29,
    keepalive_interval: float = 0.5,
    subscriber_idle_timeout: float = 1.5,
    origins: int = 1,
    telemetry: Telemetry | None = None,
    aggregate_leaves: bool = False,
) -> FailureDetectionResult:
    """Crash relays silently under a live CDN tree; recover purely in-band.

    The stream pushes ``updates_before`` objects, silently crashes a
    mid-tier relay (edge orphans detect via keepalive PTOs — the
    PTO-suspect path), pushes ``updates_between`` more, silently crashes an
    edge relay (its subscribers detect via idle expiry — the idle-timeout
    path), pushes ``updates_after`` more and drains.  No control-plane kill
    signal is ever issued.

    ``origins > 1`` publishes through a replicated
    :class:`~repro.relaynet.origincluster.OriginCluster`.  No origin is
    crashed in this experiment, so detection latencies and delivery
    sequences must be identical either way — the determinism canary the
    E14 battery locks in.

    ``aggregate_leaves`` attaches the population counted.  Detection is
    unchanged: an aggregated representative holds the same idle-deadline
    state every dense member would, so the first (and only) idle expiry
    fires at the same instant and the dissolved members re-attach exactly
    as the dense orphans do.
    """
    simulator = Simulator(seed=seed)
    network = Network(simulator, trace=NullTraceRecorder(simulator), telemetry=telemetry)
    if telemetry is not None and telemetry.spans is not None:
        telemetry.spans.clear()
    spec = RelayTreeSpec.cdn(
        mid_relays=mid_relays, edge_per_mid=edge_per_mid, origins=origins
    )
    origin_cluster = None
    if spec.origins > 1:
        origin_cluster = OriginCluster(
            network, origins=spec.origins, standby_link=spec.tiers[0].uplink
        )
        publisher = origin_cluster.publisher
    else:
        publisher = build_origin(network)
    topology = RelayTopology(
        network,
        Address(ORIGIN_HOST, ORIGIN_PORT),
        spec,
        uplink_connection=ConnectionConfig(
            alpn_protocols=(MOQT_ALPN,), keepalive_interval=keepalive_interval
        ),
        subscriber_connection=ConnectionConfig(
            alpn_protocols=(MOQT_ALPN,), idle_timeout=subscriber_idle_timeout
        ),
        origin_cluster=origin_cluster,
        aggregate_leaves=aggregate_leaves,
    )
    topology.attach_subscribers(subscribers)
    received: dict[int, list[int]] = {sub.index: [] for sub in topology.subscribers}
    if aggregate_leaves:
        topology.on_subscriber_split = lambda member, rep: received.__setitem__(
            member.index, list(received[rep.index])
        )
    topology.subscribe_all(
        TRACK, on_object=lambda sub, obj: received[sub.index].append(obj.group_id)
    )
    # Warm-up must stay shorter than the subscribers' idle timeout: in-band
    # detection cannot tell a dead leaf from a silent one.
    simulator.run(until=simulator.now + min(1.0, 0.6 * subscriber_idle_timeout))

    next_group = 2

    def push(count: int) -> None:
        nonlocal next_group
        for _ in range(count):
            obj = MoqtObject(
                group_id=next_group,
                object_id=0,
                payload=_update_payload(next_group, payload_size),
            )
            if origin_cluster is not None:
                origin_cluster.push(obj)
            else:
                publisher.push(obj)
            next_group += 1
            simulator.run(until=simulator.now + UPDATE_INTERVAL)

    crashes: list[tuple[float, list[DetectionModel], RelayNode]] = []

    push(updates_before)
    # Silently crash a mid-tier relay: its edge children hold keepalive'd
    # uplinks, so the next PING's consecutive probe timeouts are the signal.
    mid_victims = [node for node in topology.tier("mid") if node.alive]
    victim = mid_victims[len(mid_victims) // 2]
    models = _snapshot_models(
        [
            child.relay.upstream_quic_connection
            for child in topology.children(victim)
        ],
        simulator.now,
    )
    crashes.append((simulator.now, models, victim))
    topology.crash_relay(victim)
    push(updates_between)

    # Silently crash an edge relay: its subscribers never send, so their
    # (shortened) idle timeout is the only signal they get.
    edge_victims = [node for node in topology.tier("edge") if node.alive]
    victim = edge_victims[0]
    models = _snapshot_models(
        [
            sub.session.connection
            for sub in topology.subscribers
            if sub.leaf is victim
        ],
        simulator.now,
    )
    crashes.append((simulator.now, models, victim))
    topology.crash_relay(victim)
    push(updates_after)
    # Bounded drain: long enough for the idle-path detection plus recovery,
    # short enough that healthy-but-quiet subscriber sessions do not idle
    # out and trigger false failovers (the inherent ambiguity of in-band
    # detection; deployments keep subscriber links chatty or accept
    # reconnect churn).
    simulator.run(until=simulator.now + 0.5 * subscriber_idle_timeout)

    if aggregate_leaves:
        from repro.relaynet import expand_member_sequences

        received = expand_member_sequences(topology, received)
    updates = updates_before + updates_between + updates_after
    expected_sequence = list(range(2, updates + 2))
    gapless = sum(1 for groups in received.values() if groups == expected_sequence)
    delivered = sum(len(groups) for groups in received.values())

    alpn = topology.session_config.alpn_version_negotiation
    crashed_names = {node.host.address for _, _, node in crashes}
    false_positives = sum(
        1 for event in topology.events if event.node not in crashed_names
    )
    # Measured, not asserted: any failover that ran through the announced
    # control-plane paths (kill/leave) would show up here and fail the gate.
    control_plane_kills = sum(
        1 for event in topology.events if event.cause in ("kill", "leave")
    )
    samples = []
    for (crashed_at, models, node) in crashes:
        if node.failure_event is not None:
            samples.append(
                _sample(node.failure_event, crashed_at, models, spec, alpn)
            )
    nodes = topology.nodes()
    if telemetry is not None:
        collect_run(telemetry.metrics, network, topology, origin_cluster=origin_cluster)
    return FailureDetectionResult(
        subscribers=subscribers,
        updates=updates,
        samples=samples,
        gapless_subscribers=gapless,
        delivered_objects=delivered,
        expected_objects=subscribers * updates,
        relay_duplicates_dropped=sum(
            node.relay.statistics.duplicate_objects_dropped for node in nodes
        ),
        subscriber_duplicates_dropped=sum(
            sub.duplicates_dropped * sub.multiplicity for sub in topology.subscribers
        ),
        recovery_fetches=sum(node.relay.statistics.recovery_fetches for node in nodes),
        recovered_objects=sum(node.relay.statistics.recovered_objects for node in nodes),
        subscriber_gap_fetches=sum(
            sub.gap_fetches * sub.multiplicity for sub in topology.subscribers
        ),
        uplink_failures_detected=sum(
            node.relay.statistics.uplink_failures_detected for node in nodes
        ),
        false_positive_events=false_positives,
        control_plane_kills=control_plane_kills,
        delivery_sequences=received,
        events=list(topology.events),
    )
