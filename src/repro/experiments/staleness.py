"""E5 — update timeliness: how quickly resolvers see the latest record version.

The paper argues that pub/sub "can considerably reduce the time it takes for
a resolver to receive the latest version of a record, depending on the
actual TTL" (§5).  The experiment changes a record at the authoritative zone
at several offsets within the TTL window and measures:

* **pub/sub** — when the subscribed forwarder receives the pushed update
  (sum of propagation delays, independent of the TTL);
* **polling** — when a continuously interested classic stub first receives
  the new version (bounded by the remaining TTL at the recursive resolver's
  cache).

Both are compared against the analytical staleness model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.staleness import expected_staleness_polling, pubsub_staleness
from repro.core.mapping import DnsQuestionKey
from repro.dns.name import Name
from repro.dns.types import RecordType
from repro.experiments.topology import SmallTopology, SmallTopologyConfig


@dataclass
class StalenessSample:
    """One record change and when each resolver flavour learned about it."""

    ttl: int
    change_offset_fraction: float
    pubsub_staleness: float
    polling_staleness: float

    @property
    def improvement_factor(self) -> float:
        """Polling staleness divided by pub/sub staleness."""
        if self.pubsub_staleness <= 0:
            return float("inf")
        return self.polling_staleness / self.pubsub_staleness

    def as_row(self) -> dict[str, object]:
        """Row representation for report tables."""
        return {
            "ttl": self.ttl,
            "change_offset": round(self.change_offset_fraction, 2),
            "pubsub_s": round(self.pubsub_staleness, 4),
            "polling_s": round(self.polling_staleness, 4),
            "improvement_x": round(self.improvement_factor, 1),
        }


@dataclass
class StalenessResult:
    """Samples across TTLs plus the model predictions."""

    samples: list[StalenessSample]
    model_expected_polling: dict[int, float]
    model_pubsub: float

    def rows(self) -> list[dict[str, object]]:
        """Table rows."""
        return [sample.as_row() for sample in self.samples]

    def mean_improvement(self, ttl: int) -> float:
        """Average improvement factor for one TTL."""
        factors = [
            sample.improvement_factor
            for sample in self.samples
            if sample.ttl == ttl and sample.improvement_factor != float("inf")
        ]
        return sum(factors) / len(factors) if factors else float("inf")


def _measure_one(
    ttl: int, change_offset_fraction: float, stub_rtt: float, upstream_rtt: float
) -> StalenessSample:
    config = SmallTopologyConfig(record_ttl=ttl, stub_rtt=stub_rtt, upstream_rtt=upstream_rtt)
    topology = SmallTopology(config)
    simulator = topology.simulator
    key = DnsQuestionKey(qname=Name.from_text(config.domain), qtype=RecordType.A)

    # Warm the pub/sub path (the forwarder subscribes) and establish the
    # classic sessions, then re-fill the recursive resolver's cache at a
    # known instant so the change offset is measured within its TTL window.
    topology.forwarder.resolve(key, lambda message, version: None)
    topology.classic_stub.resolve(config.domain, "A", lambda outcome: None)
    topology.run(5.0)
    topology.classic_recursive.cache.flush()
    topology.classic_stub.cache.flush()
    cache_filled: list[float] = []
    topology.classic_stub.resolve(
        config.domain, "A", lambda outcome: cache_filled.append(simulator.now)
    )
    topology.run(2.0)
    warm_time = cache_filled[0] if cache_filled else simulator.now

    # Change the record part-way through the recursive cache's TTL window.
    change_time = warm_time + change_offset_fraction * ttl
    topology.run(change_time - simulator.now)
    push_times: list[float] = []
    topology.forwarder.on_record_updated.append(
        lambda _key, record: push_times.append(simulator.now)
    )
    new_address = "192.0.2.200"
    topology.update_record(new_address)

    # Poll the classic path every second (with a per-query fresh stub cache)
    # until it returns the new address.
    polling_observed: list[float] = []

    def poll() -> None:
        if polling_observed:
            return
        topology.classic_stub.cache.flush()

        def on_answer(outcome) -> None:
            if polling_observed:
                return
            addresses = outcome.rrset.sorted_rdata_texts() if outcome.rrset else []
            if new_address in addresses:
                polling_observed.append(simulator.now)
            else:
                simulator.call_later(max(1.0, ttl / 20.0), poll)

        topology.classic_stub.resolve(config.domain, "A", on_answer)

    poll()
    topology.run(ttl * 2.0 + 10.0)

    pubsub = (push_times[0] - change_time) if push_times else float("nan")
    polling = (polling_observed[0] - change_time) if polling_observed else float("nan")
    return StalenessSample(
        ttl=ttl,
        change_offset_fraction=change_offset_fraction,
        pubsub_staleness=pubsub,
        polling_staleness=polling,
    )


def run_staleness(
    ttls: list[int] | None = None,
    change_offsets: list[float] | None = None,
    stub_rtt: float = 0.010,
    upstream_rtt: float = 0.040,
) -> StalenessResult:
    """Run the update-timeliness experiment across TTLs and change offsets."""
    ttl_values = ttls if ttls is not None else [10, 60, 300]
    offsets = change_offsets if change_offsets is not None else [0.25, 0.5, 0.75]
    samples = [
        _measure_one(ttl, offset, stub_rtt, upstream_rtt)
        for ttl in ttl_values
        for offset in offsets
    ]
    model_polling = {ttl: expected_staleness_polling(ttl, cache_layers=1) for ttl in ttl_values}
    model_push = pubsub_staleness([upstream_rtt / 2.0, stub_rtt / 2.0])
    return StalenessResult(
        samples=samples, model_expected_polling=model_polling, model_pubsub=model_push
    )
