"""MoQT relays: fan-out, subscription aggregation and object caching.

Relays are MoQT endpoints that neither produce nor consume objects; they
forward objects from publishers to subscribers without looking at payloads
(§3 of the paper).  Because objects carrying DNS responses are opaque to
them, a generic relay can distribute DNS record updates from an
authoritative server to many resolvers, which is what the CDN and deep-space
use cases in §5.3 rely on.

The relay implemented here:

* accepts downstream MoQT sessions on a QUIC server endpoint;
* aggregates subscriptions — the first downstream SUBSCRIBE for a track
  creates a single upstream subscription, later ones share it;
* caches objects per track so FETCH requests can be answered locally once at
  least one object has been seen, and forwards FETCHes upstream otherwise;
* forwards every received object to all downstream subscribers of the track.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.moqt.errors import FetchErrorCode, SubscribeErrorCode
from repro.moqt.messages import Fetch, FetchType, Subscribe
from repro.moqt.objectmodel import Location, MoqtObject, TrackState
from repro.moqt.session import (
    FetchResult,
    MoqtSession,
    MoqtSessionConfig,
    SubscribeResult,
    Subscription,
)
from repro.moqt.track import FullTrackName
from repro.netsim.node import Host
from repro.netsim.packet import Address
from repro.quic.connection import ConnectionConfig, QuicConnection
from repro.quic.endpoint import QuicEndpoint
from repro.quic.tls import ServerTlsContext

MOQT_ALPN = "moq-00"
DEFAULT_MOQT_PORT = 4443


@dataclass
class _DownstreamSubscriber:
    """One downstream subscription attached to a relayed track."""

    session: MoqtSession
    request_id: int


@dataclass
class RelayTrack:
    """Relay state for one full track name."""

    full_track_name: FullTrackName
    cache: TrackState
    upstream_subscription: Subscription | None = None
    downstream: list[_DownstreamSubscriber] = field(default_factory=list)
    objects_forwarded: int = 0


@dataclass
class RelayStatistics:
    """Counters kept by a relay."""

    downstream_sessions: int = 0
    downstream_subscribes: int = 0
    upstream_subscribes: int = 0
    objects_received: int = 0
    objects_forwarded: int = 0
    fetches_served_from_cache: int = 0
    fetches_forwarded_upstream: int = 0


class MoqtRelay:
    """A caching, aggregating MoQT relay.

    Parameters
    ----------
    host:
        The simulated host the relay runs on.
    upstream:
        Address of the upstream MoQT endpoint (origin publisher or another
        relay).
    port:
        Port to accept downstream sessions on.
    """

    def __init__(
        self,
        host: Host,
        upstream: Address,
        port: int = DEFAULT_MOQT_PORT,
        session_config: MoqtSessionConfig | None = None,
    ) -> None:
        self.host = host
        self.simulator = host.simulator
        self.upstream_address = upstream
        self.session_config = session_config if session_config is not None else MoqtSessionConfig()
        self.statistics = RelayStatistics()
        self._tracks: dict[FullTrackName, RelayTrack] = {}
        self._downstream_sessions: list[MoqtSession] = []
        self._upstream_session: MoqtSession | None = None

        self._server_endpoint = QuicEndpoint(
            host,
            port=port,
            server_tls=ServerTlsContext(alpn_protocols=(MOQT_ALPN,)),
            on_connection=self._on_downstream_connection,
        )
        self._client_endpoint = QuicEndpoint(host)

    @property
    def address(self) -> Address:
        """The address downstream subscribers connect to."""
        return self._server_endpoint.address

    # ----------------------------------------------------------- downstream side
    def _on_downstream_connection(self, connection: QuicConnection) -> None:
        session = MoqtSession(
            connection,
            is_client=False,
            config=self.session_config,
            publisher_delegate=_RelayDelegate(self),
        )
        self._downstream_sessions.append(session)
        self.statistics.downstream_sessions += 1

    def downstream_sessions(self) -> list[MoqtSession]:
        """All downstream sessions accepted so far."""
        return list(self._downstream_sessions)

    # ------------------------------------------------------------- upstream side
    def _ensure_upstream_session(self) -> MoqtSession:
        if self._upstream_session is not None and not self._upstream_session.closed:
            return self._upstream_session
        connection = self._client_endpoint.connect(
            self.upstream_address,
            ConnectionConfig(alpn_protocols=(MOQT_ALPN,)),
        )
        self._upstream_session = MoqtSession(
            connection, is_client=True, config=self.session_config
        )
        return self._upstream_session

    def _track_for(self, full_track_name: FullTrackName) -> RelayTrack:
        track = self._tracks.get(full_track_name)
        if track is None:
            track = RelayTrack(
                full_track_name=full_track_name, cache=TrackState(full_track_name)
            )
            self._tracks[full_track_name] = track
        return track

    def tracks(self) -> dict[FullTrackName, RelayTrack]:
        """All relayed tracks."""
        return dict(self._tracks)

    # ------------------------------------------------------------- subscription
    def _handle_downstream_subscribe(
        self, session: MoqtSession, message: Subscribe
    ) -> SubscribeResult | None:
        self.statistics.downstream_subscribes += 1
        track = self._track_for(message.full_track_name)
        track.downstream.append(_DownstreamSubscriber(session, message.request_id))
        if track.upstream_subscription is None:
            # First subscriber for this track: aggregate into one upstream
            # subscription and answer the downstream once it is accepted.
            upstream = self._ensure_upstream_session()
            self.statistics.upstream_subscribes += 1

            def on_upstream_response(subscription: Subscription) -> None:
                if subscription.is_active:
                    result = SubscribeResult(ok=True, largest=subscription.largest)
                else:
                    result = SubscribeResult(
                        ok=False,
                        error_code=SubscribeErrorCode(subscription.error_code)
                        if subscription.error_code in SubscribeErrorCode._value2member_map_
                        else SubscribeErrorCode.INTERNAL_ERROR,
                        reason=subscription.error_reason,
                    )
                session.complete_subscribe(message.request_id, result)

            track.upstream_subscription = upstream.subscribe(
                message.full_track_name,
                on_object=lambda obj, t=track: self._on_upstream_object(t, obj),
                on_response=on_upstream_response,
            )
            return None
        return SubscribeResult(ok=True, largest=track.cache.largest)

    def _on_upstream_object(self, track: RelayTrack, obj: MoqtObject) -> None:
        self.statistics.objects_received += 1
        track.cache.publish(obj)
        self._forward_to_downstream(track, obj)

    def _forward_to_downstream(self, track: RelayTrack, obj: MoqtObject) -> None:
        for subscriber in list(track.downstream):
            if subscriber.session.closed:
                track.downstream.remove(subscriber)
                continue
            publisher_subscription = subscriber.session.publisher_subscription(
                subscriber.request_id
            )
            if publisher_subscription is None:
                continue
            subscriber.session.publish(publisher_subscription, obj)
            track.objects_forwarded += 1
            self.statistics.objects_forwarded += 1

    # -------------------------------------------------------------------- fetch
    def _handle_downstream_fetch(
        self,
        session: MoqtSession,
        message: Fetch,
        full_track_name: FullTrackName | None,
    ) -> FetchResult | None:
        if full_track_name is None:
            return FetchResult(
                ok=False,
                error_code=FetchErrorCode.TRACK_DOES_NOT_EXIST,
                reason="fetch without a resolvable track name",
            )
        track = self._track_for(full_track_name)
        if len(track.cache):
            self.statistics.fetches_served_from_cache += 1
            objects = self._cached_objects_for(track, message)
            return FetchResult(ok=True, objects=objects, largest=track.cache.largest)
        # Cache miss: forward the fetch upstream and answer when it completes.
        self.statistics.fetches_forwarded_upstream += 1
        upstream = self._ensure_upstream_session()

        def on_complete(fetch_request) -> None:
            if fetch_request.succeeded:
                for obj in fetch_request.objects:
                    track.cache.publish(obj)
                session.complete_fetch(
                    message.request_id,
                    FetchResult(
                        ok=True, objects=list(fetch_request.objects), largest=track.cache.largest
                    ),
                )
            else:
                session.complete_fetch(
                    message.request_id,
                    FetchResult(
                        ok=False,
                        error_code=FetchErrorCode(fetch_request.error_code)
                        if fetch_request.error_code in FetchErrorCode._value2member_map_
                        else FetchErrorCode.INTERNAL_ERROR,
                        reason=fetch_request.error_reason,
                    ),
                )

        start = Location(message.start_group, message.start_object)
        end = Location(message.end_group, message.end_object)
        if message.fetch_type != FetchType.STANDALONE or end == Location(0, 0):
            # Joining fetches (or open ranges) map onto "everything so far".
            start = Location(0, 0)
            end = Location((1 << 40), 0)
        upstream.fetch(full_track_name, start, end, on_complete=on_complete)
        return None

    def _cached_objects_for(self, track: RelayTrack, message: Fetch) -> list[MoqtObject]:
        if message.fetch_type == FetchType.STANDALONE:
            start = Location(message.start_group, message.start_object)
            end = Location(message.end_group, message.end_object)
            if end == Location(0, 0):
                end = None
            return track.cache.objects_in_range(start, end)
        # Joining fetch: return the most recent ``joining_start`` groups.
        count = max(1, message.joining_start)
        return track.cache.latest_objects(count)


class _RelayDelegate:
    """Publisher delegate adapter binding relay logic to a downstream session."""

    def __init__(self, relay: MoqtRelay) -> None:
        self._relay = relay

    def handle_subscribe(self, session: MoqtSession, message: Subscribe) -> SubscribeResult | None:
        return self._relay._handle_downstream_subscribe(session, message)

    def handle_fetch(
        self, session: MoqtSession, message: Fetch, full_track_name: FullTrackName | None
    ) -> FetchResult | None:
        return self._relay._handle_downstream_fetch(session, message, full_track_name)
