"""MoQT relays: fan-out, subscription aggregation and object caching.

Relays are MoQT endpoints that neither produce nor consume objects; they
forward objects from publishers to subscribers without looking at payloads
(§3 of the paper).  Because objects carrying DNS responses are opaque to
them, a generic relay can distribute DNS record updates from an
authoritative server to many resolvers, which is what the CDN and deep-space
use cases in §5.3 rely on.

The relay implemented here:

* accepts downstream MoQT sessions on a QUIC server endpoint;
* aggregates subscriptions — the first downstream SUBSCRIBE for a track
  creates a single upstream subscription, later ones share it;
* caches objects per track so FETCH requests can be answered locally once at
  least one object has been seen, and forwards FETCHes upstream otherwise;
* forwards every received object to all downstream subscribers of the track;
* tears the upstream subscription down again once the last downstream
  subscriber has unsubscribed or disconnected, so no per-track state leaks
  (§5.1);
* chains: because a relay's upstream may itself be a relay, trees of relays
  compose — each tier aggregates its subtree into a single upstream
  subscription, which is the fan-out structure §3 and the §5.3 CDN /
  deep-space use cases rely on.  :mod:`repro.relaynet` builds and measures
  such multi-tier hierarchies declaratively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.relaynet.admission import AdmissionController, AdmissionPolicy

from repro.moqt.datastream import (
    encode_object_datagram_body,
    encode_subgroup_object,
    encode_subgroup_stream_chunk,
)
from repro.moqt.errors import FetchErrorCode, SubscribeErrorCode
from repro.moqt.messages import Fetch, FetchType, Subscribe
from repro.moqt.objectmodel import Location, MoqtObject, TrackState
from repro.moqt.session import (
    FetchResult,
    MoqtSession,
    MoqtSessionConfig,
    PublisherSubscription,
    SubscribeResult,
    Subscription,
)
from repro.moqt.track import FullTrackName
from repro.netsim.node import Host
from repro.netsim.packet import Address
from repro.quic.connection import ConnectionConfig, QuicConnection
from repro.quic.endpoint import QuicEndpoint
from repro.quic.tls import ServerTlsContext

MOQT_ALPN = "moq-00"
DEFAULT_MOQT_PORT = 4443

#: FETCH range end meaning "everything the cache has" (a group id far beyond
#: any experiment's horizon; ranges are inclusive).
OPEN_RANGE_END = Location(1 << 40, 0)

#: Dedupe sets are pruned once they exceed this size; locations older than
#: the group horizon go first, newest-first truncation caps the rest.
DEDUPE_PRUNE_THRESHOLD = 4096
DEDUPE_GROUP_HORIZON = 64


def prune_seen_locations(seen: set[Location], largest: Location) -> set[Location]:
    """Shrink a delivered-locations dedupe set to a bounded window.

    Drops locations older than :data:`DEDUPE_GROUP_HORIZON` groups behind
    ``largest``; if everything is recent (many objects per group), keeps the
    newest half of :data:`DEDUPE_PRUNE_THRESHOLD` so the set stays bounded
    and pruning does not re-trigger on every insert.
    """
    horizon = largest.group_id - DEDUPE_GROUP_HORIZON
    pruned = {location for location in seen if location.group_id >= horizon}
    if len(pruned) > DEDUPE_PRUNE_THRESHOLD:
        pruned = set(sorted(pruned)[-DEDUPE_PRUNE_THRESHOLD // 2 :])
    return pruned


class RecoveryBuffer:
    """Holds live objects back while a gap FETCH is outstanding.

    One instance per recovering receiver: the relay's upstream-switch
    recovery (per :class:`RelayTrack`) and the subscriber's re-attach
    recovery (:mod:`repro.relaynet.topology`) share this class so the
    buffer-until-gap-delivered semantics cannot diverge between the two
    layers.  ``release`` always disarms, delivers in location order, and is
    safe to call on an idle buffer.
    """

    __slots__ = ("active", "buffered")

    def __init__(self) -> None:
        self.active = False
        self.buffered: list[MoqtObject] = []

    def arm(self) -> None:
        """Start intercepting live objects until :meth:`release`."""
        self.active = True

    def intercept(self, obj: MoqtObject) -> bool:
        """Buffer ``obj`` when armed; False means deliver it normally."""
        if not self.active:
            return False
        self.buffered.append(obj)
        return True

    def release(self, deliver: Callable[[MoqtObject], None]) -> None:
        """Disarm and hand the buffered objects to ``deliver`` in order."""
        self.active = False
        buffered, self.buffered = self.buffered, []
        for obj in sorted(buffered, key=lambda o: o.location):
            deliver(obj)


@dataclass(slots=True)
class _DownstreamSubscriber:
    """One downstream subscription attached to a relayed track."""

    session: MoqtSession
    request_id: int
    #: The session's accepted publisher-side subscription, resolved lazily on
    #: first forward so the fan-out loop skips one dict lookup per subscriber
    #: per object.  Lives exactly as long as this entry: unsubscribes and
    #: session closes remove the whole ``_DownstreamSubscriber`` from the
    #: track, so the cache can never outlive the subscription it mirrors.
    publisher_subscription: "PublisherSubscription | None" = None


@dataclass
class RelayTrack:
    """Relay state for one full track name."""

    full_track_name: FullTrackName
    cache: TrackState
    upstream_subscription: Subscription | None = None
    downstream: list[_DownstreamSubscriber] = field(default_factory=list)
    #: Downstream subscribes deferred until the upstream answers; they all
    #: share the upstream subscription's outcome.
    awaiting_upstream: list[_DownstreamSubscriber] = field(default_factory=list)
    objects_forwarded: int = 0
    #: Locations already forwarded downstream.  After an upstream switch the
    #: new parent re-sends objects the old parent already delivered; this set
    #: is what keeps re-parenting duplicate-free without touching the wire
    #: format (dedupe is receive-side only).
    forwarded: set[Location] = field(default_factory=set)
    #: Largest location ever forwarded downstream — the resume point a
    #: post-switch recovery FETCH starts from.
    largest_forwarded: Location | None = None
    #: While a recovery FETCH against the new parent is outstanding, live
    #: objects are buffered here so the gap is delivered first and the
    #: downstream object order survives the switch.
    recovery: RecoveryBuffer = field(default_factory=RecoveryBuffer)


@dataclass
class RelayStatistics:
    """Counters kept by a relay."""

    downstream_sessions: int = 0
    downstream_subscribes: int = 0
    downstream_unsubscribes: int = 0
    upstream_subscribes: int = 0
    upstream_unsubscribes: int = 0
    objects_received: int = 0
    objects_forwarded: int = 0
    fetches_served_from_cache: int = 0
    fetches_forwarded_upstream: int = 0
    upstream_switches: int = 0
    duplicate_objects_dropped: int = 0
    recovery_fetches: int = 0
    recovered_objects: int = 0
    #: Uplink failures noticed through the transport's liveness machinery
    #: (PTO suspicion or idle/PTO death) rather than an announced close.
    uplink_failures_detected: int = 0
    #: SUBSCRIBEs rejected by the token-bucket rate limit (each one answered
    #: with SUBSCRIBE_ERROR(TOO_MANY_SUBSCRIBERS, retry_after)).
    admission_rejections: int = 0
    #: SUBSCRIBEs rejected because the pending-subscribe queue hit its bound.
    admission_queue_rejections: int = 0
    #: SUBSCRIBEs that bypassed admission control on subscriber priority.
    admission_priority_bypasses: int = 0
    #: Deepest the pending-subscribe queue (downstream subscribes deferred
    #: awaiting the upstream answer) ever got — the quantity an unlimited
    #: policy lets grow linearly with storm size (the E16 baseline
    #: pathology) and a bounded policy caps.
    pending_subscribe_high_water: int = 0


class MoqtRelay:
    """A caching, aggregating MoQT relay.

    Parameters
    ----------
    host:
        The simulated host the relay runs on.
    upstream:
        Address of the upstream MoQT endpoint (origin publisher or another
        relay — relays compose into trees).
    port:
        Port to accept downstream sessions on.
    tier:
        Optional label naming the relay's tier in a hierarchy (e.g. ``"edge"``
        or ``"mid"``); purely informational, used by
        :class:`repro.relaynet.RelayNetStats` to aggregate counters per tier.
    upstream_connection:
        QUIC connection configuration for the uplink.  Deployments that rely
        on in-band failure detection (E13) enable keepalives and tune the
        idle timeout here; the default is the plain MoQT-ALPN configuration
        the static experiments have always used (wire-identical).
    downstream_connection:
        QUIC connection configuration applied to every *accepted* downstream
        connection.  This is where a congestion controller for the loss-
        facing fan-out side is installed (the edge relay is the sender on
        constrained access links); ``None`` keeps the historical default
        configuration, wire-identical to pre-congestion-control builds.
    """

    def __init__(
        self,
        host: Host,
        upstream: Address,
        port: int = DEFAULT_MOQT_PORT,
        session_config: MoqtSessionConfig | None = None,
        tier: str = "",
        upstream_connection: ConnectionConfig | None = None,
        downstream_connection: ConnectionConfig | None = None,
        admission: "AdmissionPolicy | None" = None,
    ) -> None:
        self.host = host
        self.simulator = host.simulator
        self.upstream_address = upstream
        self.tier = tier
        self.session_config = session_config if session_config is not None else MoqtSessionConfig()
        self.upstream_connection_config = upstream_connection
        #: Hook a topology controller installs to learn, in-band, that this
        #: relay's uplink is dying: ``on_uplink_dying(relay, cause)`` with
        #: ``cause`` one of the transport's liveness causes (``"pto-suspect"``,
        #: ``"idle-timeout"``, ``"pto-give-up"``).  Fires once per dying
        #: uplink session, before the session's close teardown, so the
        #: controller can switch the uplink while pending subscribes are
        #: still transplantable.
        self.on_uplink_dying: Callable[["MoqtRelay", str], None] | None = None
        #: Admission controller, present only when a *limited* policy was
        #: given: the default (None) is the historical admit-everything
        #: relay, with zero per-subscribe overhead and unchanged wire bytes.
        #: The import is deferred to keep moqt free of a load-time
        #: dependency on relaynet (which imports this module).
        self.admission: "AdmissionController | None" = None
        if admission is not None and admission.limited:
            from repro.relaynet.admission import AdmissionController

            self.admission = AdmissionController(admission)
        self.statistics = RelayStatistics()
        self._tracks: dict[FullTrackName, RelayTrack] = {}
        self._downstream_sessions: list[MoqtSession] = []
        #: Which track each downstream subscription belongs to, grouped by
        #: session — unsubscribes touch only their own track and session
        #: closes only their own subscriptions, with no scanning either way.
        self._downstream_index: dict[MoqtSession, dict[int, RelayTrack]] = {}
        self._upstream_session: MoqtSession | None = None
        #: Uplink session whose failure has already been reported (resets on
        #: recovery), so one dying uplink raises exactly one report.
        self._uplink_failure_reported: MoqtSession | None = None

        self._server_endpoint = QuicEndpoint(
            host,
            port=port,
            server_tls=ServerTlsContext(alpn_protocols=(MOQT_ALPN,)),
            server_config=downstream_connection,
            on_connection=self._on_downstream_connection,
        )
        self._client_endpoint = QuicEndpoint(host)

    @property
    def address(self) -> Address:
        """The address downstream subscribers connect to."""
        return self._server_endpoint.address

    @property
    def server_tls(self) -> ServerTlsContext:
        """The downstream server endpoint's TLS context (ticket issuance)."""
        return self._server_endpoint.server_tls

    # ----------------------------------------------------------- downstream side
    def _on_downstream_connection(self, connection: QuicConnection) -> None:
        session = MoqtSession(
            connection,
            is_client=False,
            config=self.session_config,
            publisher_delegate=_RelayDelegate(self),
            on_closed=self._on_downstream_closed,
        )
        self._downstream_sessions.append(session)
        self.statistics.downstream_sessions += 1

    def downstream_sessions(self) -> list[MoqtSession]:
        """All downstream sessions accepted so far."""
        return list(self._downstream_sessions)

    def _on_downstream_closed(self, session: MoqtSession, reason: str) -> None:
        """Drop every subscription a departed downstream session held."""
        if session in self._downstream_sessions:
            self._downstream_sessions.remove(session)
        if self.admission is not None:
            # A rejected session that leaves (spillover, give-up) abandons
            # its token reservation instead of leaking a table entry.
            self.admission.forget(session)
        for request_id in list(self._downstream_index.get(session, {})):
            self._remove_downstream(session, request_id)

    # ------------------------------------------------------------- upstream side
    def _ensure_upstream_session(self) -> MoqtSession:
        if self._upstream_session is not None and not self._upstream_session.closed:
            return self._upstream_session
        config = self.upstream_connection_config
        if config is None:
            config = ConnectionConfig(alpn_protocols=(MOQT_ALPN,))
        connection = self._client_endpoint.connect(self.upstream_address, config)
        self._upstream_session = MoqtSession(
            connection,
            is_client=True,
            config=self.session_config,
            on_closed=self._on_upstream_closed,
            on_liveness=self._on_upstream_liveness,
        )
        return self._upstream_session

    @property
    def upstream_session(self) -> MoqtSession | None:
        """The current uplink session, if one has been opened."""
        return self._upstream_session

    @property
    def upstream_quic_connection(self) -> QuicConnection | None:
        """The QUIC connection under the current uplink session, if any."""
        if self._upstream_session is None:
            return None
        return self._upstream_session.connection

    def _on_upstream_liveness(self, session: MoqtSession, old: str, new: str) -> None:
        """React to in-band liveness transitions of the uplink transport.

        Only the *current* uplink matters — transitions of sessions an
        earlier :meth:`switch_upstream` already replaced are stale.  A
        recovery (suspect → healthy) needs no action; suspicion or death is
        reported to the topology controller via :attr:`on_uplink_dying`,
        which typically re-parents this relay while the dying session's
        state (pending subscribes included) is still intact.
        """
        if session is not self._upstream_session:
            return
        if new == "healthy":
            self._uplink_failure_reported = None
            return
        if session is self._uplink_failure_reported:
            # One incident, one report: a suspect session that nobody
            # replaced (e.g. no failover target exists) later going dead is
            # still the same dying uplink.
            return
        self._uplink_failure_reported = session
        self.statistics.uplink_failures_detected += 1
        if self.on_uplink_dying is not None:
            self.on_uplink_dying(self, session.connection.liveness_cause)

    def _on_upstream_closed(self, session: MoqtSession, reason: str) -> None:
        """Fail every subscription riding the dead upstream session.

        Without this, a lost uplink would wedge its tracks permanently:
        ``upstream_subscription`` would stay 'pending' forever, every later
        downstream SUBSCRIBE would be deferred into ``awaiting_upstream`` with
        no answer, and recovery could never start.  Clearing the state errors
        the waiters and lets the next subscriber retry over a fresh session.

        FETCHes forwarded over the dying session need no handling here: the
        session fails its own pending fetch requests when it closes, which
        fires their ``on_complete`` error paths and answers the downstream
        FETCH with a FETCH_ERROR (so waiters unblock instead of hanging).
        """
        if session is not self._upstream_session:
            return
        result = SubscribeResult(
            ok=False,
            error_code=SubscribeErrorCode.INTERNAL_ERROR,
            reason=f"upstream session closed: {reason}" if reason else "upstream session closed",
        )
        for track in self._tracks.values():
            # An armed recovery buffer is deliberately *not* released here:
            # releasing would advance ``largest_forwarded`` past the gap the
            # in-flight FETCH was recovering, so a later switch (or the next
            # downstream subscriber) could never fetch it again.  The buffer
            # is carried until the next upstream attach, which re-arms it
            # with a fresh gap FETCH (:meth:`_resubscribe_track`) or
            # releases it when there is nothing to recover.
            if track.upstream_subscription is None:
                continue
            track.upstream_subscription = None
            waiting, track.awaiting_upstream = track.awaiting_upstream, []
            for waiter in waiting:
                if waiter in track.downstream:
                    track.downstream.remove(waiter)
                    self._drop_index_entry(waiter.session, waiter.request_id)
                if waiter.session.closed:
                    continue
                waiter.session.complete_subscribe(waiter.request_id, result)

    # ------------------------------------------------------------ live failover
    def switch_upstream(
        self,
        new_upstream: Address,
        recover: bool = True,
        on_track_reattached: Callable[[RelayTrack], None] | None = None,
    ) -> None:
        """Re-point the relay's uplink at a new parent on live tracks.

        Established downstream subscribers keep their sessions and
        subscriptions; every track that still has (or awaits) downstream
        interest is re-subscribed through the new parent.  With ``recover``
        the gap between the last object forwarded downstream and the first
        live object from the new parent is filled with a FETCH against the
        new parent's cache (forwarded further upstream on a cold cache), and
        live objects are buffered until the fetch answer has been delivered
        so the downstream object order survives the switch.  Objects the old
        parent already delivered are deduplicated by (group, object) ID.

        ``on_track_reattached`` fires once per re-subscribed track when the
        new parent accepts the subscription — topology controllers use it to
        measure re-attach latency.
        """
        old_session = self._upstream_session
        self._upstream_session = None
        self.upstream_address = new_upstream
        self.statistics.upstream_switches += 1
        if old_session is not None and not old_session.closed:
            # Close the old uplink *before* re-subscribing: failing its
            # pending fetches now (including a stale recovery FETCH from an
            # earlier switch) cannot clobber the recovery state the new
            # subscriptions are about to arm.
            old_session.close("switching upstream")
        for track in self._tracks.values():
            if not (track.downstream or track.awaiting_upstream):
                track.upstream_subscription = None
                self._flush_recovery(track)
                continue
            self._resubscribe_track(track, recover=recover, on_reattached=on_track_reattached)

    def _resubscribe_track(
        self,
        track: RelayTrack,
        recover: bool,
        on_reattached: Callable[[RelayTrack], None] | None = None,
    ) -> None:
        old_subscription = track.upstream_subscription
        upstream = self._ensure_upstream_session()
        self.statistics.upstream_subscribes += 1
        resume_from = self._resume_point(track, old_subscription) if recover else None
        if resume_from is not None:
            track.recovery.arm()
        else:
            # No gap to fetch (nothing delivered and no known live position,
            # or recovery disabled): a buffer armed by an earlier switch must
            # not stay armed — no FETCH will ever release it.
            self._flush_recovery(track)
        track.upstream_subscription = upstream.subscribe(
            track.full_track_name,
            on_object=lambda obj, t=track: self._on_upstream_object(t, obj),
            on_response=lambda subscription, t=track: self._on_switch_response(
                t, subscription, resume_from, on_reattached
            ),
        )

    @staticmethod
    def _resume_point(track: RelayTrack, old_subscription: Subscription | None) -> Location | None:
        """Where the post-switch recovery FETCH should start.

        Prefer the last location actually forwarded downstream — the FETCH
        range is inclusive, and the duplicate filter drops the boundary
        object.  A track that never forwarded anything falls back to the
        old subscription's live position (the largest the old parent
        advertised or delivered): anything *after* it is gap, anything at
        or before it is pre-join history that must not be replayed, so the
        resume point moves one object past it.
        """
        if track.largest_forwarded is not None:
            return track.largest_forwarded
        if old_subscription is not None and old_subscription.largest is not None:
            previous = old_subscription.largest
            return Location(previous.group_id, previous.object_id + 1)
        return None

    def _on_switch_response(
        self,
        track: RelayTrack,
        subscription: Subscription,
        resume_from: Location | None,
        on_reattached: Callable[[RelayTrack], None] | None,
    ) -> None:
        current = track.upstream_subscription is subscription
        self._on_upstream_response(track, subscription)
        if not current:
            return
        if not subscription.is_active:
            self._flush_recovery(track)
            return
        if on_reattached is not None:
            on_reattached(track)
        if resume_from is None or not track.recovery.active:
            return
        # Fill the gap between the last forwarded object and the live stream
        # from the new parent's cache.  The resume point itself rides along
        # (ranges are inclusive) and is dropped by the duplicate filter.
        self.statistics.recovery_fetches += 1
        upstream = self._ensure_upstream_session()
        upstream.fetch(
            track.full_track_name,
            resume_from,
            OPEN_RANGE_END,
            on_complete=lambda fetch_request, t=track, s=upstream: self._on_recovery_fetched(
                t, fetch_request, s
            ),
        )

    def _on_recovery_fetched(self, track: RelayTrack, fetch_request, session: MoqtSession) -> None:
        if session is not self._upstream_session:
            # A newer switch owns the recovery buffer: this completion (most
            # likely the old session failing its fetches on close) must not
            # release it — the new parent's gap FETCH will.
            return
        if not fetch_request.succeeded and session.closed:
            # The fetch failed *because the uplink itself died* (the session
            # fails its pending fetches on close) while it is still the
            # current one.  Flushing here would deliver the buffered live
            # tail and advance ``largest_forwarded`` past the unrecovered
            # gap, so the next switch's resume point would skip it forever.
            # Leave the buffer armed: it is carried until the next upstream
            # attach — :meth:`switch_upstream` / :meth:`_resubscribe_track`,
            # or the recovery branch of :meth:`_handle_downstream_subscribe`
            # — which re-fetches the gap and releases it coherently.
            return
        if fetch_request.succeeded:
            for obj in sorted(fetch_request.objects, key=lambda o: o.location):
                if obj.location not in track.forwarded:
                    self.statistics.recovered_objects += 1
                self._deliver_upstream_object(track, obj)
        # Delivered or genuinely refused by a live parent: release the
        # buffered live stream; on refusal the gap stays lost but delivery
        # resumes (availability over completeness).
        self._flush_recovery(track)

    def _flush_recovery(self, track: RelayTrack) -> None:
        track.recovery.release(lambda obj: self._deliver_upstream_object(track, obj))

    def abandon_upstream(self, reason: str = "no surviving parent") -> None:
        """Tear the uplink down with *no* replacement: fail waiters cleanly.

        The terminal counterpart of :meth:`switch_upstream`, used by the
        topology when a failover finds nowhere alive to re-attach (the
        structured ``NoSurvivingParentError`` path): the dying session is
        closed locally — which fails its pending subscribes and fetches back
        downstream instead of leaving them wedged — and no new upstream is
        opened.  Armed recovery buffers are flushed: with no future attach
        coming, holding buffered live objects would stall delivery forever.
        """
        session = self._upstream_session
        if session is not None and not session.closed:
            # Closing while still the current uplink routes through
            # _on_upstream_closed, which errors every pending waiter.
            session.close(reason)
        self._upstream_session = None
        for track in self._tracks.values():
            self._flush_recovery(track)

    def shutdown(self, reason: str = "relay shutting down") -> None:
        """Close every session and release the relay's ports.

        Used by :class:`repro.relaynet.RelayTopology` both for graceful
        leaves and (with an appropriate ``reason``) to simulate a crash:
        downstream sessions observe the close and the topology re-homes the
        orphaned subtree.
        """
        if self._upstream_session is not None and not self._upstream_session.closed:
            self._upstream_session.close(reason)
        self._server_endpoint.close()
        self._client_endpoint.close()

    def crash(self) -> None:
        """Vanish without a trace: no close frames, no callbacks, no bytes.

        The silent counterpart of :meth:`shutdown`, used as the fault
        injector for in-band failure detection (E13): downstream sessions and
        the uplink are abandoned mid-flight, the ports unbind, and every peer
        is left to notice through its own QUIC liveness machinery (probe
        timeouts or idle expiry) that this relay no longer exists.
        """
        if self._upstream_session is not None:
            self._upstream_session.closed = True
        for session in self._downstream_sessions:
            session.closed = True
        self._server_endpoint.abandon()
        self._client_endpoint.abandon()

    def _track_for(self, full_track_name: FullTrackName) -> RelayTrack:
        track = self._tracks.get(full_track_name)
        if track is None:
            track = RelayTrack(
                full_track_name=full_track_name, cache=TrackState(full_track_name)
            )
            self._tracks[full_track_name] = track
        return track

    def tracks(self) -> dict[FullTrackName, RelayTrack]:
        """All relayed tracks."""
        return dict(self._tracks)

    # ------------------------------------------------------------- subscription
    def pending_subscribe_count(self) -> int:
        """Downstream subscribes currently deferred awaiting an upstream answer."""
        return sum(len(track.awaiting_upstream) for track in self._tracks.values())

    def _handle_downstream_subscribe(
        self, session: MoqtSession, message: Subscribe
    ) -> SubscribeResult | None:
        self.statistics.downstream_subscribes += 1
        admission = self.admission
        if admission is not None:
            # The gate runs before *any* registration: a rejected SUBSCRIBE
            # never creates a _DownstreamSubscriber or an index entry, so
            # there is nothing to clean up when the error goes out.  It also
            # only ever polices arrivals — established subscriptions are
            # structurally beyond its reach (never shed to admit new ones).
            policy = admission.policy
            threshold = policy.priority_admit_threshold
            if threshold is not None and message.subscriber_priority <= threshold:
                self.statistics.admission_priority_bypasses += 1
            decision = admission.decide(
                session,
                self.simulator.now,
                self.pending_subscribe_count(),
                message.subscriber_priority,
            )
            if not decision.admitted:
                if decision.cause == "queue":
                    self.statistics.admission_queue_rejections += 1
                else:
                    self.statistics.admission_rejections += 1
                return SubscribeResult(
                    ok=False,
                    error_code=SubscribeErrorCode.TOO_MANY_SUBSCRIBERS,
                    reason=f"admission: {decision.cause} limit",
                    retry_after_ms=decision.retry_after_ms,
                )
        track = self._track_for(message.full_track_name)
        subscriber = _DownstreamSubscriber(session, message.request_id)
        track.downstream.append(subscriber)
        self._downstream_index.setdefault(session, {})[message.request_id] = track
        if track.upstream_subscription is None:
            # First subscriber for this track: aggregate into one upstream
            # subscription and answer the downstream once it is accepted.
            self._defer_awaiting_upstream(track, subscriber)
            if track.recovery.active:
                # The previous uplink died with a gap recovery in flight
                # (its armed buffer was carried, not dropped): re-attach
                # through the switch path so the gap is re-fetched and the
                # buffer released coherently.
                self._resubscribe_track(track, recover=True)
                return None
            upstream = self._ensure_upstream_session()
            self.statistics.upstream_subscribes += 1
            track.upstream_subscription = upstream.subscribe(
                message.full_track_name,
                on_object=lambda obj, t=track: self._on_upstream_object(t, obj),
                on_response=lambda subscription, t=track: self._on_upstream_response(
                    t, subscription
                ),
            )
            return None
        if track.upstream_subscription.state == "pending":
            # Joiners during the upstream round trip must share its outcome —
            # answering ok optimistically would strand them on a dead track
            # if the upstream rejects.
            self._defer_awaiting_upstream(track, subscriber)
            return None
        return SubscribeResult(ok=True, largest=track.cache.largest)

    def _defer_awaiting_upstream(
        self, track: RelayTrack, subscriber: _DownstreamSubscriber
    ) -> None:
        """Queue a downstream subscribe behind the in-flight upstream answer,
        tracking the queue's high-water mark (the overload signal bounded
        admission policies cap and the E16 baseline shows growing with storm
        size)."""
        track.awaiting_upstream.append(subscriber)
        pending = self.pending_subscribe_count()
        if pending > self.statistics.pending_subscribe_high_water:
            self.statistics.pending_subscribe_high_water = pending

    def _on_upstream_response(self, track: RelayTrack, subscription: Subscription) -> None:
        if track.upstream_subscription is not subscription:
            # Stale answer: this upstream subscription was already torn down
            # (its last subscriber left while the answer was in flight).  Any
            # current waiters belong to a replacement subscription and will be
            # answered by *its* response.
            return
        waiting, track.awaiting_upstream = track.awaiting_upstream, []
        if subscription.is_active:
            result = SubscribeResult(ok=True, largest=subscription.largest)
        else:
            # The upstream rejected the track: release the errored upstream
            # subscription and every waiting downstream entry, so a later
            # subscriber retries upstream instead of being served from a
            # permanently dead track.
            result = SubscribeResult(
                ok=False,
                error_code=SubscribeErrorCode(subscription.error_code)
                if subscription.error_code in SubscribeErrorCode._value2member_map_
                else SubscribeErrorCode.INTERNAL_ERROR,
                reason=subscription.error_reason,
            )
            track.upstream_subscription = None
        for waiter in waiting:
            if not subscription.is_active and waiter in track.downstream:
                track.downstream.remove(waiter)
                self._drop_index_entry(waiter.session, waiter.request_id)
            if waiter.session.closed:
                continue  # downstream left before the upstream answered
            waiter.session.complete_subscribe(waiter.request_id, result)

    def _handle_downstream_unsubscribe(self, session: MoqtSession, request_id: int) -> None:
        """Release the downstream subscription and the upstream one if idle."""
        self.statistics.downstream_unsubscribes += 1
        self._remove_downstream(session, request_id)

    def _drop_index_entry(self, session: MoqtSession, request_id: int) -> RelayTrack | None:
        """Remove one index entry, pruning the session's dict when empty."""
        requests = self._downstream_index.get(session)
        if requests is None:
            return None
        track = requests.pop(request_id, None)
        if not requests:
            del self._downstream_index[session]
        return track

    def _remove_downstream(self, session: MoqtSession, request_id: int) -> None:
        """Drop one downstream subscription from its track (index-guided)."""
        track = self._drop_index_entry(session, request_id)
        if track is None:
            return
        track.awaiting_upstream = [
            sub
            for sub in track.awaiting_upstream
            if not (sub.session is session and sub.request_id == request_id)
        ]
        track.downstream = [
            sub
            for sub in track.downstream
            if not (sub.session is session and sub.request_id == request_id)
        ]
        self._teardown_upstream_if_idle(track)

    def _teardown_upstream_if_idle(self, track: RelayTrack) -> None:
        """Unsubscribe upstream once no downstream subscriber needs the track.

        Without this, every track a subscriber ever asked for would keep one
        upstream subscription alive forever — exactly the state leak §5.1
        warns about.  The cached objects are kept so a returning subscriber's
        FETCH can still be served locally.
        """
        if track.downstream or track.upstream_subscription is None:
            return
        subscription = track.upstream_subscription
        track.upstream_subscription = None
        self.statistics.upstream_unsubscribes += 1
        if self._upstream_session is not None and not self._upstream_session.closed:
            self._upstream_session.unsubscribe(subscription)

    def _on_upstream_object(self, track: RelayTrack, obj: MoqtObject) -> None:
        self.statistics.objects_received += 1
        # While a recovery FETCH is outstanding, hold live objects back so
        # the gap is delivered first and downstream order survives the switch.
        if track.recovery.intercept(obj):
            return
        self._deliver_upstream_object(track, obj)

    def _deliver_upstream_object(self, track: RelayTrack, obj: MoqtObject) -> None:
        """Cache and forward one upstream object, dropping duplicates.

        After an upstream switch the new parent's live stream and the
        recovery FETCH both re-cover territory the old parent already
        delivered; anything already forwarded downstream is dropped here so
        subscribers see every (group, object) ID exactly once.
        """
        if obj.location in track.forwarded:
            self.statistics.duplicate_objects_dropped += 1
            return
        track.cache.publish(obj)
        self._record_forwarded(track, obj.location)
        self._forward_to_downstream(track, obj)

    def _record_forwarded(self, track: RelayTrack, location: Location) -> None:
        track.forwarded.add(location)
        if track.largest_forwarded is None or location > track.largest_forwarded:
            track.largest_forwarded = location
        if len(track.forwarded) > DEDUPE_PRUNE_THRESHOLD:
            # Keep the dedupe window bounded so long-lived tracks do not
            # accumulate unbounded state (§5.1).
            track.forwarded = prune_seen_locations(track.forwarded, track.largest_forwarded)

    def _forward_to_downstream(self, track: RelayTrack, obj: MoqtObject) -> None:
        # Encode-once fan-out: the object body does not depend on the
        # receiving subscription, so it is serialised a single time and the
        # cached bytes ride every downstream publish (§3's fan-out efficiency
        # argument, applied to CPU rather than links).  In stream mode the
        # full subgroup chunk (header + body) is additionally cached per track
        # alias — subscribers overwhelmingly share one alias, so the whole
        # stream payload is typically encoded once for the entire tier — and
        # the per-subscriber sends are collected into one link-batch event by
        # the network's batching region.
        use_datagrams = self.session_config.use_datagrams
        if use_datagrams:
            cached_encoding = encode_object_datagram_body(obj)
            chunk_by_alias = None
        else:
            cached_encoding = encode_subgroup_object(obj)
            chunk_by_alias = {}
        network = self.host.network
        # Span tracing (one record per relay per object, before the fan-out
        # loop): purely observational — no events, no RNG, no wire bytes.
        telemetry = getattr(network, "telemetry", None)
        if telemetry is not None and telemetry.spans is not None:
            telemetry.spans.record_hop(
                obj.location,
                self.tier,
                self.host.address,
                self.upstream_address.host,
                self.simulator.now,
            )
        batching = network is not None and hasattr(network, "begin_batch")
        if batching:
            network.begin_batch()
        try:
            for subscriber in list(track.downstream):
                session = subscriber.session
                if session.closed:
                    track.downstream.remove(subscriber)
                    self._drop_index_entry(session, subscriber.request_id)
                    self._teardown_upstream_if_idle(track)
                    continue
                publisher_subscription = subscriber.publisher_subscription
                if publisher_subscription is None:
                    publisher_subscription = session.publisher_subscription(
                        subscriber.request_id
                    )
                    if publisher_subscription is None:
                        continue
                    # Intern the track name: every downstream SUBSCRIBE decoded
                    # its own FullTrackName; pointing the retained state at the
                    # relay's canonical instance shares one across the tier.
                    publisher_subscription.full_track_name = track.full_track_name
                    subscriber.publisher_subscription = publisher_subscription
                if use_datagrams:
                    session.publish(publisher_subscription, obj, cached_encoding)
                else:
                    alias = publisher_subscription.track_alias
                    chunk = chunk_by_alias.get(alias)
                    if chunk is None:
                        chunk = encode_subgroup_stream_chunk(alias, obj, cached_encoding)
                        chunk_by_alias[alias] = chunk
                    session.publish_preencoded(publisher_subscription, obj, chunk)
                track.objects_forwarded += 1
                self.statistics.objects_forwarded += 1
        finally:
            if batching:
                network.end_batch()

    # -------------------------------------------------------------------- fetch
    def _handle_downstream_fetch(
        self,
        session: MoqtSession,
        message: Fetch,
        full_track_name: FullTrackName | None,
    ) -> FetchResult | None:
        if full_track_name is None:
            return FetchResult(
                ok=False,
                error_code=FetchErrorCode.TRACK_DOES_NOT_EXIST,
                reason="fetch without a resolvable track name",
            )
        track = self._track_for(full_track_name)
        if len(track.cache):
            self.statistics.fetches_served_from_cache += 1
            objects = self._cached_objects_for(track, message)
            return FetchResult(ok=True, objects=objects, largest=track.cache.largest)
        # Cache miss: forward the fetch upstream and answer when it completes.
        self.statistics.fetches_forwarded_upstream += 1
        upstream = self._ensure_upstream_session()

        def on_complete(fetch_request) -> None:
            if fetch_request.succeeded:
                for obj in fetch_request.objects:
                    track.cache.publish(obj)
                session.complete_fetch(
                    message.request_id,
                    FetchResult(
                        ok=True, objects=list(fetch_request.objects), largest=track.cache.largest
                    ),
                )
            else:
                session.complete_fetch(
                    message.request_id,
                    FetchResult(
                        ok=False,
                        error_code=FetchErrorCode(fetch_request.error_code)
                        if fetch_request.error_code in FetchErrorCode._value2member_map_
                        else FetchErrorCode.INTERNAL_ERROR,
                        reason=fetch_request.error_reason,
                    ),
                )

        start = Location(message.start_group, message.start_object)
        end = Location(message.end_group, message.end_object)
        if message.fetch_type != FetchType.STANDALONE or end == Location(0, 0):
            # Joining fetches (or open ranges) map onto "everything so far".
            start = Location(0, 0)
            end = OPEN_RANGE_END
        upstream.fetch(full_track_name, start, end, on_complete=on_complete)
        return None

    def _cached_objects_for(self, track: RelayTrack, message: Fetch) -> list[MoqtObject]:
        if message.fetch_type == FetchType.STANDALONE:
            start = Location(message.start_group, message.start_object)
            end = Location(message.end_group, message.end_object)
            if end == Location(0, 0):
                end = None
            return track.cache.objects_in_range(start, end)
        # Joining fetch: return the most recent ``joining_start`` groups.
        count = max(1, message.joining_start)
        return track.cache.latest_objects(count)


class _RelayDelegate:
    """Publisher delegate adapter binding relay logic to a downstream session."""

    def __init__(self, relay: MoqtRelay) -> None:
        self._relay = relay

    def handle_subscribe(self, session: MoqtSession, message: Subscribe) -> SubscribeResult | None:
        return self._relay._handle_downstream_subscribe(session, message)

    def handle_fetch(
        self, session: MoqtSession, message: Fetch, full_track_name: FullTrackName | None
    ) -> FetchResult | None:
        return self._relay._handle_downstream_fetch(session, message, full_track_name)

    def handle_unsubscribe(self, session: MoqtSession, request_id: int) -> None:
        self._relay._handle_downstream_unsubscribe(session, request_id)
