"""Media over QUIC Transport (MoQT), draft-ietf-moq-transport-12 subset.

The package implements the pieces of MoQT that the DNS mapping in the paper
uses:

* track naming — namespace tuples plus a track name, with the 4096-byte
  combined limit the paper's Fig. 3 mapping relies on
  (:mod:`repro.moqt.track`);
* the control-message codec over the bidirectional control stream:
  CLIENT_SETUP / SERVER_SETUP, SUBSCRIBE / SUBSCRIBE_OK / SUBSCRIBE_ERROR,
  UNSUBSCRIBE, SUBSCRIBE_DONE, FETCH (standalone and joining) / FETCH_OK /
  FETCH_ERROR / FETCH_CANCEL, ANNOUNCE / ANNOUNCE_OK, GOAWAY and
  MAX_REQUEST_ID (:mod:`repro.moqt.messages`);
* the object model — groups, subgroups and objects with status codes
  (:mod:`repro.moqt.objectmodel`) and their encodings on unidirectional
  streams and in datagrams (:mod:`repro.moqt.datastream`);
* the session state machine on top of a QUIC connection, exposing publisher
  and subscriber roles (:mod:`repro.moqt.session`);
* relays that aggregate subscriptions and cache objects without inspecting
  payloads (:mod:`repro.moqt.relay`), supporting the fan-out scenarios in
  §3 and §5.3 of the paper;
* the reference origin publisher — encode-once fan-out over MoQT sessions
  with a FETCH-served track cache (:mod:`repro.moqt.origin`), the root the
  relay trees and the replicated origin cluster build on.
"""

from repro.moqt.track import TrackNamespace, FullTrackName, MAX_FULL_TRACK_NAME_LENGTH
from repro.moqt.objectmodel import MoqtObject, ObjectStatus, Location
from repro.moqt.session import (
    MoqtSession,
    MoqtSessionConfig,
    Subscription,
    FetchRequest,
    PublisherDelegate,
    SubscribeResult,
    FetchResult,
)
from repro.moqt.relay import MoqtRelay, RelayStatistics, RelayTrack
from repro.moqt.origin import OriginPublisher, build_origin, build_origin_endpoint
from repro.moqt.errors import MoqtError, SubscribeErrorCode, FetchErrorCode

__all__ = [
    "TrackNamespace",
    "FullTrackName",
    "MAX_FULL_TRACK_NAME_LENGTH",
    "MoqtObject",
    "ObjectStatus",
    "Location",
    "MoqtSession",
    "MoqtSessionConfig",
    "Subscription",
    "FetchRequest",
    "PublisherDelegate",
    "SubscribeResult",
    "FetchResult",
    "MoqtRelay",
    "RelayStatistics",
    "RelayTrack",
    "OriginPublisher",
    "build_origin",
    "build_origin_endpoint",
    "MoqtError",
    "SubscribeErrorCode",
    "FetchErrorCode",
]
