"""Key-value parameters used in MoQT setup and subscription messages."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.quic.varint import VarintReader, VarintWriter, encode_varint


class SetupParameterType(enum.IntEnum):
    """Parameter keys used in CLIENT_SETUP / SERVER_SETUP."""

    PATH = 0x1
    MAX_REQUEST_ID = 0x2
    MAX_AUTH_TOKEN_CACHE_SIZE = 0x4


class VersionSpecificParameterType(enum.IntEnum):
    """Parameter keys used in SUBSCRIBE / FETCH and friends."""

    AUTHORIZATION_TOKEN = 0x1
    DELIVERY_TIMEOUT = 0x2
    MAX_CACHE_DURATION = 0x4


@dataclass(frozen=True)
class Parameter:
    """A single (key, value) parameter.

    Even-numbered keys carry a varint value, odd-numbered keys carry an
    opaque byte string, following the draft's convention; for simplicity the
    value is always stored as bytes and the helpers convert as needed.
    """

    key: int
    value: bytes

    @classmethod
    def varint(cls, key: int, value: int) -> "Parameter":
        """Build a parameter whose value is a varint."""
        return cls(key, encode_varint(value))

    def as_varint(self) -> int:
        """Interpret the value as a varint."""
        reader = VarintReader(self.value)
        return reader.read_varint()


@dataclass
class Parameters:
    """An ordered collection of parameters with a wire codec."""

    entries: list[Parameter] = field(default_factory=list)

    def add(self, parameter: Parameter) -> "Parameters":
        """Append a parameter."""
        self.entries.append(parameter)
        return self

    def get(self, key: int) -> Parameter | None:
        """The first parameter with the given key, if any."""
        for parameter in self.entries:
            if parameter.key == key:
                return parameter
        return None

    def __len__(self) -> int:
        return len(self.entries)

    def to_wire(self) -> bytes:
        """Encode as a varint count followed by key/length/value triples."""
        writer = VarintWriter()
        writer.write_varint(len(self.entries))
        for parameter in self.entries:
            writer.write_varint(parameter.key)
            writer.write_length_prefixed(parameter.value)
        return writer.getvalue()

    @classmethod
    def from_reader(cls, reader: VarintReader) -> "Parameters":
        """Decode from a :class:`VarintReader`."""
        count = reader.read_varint()
        entries = []
        for _ in range(count):
            key = reader.read_varint()
            value = reader.read_length_prefixed()
            entries.append(Parameter(key, value))
        return cls(entries)
