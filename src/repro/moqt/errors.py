"""MoQT error types and error codes."""

from __future__ import annotations

import enum


class MoqtError(Exception):
    """Base class for MoQT protocol errors."""


class ProtocolViolation(MoqtError):
    """Raised when a peer violates the MoQT state machine or wire format."""


class SessionTerminated(MoqtError):
    """Raised when an operation is attempted on a terminated session."""


class SubscribeErrorCode(enum.IntEnum):
    """Error codes carried in SUBSCRIBE_ERROR.

    ``TRACK_DOES_NOT_EXIST`` doubles as the code used by the §4.5
    compatibility path when a recursive resolver declines a subscription for
    a domain whose authoritative server does not support MoQT.
    """

    INTERNAL_ERROR = 0x0
    UNAUTHORIZED = 0x1
    TIMEOUT = 0x2
    NOT_SUPPORTED = 0x3
    TRACK_DOES_NOT_EXIST = 0x4
    INVALID_RANGE = 0x5
    RETRY_TRACK_ALIAS = 0x6
    #: Admission control refused the subscription: the relay's token bucket
    #: is empty or its pending-subscribe queue is full.  The SUBSCRIBE_ERROR
    #: carries ``retry_after_ms`` telling the client when to try again.
    TOO_MANY_SUBSCRIBERS = 0x7


class AdmissionRejectedError(MoqtError):
    """A subscribe was refused by admission control and the retry budget ran out.

    Raised on the *client* side after the configured number of
    retry-with-backoff attempts all came back ``TOO_MANY_SUBSCRIBERS``;
    surfacing a terminal error is the graceful-degradation contract — a
    storm participant that cannot be admitted fails loudly instead of
    retrying (or hanging) forever.
    """

    def __init__(self, full_track_name: object, attempts: int) -> None:
        super().__init__(
            f"subscription to {full_track_name} rejected after "
            f"{attempts} admission attempts"
        )
        self.full_track_name = full_track_name
        self.attempts = attempts


class FetchErrorCode(enum.IntEnum):
    """Error codes carried in FETCH_ERROR."""

    INTERNAL_ERROR = 0x0
    UNAUTHORIZED = 0x1
    TIMEOUT = 0x2
    NOT_SUPPORTED = 0x3
    TRACK_DOES_NOT_EXIST = 0x4
    INVALID_RANGE = 0x5
    NO_OBJECTS = 0x6


class SessionErrorCode(enum.IntEnum):
    """Session-level error codes (carried in GOAWAY / connection close)."""

    NO_ERROR = 0x0
    INTERNAL_ERROR = 0x1
    UNAUTHORIZED = 0x2
    PROTOCOL_VIOLATION = 0x3
    PARAMETER_LENGTH_MISMATCH = 0x5
    TOO_MANY_REQUESTS = 0x6
    VERSION_NEGOTIATION_FAILED = 0x9
