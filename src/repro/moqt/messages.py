"""MoQT control messages and their wire codec.

All control messages are exchanged on the single bidirectional control
stream.  Each message is encoded as a varint message type followed by a
16-bit payload length and the payload (draft-12 §6).  The subset implemented
here covers everything the DNS mapping needs: session setup, subscriptions,
standalone and joining fetches, unsubscription, announcements and GOAWAY.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import ClassVar

from repro.moqt.errors import ProtocolViolation
from repro.moqt.parameters import Parameters
from repro.moqt.track import FullTrackName, TrackNamespace
from repro.quic.varint import VarintReader, VarintWriter

#: The MoQT draft version this implementation models (draft-12).
MOQT_VERSION_DRAFT_12 = 0xFF00000C
SUPPORTED_VERSIONS = (MOQT_VERSION_DRAFT_12,)


class MessageType(enum.IntEnum):
    """Control message type identifiers."""

    SUBSCRIBE_UPDATE = 0x02
    SUBSCRIBE = 0x03
    SUBSCRIBE_OK = 0x04
    SUBSCRIBE_ERROR = 0x05
    ANNOUNCE = 0x06
    ANNOUNCE_OK = 0x07
    ANNOUNCE_ERROR = 0x08
    UNANNOUNCE = 0x09
    UNSUBSCRIBE = 0x0A
    SUBSCRIBE_DONE = 0x0B
    MAX_REQUEST_ID = 0x15
    FETCH = 0x16
    FETCH_CANCEL = 0x17
    FETCH_OK = 0x18
    FETCH_ERROR = 0x19
    GOAWAY = 0x10
    CLIENT_SETUP = 0x40
    SERVER_SETUP = 0x41


class FilterType(enum.IntEnum):
    """SUBSCRIBE filter types (draft-12 §6.4)."""

    NEXT_GROUP_START = 0x1
    LATEST_OBJECT = 0x2
    ABSOLUTE_START = 0x3
    ABSOLUTE_RANGE = 0x4


class GroupOrder(enum.IntEnum):
    """Group delivery order preference."""

    PUBLISHER_DEFAULT = 0x0
    ASCENDING = 0x1
    DESCENDING = 0x2


class FetchType(enum.IntEnum):
    """FETCH flavours (draft-12 §6.9): standalone or joining."""

    STANDALONE = 0x1
    RELATIVE_JOINING = 0x2
    ABSOLUTE_JOINING = 0x3


@dataclass(frozen=True)
class ControlMessage:
    """Base class for all control messages."""

    TYPE: ClassVar[MessageType] = MessageType.GOAWAY

    def encode_payload(self) -> bytes:
        """Serialise the message payload (without type and length)."""
        raise NotImplementedError

    def encode(self) -> bytes:
        """Serialise the full message: type, 16-bit length, payload."""
        payload = self.encode_payload()
        if len(payload) > 0xFFFF:
            raise ProtocolViolation(f"control message too large: {len(payload)}")
        writer = VarintWriter()
        writer.write_varint(int(self.TYPE))
        writer.write_uint16(len(payload))
        writer.write_bytes(payload)
        return writer.getvalue()


@dataclass(frozen=True)
class ClientSetup(ControlMessage):
    """CLIENT_SETUP: offered versions plus setup parameters."""

    supported_versions: tuple[int, ...] = SUPPORTED_VERSIONS
    parameters: Parameters = field(default_factory=Parameters)

    TYPE = MessageType.CLIENT_SETUP

    def encode_payload(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(len(self.supported_versions))
        for version in self.supported_versions:
            writer.write_varint(version)
        writer.write_bytes(self.parameters.to_wire())
        return writer.getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "ClientSetup":
        count = reader.read_varint()
        versions = tuple(reader.read_varint() for _ in range(count))
        return cls(versions, Parameters.from_reader(reader))


@dataclass(frozen=True)
class ServerSetup(ControlMessage):
    """SERVER_SETUP: the selected version plus setup parameters."""

    selected_version: int = MOQT_VERSION_DRAFT_12
    parameters: Parameters = field(default_factory=Parameters)

    TYPE = MessageType.SERVER_SETUP

    def encode_payload(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(self.selected_version)
        writer.write_bytes(self.parameters.to_wire())
        return writer.getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "ServerSetup":
        version = reader.read_varint()
        return cls(version, Parameters.from_reader(reader))


@dataclass(frozen=True)
class Subscribe(ControlMessage):
    """SUBSCRIBE: request future objects of a track."""

    request_id: int = 0
    track_alias: int = 0
    full_track_name: FullTrackName = None  # type: ignore[assignment]
    subscriber_priority: int = 128
    group_order: GroupOrder = GroupOrder.PUBLISHER_DEFAULT
    forward: bool = True
    filter_type: FilterType = FilterType.LATEST_OBJECT
    start_group: int = 0
    start_object: int = 0
    end_group: int = 0
    parameters: Parameters = field(default_factory=Parameters)

    TYPE = MessageType.SUBSCRIBE

    def encode_payload(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(self.request_id)
        writer.write_varint(self.track_alias)
        writer.write_bytes(self.full_track_name.to_wire())
        writer.write_uint8(self.subscriber_priority)
        writer.write_uint8(int(self.group_order))
        writer.write_uint8(1 if self.forward else 0)
        writer.write_varint(int(self.filter_type))
        if self.filter_type in (FilterType.ABSOLUTE_START, FilterType.ABSOLUTE_RANGE):
            writer.write_varint(self.start_group)
            writer.write_varint(self.start_object)
        if self.filter_type == FilterType.ABSOLUTE_RANGE:
            writer.write_varint(self.end_group)
        writer.write_bytes(self.parameters.to_wire())
        return writer.getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "Subscribe":
        request_id = reader.read_varint()
        track_alias = reader.read_varint()
        full_track_name = FullTrackName.from_reader(reader)
        priority = reader.read_uint8()
        group_order = GroupOrder(reader.read_uint8())
        forward = reader.read_uint8() == 1
        filter_type = FilterType(reader.read_varint())
        start_group = start_object = end_group = 0
        if filter_type in (FilterType.ABSOLUTE_START, FilterType.ABSOLUTE_RANGE):
            start_group = reader.read_varint()
            start_object = reader.read_varint()
        if filter_type == FilterType.ABSOLUTE_RANGE:
            end_group = reader.read_varint()
        parameters = Parameters.from_reader(reader)
        return cls(
            request_id,
            track_alias,
            full_track_name,
            priority,
            group_order,
            forward,
            filter_type,
            start_group,
            start_object,
            end_group,
            parameters,
        )


@dataclass(frozen=True)
class SubscribeOk(ControlMessage):
    """SUBSCRIBE_OK: the publisher accepted the subscription."""

    request_id: int = 0
    expires_ms: int = 0
    group_order: GroupOrder = GroupOrder.ASCENDING
    content_exists: bool = False
    largest_group_id: int = 0
    largest_object_id: int = 0
    parameters: Parameters = field(default_factory=Parameters)

    TYPE = MessageType.SUBSCRIBE_OK

    def encode_payload(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(self.request_id)
        writer.write_varint(self.expires_ms)
        writer.write_uint8(int(self.group_order))
        writer.write_uint8(1 if self.content_exists else 0)
        if self.content_exists:
            writer.write_varint(self.largest_group_id)
            writer.write_varint(self.largest_object_id)
        writer.write_bytes(self.parameters.to_wire())
        return writer.getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "SubscribeOk":
        request_id = reader.read_varint()
        expires = reader.read_varint()
        group_order = GroupOrder(reader.read_uint8())
        content_exists = reader.read_uint8() == 1
        largest_group = largest_object = 0
        if content_exists:
            largest_group = reader.read_varint()
            largest_object = reader.read_varint()
        parameters = Parameters.from_reader(reader)
        return cls(request_id, expires, group_order, content_exists, largest_group, largest_object, parameters)


@dataclass(frozen=True)
class SubscribeError(ControlMessage):
    """SUBSCRIBE_ERROR: the publisher declined the subscription.

    ``retry_after_ms`` is an admission-control hint: how many milliseconds
    the subscriber should wait before retrying (0 means no hint).  It is
    encoded as an optional trailing varint — written only when non-zero, so
    every message emitted before admission control existed keeps its exact
    wire bytes, and decoders accept both the four-field and five-field
    encodings.
    """

    request_id: int = 0
    error_code: int = 0
    reason: str = ""
    track_alias: int = 0
    retry_after_ms: int = 0

    TYPE = MessageType.SUBSCRIBE_ERROR

    def encode_payload(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(self.request_id)
        writer.write_varint(self.error_code)
        writer.write_length_prefixed(self.reason.encode("utf-8"))
        writer.write_varint(self.track_alias)
        if self.retry_after_ms:
            writer.write_varint(self.retry_after_ms)
        return writer.getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "SubscribeError":
        request_id = reader.read_varint()
        error_code = reader.read_varint()
        reason = reader.read_length_prefixed().decode("utf-8")
        track_alias = reader.read_varint()
        retry_after_ms = 0 if reader.at_end() else reader.read_varint()
        return cls(request_id, error_code, reason, track_alias, retry_after_ms)


@dataclass(frozen=True)
class Unsubscribe(ControlMessage):
    """UNSUBSCRIBE: the subscriber no longer wants the track."""

    request_id: int = 0

    TYPE = MessageType.UNSUBSCRIBE

    def encode_payload(self) -> bytes:
        return VarintWriter().write_varint(self.request_id).getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "Unsubscribe":
        return cls(reader.read_varint())


@dataclass(frozen=True)
class SubscribeDone(ControlMessage):
    """SUBSCRIBE_DONE: the publisher finished (or aborted) a subscription."""

    request_id: int = 0
    status_code: int = 0
    stream_count: int = 0
    reason: str = ""

    TYPE = MessageType.SUBSCRIBE_DONE

    def encode_payload(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(self.request_id)
        writer.write_varint(self.status_code)
        writer.write_varint(self.stream_count)
        writer.write_length_prefixed(self.reason.encode("utf-8"))
        return writer.getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "SubscribeDone":
        return cls(
            reader.read_varint(),
            reader.read_varint(),
            reader.read_varint(),
            reader.read_length_prefixed().decode("utf-8"),
        )


@dataclass(frozen=True)
class Fetch(ControlMessage):
    """FETCH: request already-published objects.

    A *standalone* fetch names the track and an absolute start/end range.  A
    *joining* fetch references an existing subscription by request ID and asks
    for objects starting a number of groups before that subscription's start
    — the paper's lookup operation uses a relative joining fetch with offset 1
    to retrieve the current record version (§4.1).
    """

    request_id: int = 0
    subscriber_priority: int = 128
    group_order: GroupOrder = GroupOrder.ASCENDING
    fetch_type: FetchType = FetchType.STANDALONE
    full_track_name: FullTrackName | None = None
    start_group: int = 0
    start_object: int = 0
    end_group: int = 0
    end_object: int = 0
    joining_request_id: int = 0
    joining_start: int = 0
    parameters: Parameters = field(default_factory=Parameters)

    TYPE = MessageType.FETCH

    def encode_payload(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(self.request_id)
        writer.write_uint8(self.subscriber_priority)
        writer.write_uint8(int(self.group_order))
        writer.write_varint(int(self.fetch_type))
        if self.fetch_type == FetchType.STANDALONE:
            if self.full_track_name is None:
                raise ProtocolViolation("standalone FETCH requires a track name")
            writer.write_bytes(self.full_track_name.to_wire())
            writer.write_varint(self.start_group)
            writer.write_varint(self.start_object)
            writer.write_varint(self.end_group)
            writer.write_varint(self.end_object)
        else:
            writer.write_varint(self.joining_request_id)
            writer.write_varint(self.joining_start)
        writer.write_bytes(self.parameters.to_wire())
        return writer.getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "Fetch":
        request_id = reader.read_varint()
        priority = reader.read_uint8()
        group_order = GroupOrder(reader.read_uint8())
        fetch_type = FetchType(reader.read_varint())
        full_track_name = None
        start_group = start_object = end_group = end_object = 0
        joining_request_id = joining_start = 0
        if fetch_type == FetchType.STANDALONE:
            full_track_name = FullTrackName.from_reader(reader)
            start_group = reader.read_varint()
            start_object = reader.read_varint()
            end_group = reader.read_varint()
            end_object = reader.read_varint()
        else:
            joining_request_id = reader.read_varint()
            joining_start = reader.read_varint()
        parameters = Parameters.from_reader(reader)
        return cls(
            request_id,
            priority,
            group_order,
            fetch_type,
            full_track_name,
            start_group,
            start_object,
            end_group,
            end_object,
            joining_request_id,
            joining_start,
            parameters,
        )


@dataclass(frozen=True)
class FetchOk(ControlMessage):
    """FETCH_OK: the publisher will deliver the fetched objects."""

    request_id: int = 0
    group_order: GroupOrder = GroupOrder.ASCENDING
    end_of_track: bool = False
    largest_group_id: int = 0
    largest_object_id: int = 0
    parameters: Parameters = field(default_factory=Parameters)

    TYPE = MessageType.FETCH_OK

    def encode_payload(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(self.request_id)
        writer.write_uint8(int(self.group_order))
        writer.write_uint8(1 if self.end_of_track else 0)
        writer.write_varint(self.largest_group_id)
        writer.write_varint(self.largest_object_id)
        writer.write_bytes(self.parameters.to_wire())
        return writer.getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "FetchOk":
        return cls(
            reader.read_varint(),
            GroupOrder(reader.read_uint8()),
            reader.read_uint8() == 1,
            reader.read_varint(),
            reader.read_varint(),
            Parameters.from_reader(reader),
        )


@dataclass(frozen=True)
class FetchError(ControlMessage):
    """FETCH_ERROR: the fetch cannot be served."""

    request_id: int = 0
    error_code: int = 0
    reason: str = ""

    TYPE = MessageType.FETCH_ERROR

    def encode_payload(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(self.request_id)
        writer.write_varint(self.error_code)
        writer.write_length_prefixed(self.reason.encode("utf-8"))
        return writer.getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "FetchError":
        return cls(
            reader.read_varint(),
            reader.read_varint(),
            reader.read_length_prefixed().decode("utf-8"),
        )


@dataclass(frozen=True)
class FetchCancel(ControlMessage):
    """FETCH_CANCEL: the subscriber no longer wants the fetched objects."""

    request_id: int = 0

    TYPE = MessageType.FETCH_CANCEL

    def encode_payload(self) -> bytes:
        return VarintWriter().write_varint(self.request_id).getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "FetchCancel":
        return cls(reader.read_varint())


@dataclass(frozen=True)
class Announce(ControlMessage):
    """ANNOUNCE: a publisher advertises a track namespace."""

    request_id: int = 0
    namespace: TrackNamespace = None  # type: ignore[assignment]
    parameters: Parameters = field(default_factory=Parameters)

    TYPE = MessageType.ANNOUNCE

    def encode_payload(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(self.request_id)
        writer.write_bytes(self.namespace.to_wire())
        writer.write_bytes(self.parameters.to_wire())
        return writer.getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "Announce":
        return cls(
            reader.read_varint(),
            TrackNamespace.from_reader(reader),
            Parameters.from_reader(reader),
        )


@dataclass(frozen=True)
class AnnounceOk(ControlMessage):
    """ANNOUNCE_OK: the receiver accepted the announcement."""

    request_id: int = 0

    TYPE = MessageType.ANNOUNCE_OK

    def encode_payload(self) -> bytes:
        return VarintWriter().write_varint(self.request_id).getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "AnnounceOk":
        return cls(reader.read_varint())


@dataclass(frozen=True)
class MaxRequestId(ControlMessage):
    """MAX_REQUEST_ID: raises the peer's allowed request ID ceiling."""

    request_id: int = 0

    TYPE = MessageType.MAX_REQUEST_ID

    def encode_payload(self) -> bytes:
        return VarintWriter().write_varint(self.request_id).getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "MaxRequestId":
        return cls(reader.read_varint())


@dataclass(frozen=True)
class Goaway(ControlMessage):
    """GOAWAY: the server asks the client to move to a new session URI."""

    new_session_uri: str = ""

    TYPE = MessageType.GOAWAY

    def encode_payload(self) -> bytes:
        return VarintWriter().write_length_prefixed(self.new_session_uri.encode("utf-8")).getvalue()

    @classmethod
    def decode_payload(cls, reader: VarintReader) -> "Goaway":
        return cls(reader.read_length_prefixed().decode("utf-8"))


_DECODERS: dict[int, type[ControlMessage]] = {
    MessageType.CLIENT_SETUP: ClientSetup,
    MessageType.SERVER_SETUP: ServerSetup,
    MessageType.SUBSCRIBE: Subscribe,
    MessageType.SUBSCRIBE_OK: SubscribeOk,
    MessageType.SUBSCRIBE_ERROR: SubscribeError,
    MessageType.UNSUBSCRIBE: Unsubscribe,
    MessageType.SUBSCRIBE_DONE: SubscribeDone,
    MessageType.FETCH: Fetch,
    MessageType.FETCH_OK: FetchOk,
    MessageType.FETCH_ERROR: FetchError,
    MessageType.FETCH_CANCEL: FetchCancel,
    MessageType.ANNOUNCE: Announce,
    MessageType.ANNOUNCE_OK: AnnounceOk,
    MessageType.MAX_REQUEST_ID: MaxRequestId,
    MessageType.GOAWAY: Goaway,
}


#: Memo of decoded control messages keyed by ``(type, payload bytes)``.
#: Large subscriber populations exchange byte-identical CLIENT_SETUP /
#: SERVER_SETUP / SUBSCRIBE messages (10⁵ copies of the same SUBSCRIBE in the
#: macro runs); messages are frozen dataclasses, so one decoded instance can
#: serve every session — which also interns the embedded track names for
#: free.  Epoch eviction (clear when full) keeps the dict bounded.
_CONTROL_MESSAGE_CACHE: dict[tuple[int, bytes], "ControlMessage"] = {}
_CONTROL_MESSAGE_CACHE_MAX = 512


def decode_control_message(data: bytes, offset: int = 0) -> tuple[ControlMessage, int]:
    """Decode one control message; returns ``(message, next_offset)``.

    Raises :class:`NeedMoreData` when the buffer does not yet hold the whole
    message, which the control-stream reassembly in the session relies on.
    """
    reader = VarintReader(data, offset)
    try:
        message_type = reader.read_varint()
        length = reader.read_uint16()
        payload = reader.read_bytes(length)
    except Exception as error:
        raise NeedMoreData(str(error)) from None
    key = (message_type, payload)
    message = _CONTROL_MESSAGE_CACHE.get(key)
    if message is None:
        decoder = _DECODERS.get(message_type)
        if decoder is None:
            raise ProtocolViolation(f"unknown control message type {message_type:#x}")
        message = decoder.decode_payload(VarintReader(payload))
        if len(_CONTROL_MESSAGE_CACHE) >= _CONTROL_MESSAGE_CACHE_MAX:
            _CONTROL_MESSAGE_CACHE.clear()
        _CONTROL_MESSAGE_CACHE[key] = message
    return message, reader.offset


class NeedMoreData(Exception):
    """Raised when a control message is not yet fully buffered."""


class ControlStreamParser:
    """Reassembles control messages from stream data chunks."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[ControlMessage]:
        """Add bytes and return every now-complete message."""
        self._buffer += data
        messages: list[ControlMessage] = []
        offset = 0
        # One snapshot per feed (not per message) keeps a k-message burst at
        # one copy of the buffer instead of k.
        snapshot = bytes(self._buffer)
        while offset < len(snapshot):
            try:
                message, offset = decode_control_message(snapshot, offset)
            except NeedMoreData:
                break
            messages.append(message)
        if offset:
            del self._buffer[:offset]
        return messages
