"""Track naming: namespaces and full track names.

MoQT identifies a track by a *track namespace* — a tuple of byte strings —
plus a *track name*, a single byte string.  The combined encoded length of
namespace and name must not exceed 4096 bytes; the paper leans on this limit
when mapping DNS queries into track names (Fig. 3 leaves 4091 bytes for the
QNAME).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.quic.varint import VarintReader, VarintWriter

MAX_FULL_TRACK_NAME_LENGTH = 4096
MAX_NAMESPACE_ELEMENTS = 32


class TrackNameError(ValueError):
    """Raised for invalid namespaces or track names."""


@dataclass(frozen=True)
class TrackNamespace:
    """A namespace: an ordered tuple of byte-string elements."""

    elements: tuple[bytes, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.elements) <= MAX_NAMESPACE_ELEMENTS:
            raise TrackNameError(
                f"namespace must have 1..{MAX_NAMESPACE_ELEMENTS} elements, "
                f"got {len(self.elements)}"
            )

    @classmethod
    def of(cls, *elements: bytes | str) -> "TrackNamespace":
        """Build a namespace from byte-string or text elements."""
        converted = tuple(
            element.encode("utf-8") if isinstance(element, str) else bytes(element)
            for element in elements
        )
        return cls(converted)

    def encoded_length(self) -> int:
        """Total length of the elements (excluding length prefixes)."""
        return sum(len(element) for element in self.elements)

    def to_wire(self) -> bytes:
        """Encode as a varint count followed by length-prefixed elements."""
        writer = VarintWriter()
        writer.write_varint(len(self.elements))
        for element in self.elements:
            writer.write_length_prefixed(element)
        return writer.getvalue()

    @classmethod
    def from_reader(cls, reader: VarintReader) -> "TrackNamespace":
        """Decode from a :class:`VarintReader`."""
        count = reader.read_varint()
        if not 1 <= count <= MAX_NAMESPACE_ELEMENTS:
            raise TrackNameError(f"invalid namespace element count: {count}")
        return cls(tuple(reader.read_length_prefixed() for _ in range(count)))

    def is_prefix_of(self, other: "TrackNamespace") -> bool:
        """Whether this namespace is a prefix of ``other`` (used by ANNOUNCE)."""
        if len(self.elements) > len(other.elements):
            return False
        return other.elements[: len(self.elements)] == self.elements

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "/".join(element.hex() for element in self.elements)


@dataclass(frozen=True)
class FullTrackName:
    """A namespace plus a track name, uniquely identifying a track."""

    namespace: TrackNamespace
    name: bytes

    def __post_init__(self) -> None:
        total = self.namespace.encoded_length() + len(self.name)
        if total > MAX_FULL_TRACK_NAME_LENGTH:
            raise TrackNameError(
                f"full track name too long: {total} > {MAX_FULL_TRACK_NAME_LENGTH}"
            )

    @classmethod
    def of(cls, namespace: Iterable[bytes | str] | TrackNamespace, name: bytes | str) -> "FullTrackName":
        """Convenience constructor accepting text or byte elements."""
        if not isinstance(namespace, TrackNamespace):
            namespace = TrackNamespace.of(*namespace)
        raw_name = name.encode("utf-8") if isinstance(name, str) else bytes(name)
        return cls(namespace, raw_name)

    def encoded_length(self) -> int:
        """Combined length of namespace elements and track name."""
        return self.namespace.encoded_length() + len(self.name)

    def to_wire(self) -> bytes:
        """Encode namespace followed by the length-prefixed track name."""
        writer = VarintWriter()
        writer.write_bytes(self.namespace.to_wire())
        writer.write_length_prefixed(self.name)
        return writer.getvalue()

    @classmethod
    def from_reader(cls, reader: VarintReader) -> "FullTrackName":
        """Decode from a :class:`VarintReader`."""
        namespace = TrackNamespace.from_reader(reader)
        name = reader.read_length_prefixed()
        return cls(namespace, name)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.namespace}:{self.name.hex()}"
