"""The origin publisher: the MoQT server at the root of a relay tree.

Historically the origin lived inside the E11 experiment
(:mod:`repro.experiments.relay_fanout`); the replicated-origin work promoted
it to a proper moqt-layer component so an origin *instance* can exist more
than once per network — an active publisher and its warm standbys
(:mod:`repro.relaynet.origincluster`).  The experiment module re-exports
everything here, so existing imports keep working.

An :class:`OriginPublisher` is a publisher delegate plus the track state it
serves:

* SUBSCRIBEs are always accepted, answering with the track's largest
  location;
* FETCHes are served from the track state — standalone fetches honour their
  requested range (a promoted standby answers the tier-0 relays' gap FETCH
  from its cache), joining fetches return the latest group as before;
* :meth:`OriginPublisher.push` records an object and fans it out to every
  direct subscriber with the encode-once / chunk-cached / link-batched fast
  path.

A standby's publisher is created with ``seed_initial=False`` and its state
is filled by a live subscription to the active origin, so at promotion time
``state.largest`` *is* the cached high-water mark the resumed sequence
continues from.
"""

from __future__ import annotations

from repro.moqt.datastream import encode_subgroup_object, encode_subgroup_stream_chunk
from repro.moqt.messages import FetchType
from repro.moqt.objectmodel import Location, MoqtObject, TrackState
from repro.moqt.relay import MOQT_ALPN
from repro.moqt.session import FetchResult, MoqtSession, SubscribeResult
from repro.moqt.track import FullTrackName
from repro.netsim.network import Network
from repro.quic.endpoint import QuicEndpoint
from repro.quic.tls import ServerTlsContext

TRACK = FullTrackName.of(["dns", "a"], b"cdn.example")
ORIGIN_HOST = "origin"
ORIGIN_PORT = 4443


class OriginPublisher:
    """Origin publisher delegate serving one DNS track to the top tier.

    Parameters
    ----------
    network:
        The network the origin host lives on, when known — enables the
        batched, chunk-cached fan-out fast path in :meth:`push`.
    track:
        The full track name this origin serves.
    seed_initial:
        Publish the historical initial object (group 1, ``b"v1"``) into the
        track state.  Standby origins pass False: their state is warmed by a
        live subscription to the active origin instead, so the cache holds
        exactly what the active published.
    """

    def __init__(
        self,
        network: Network | None = None,
        track: FullTrackName = TRACK,
        seed_initial: bool = True,
    ) -> None:
        self.state = TrackState(track)
        if seed_initial:
            self.state.publish(MoqtObject(group_id=1, object_id=0, payload=b"v1"))
        self.sessions: list[MoqtSession] = []
        self.network = network

    @property
    def high_water(self) -> Location | None:
        """Largest location the publisher's state holds (resume point)."""
        return self.state.largest

    def handle_subscribe(self, session, message):
        return SubscribeResult(ok=True, largest=self.state.largest)

    def handle_fetch(self, session, message, full_track_name):
        if message.fetch_type == FetchType.STANDALONE:
            start = Location(message.start_group, message.start_object)
            end = Location(message.end_group, message.end_object)
            if start != Location(0, 0) or end != Location(0, 0):
                # Ranged standalone fetch: a promoted standby serves the
                # tier-0 relays' gap FETCH from its warm cache, exactly like
                # a relay's cache would (inclusive range, open end allowed).
                return FetchResult(
                    ok=True,
                    objects=self.state.objects_in_range(
                        start, end if end != Location(0, 0) else None
                    ),
                    largest=self.state.largest,
                )
        return FetchResult(
            ok=True, objects=self.state.latest_objects(1), largest=self.state.largest
        )

    def push(self, obj: MoqtObject) -> None:
        """Record and push one update to every direct (top-tier) subscriber."""
        self.state.publish(obj)
        cached_encoding = encode_subgroup_object(obj)
        chunk_by_alias: dict[int, bytes] = {}
        network = self.network
        if network is not None:
            spans = network.telemetry.spans
            if spans is not None:
                # Span root: every tier hop and delivery of this object is
                # measured from this virtual-time instant.
                spans.record_push(obj.location, network.simulator.now)
            network.begin_batch()
        try:
            for session in self.sessions:
                if session.closed:
                    continue
                for subscription in session.publisher_subscriptions():
                    if session.config.use_datagrams:
                        session.publish(subscription, obj, cached_encoding)
                        continue
                    alias = subscription.track_alias
                    chunk = chunk_by_alias.get(alias)
                    if chunk is None:
                        chunk = encode_subgroup_stream_chunk(alias, obj, cached_encoding)
                        chunk_by_alias[alias] = chunk
                    session.publish_preencoded(subscription, obj, chunk)
        finally:
            if network is not None:
                network.end_batch()

    @property
    def objects_sent(self) -> int:
        """Objects the origin pushed over all its sessions."""
        return sum(session.statistics.objects_sent for session in self.sessions)


def build_origin_endpoint(
    host, publisher: OriginPublisher, port: int = ORIGIN_PORT
) -> QuicEndpoint:
    """Bind a MoQT server endpoint on ``host`` serving ``publisher``."""
    return QuicEndpoint(
        host,
        port=port,
        server_tls=ServerTlsContext(alpn_protocols=(MOQT_ALPN,)),
        on_connection=lambda connection: publisher.sessions.append(
            MoqtSession(connection, is_client=False, publisher_delegate=publisher)
        ),
    )


def build_origin(network: Network, publisher: OriginPublisher | None = None) -> OriginPublisher:
    """Create the origin host with a MoQT server wired to ``publisher``."""
    host = network.add_host(ORIGIN_HOST)
    if publisher is None:
        publisher = OriginPublisher(network)
    elif publisher.network is None:
        publisher.network = network
    build_origin_endpoint(host, publisher)
    return publisher
