"""The MoQT session: setup handshake, subscriptions, fetches and publishing.

A :class:`MoqtSession` runs on top of one :class:`~repro.quic.connection.QuicConnection`.
The client opens the bidirectional control stream and sends ``CLIENT_SETUP``;
the server answers with ``SERVER_SETUP``.  Only then may requests be issued —
this is the extra round trip the paper's §5.2 attributes to MoQT session
establishment.  Setting
:attr:`MoqtSessionConfig.alpn_version_negotiation` models the future
optimisation the paper mentions (version negotiation moved into the QUIC/TLS
ALPN), which lets the client send requests immediately after the QUIC
handshake (or in 0-RTT data).

Both endpoints of a session can act as publisher and subscriber:

* the *subscriber* API is :meth:`MoqtSession.subscribe`,
  :meth:`MoqtSession.fetch` (standalone) and :meth:`MoqtSession.joining_fetch`;
* the *publisher* API is a :class:`PublisherDelegate` that decides how to
  answer SUBSCRIBE/FETCH, plus :meth:`MoqtSession.publish` to push objects to
  an accepted subscription.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.moqt.datastream import (
    DataStreamParser,
    FetchStreamHeader,
    SubgroupStreamHeader,
    decode_complete_datastream,
    encode_fetch_object,
    encode_object_datagram,
    encode_subgroup_stream_chunk,
    decode_object_datagram,
)
from repro.moqt.errors import (
    FetchErrorCode,
    MoqtError,
    ProtocolViolation,
    SessionTerminated,
    SubscribeErrorCode,
)
from repro.moqt.messages import (
    Announce,
    AnnounceOk,
    ClientSetup,
    ControlMessage,
    ControlStreamParser,
    Fetch,
    FetchCancel,
    FetchError,
    FetchOk,
    FetchType,
    FilterType,
    Goaway,
    GroupOrder,
    MaxRequestId,
    MessageType,
    MOQT_VERSION_DRAFT_12,
    ServerSetup,
    Subscribe,
    SubscribeDone,
    SubscribeError,
    SubscribeOk,
    SUPPORTED_VERSIONS,
    Unsubscribe,
)
from repro.moqt.objectmodel import Location, MoqtObject
from repro.moqt.track import FullTrackName
from repro.quic.connection import QuicConnection
from repro.quic.stream import QuicStream, StreamDirection

#: ALPN identifier for MoQT.
MOQT_ALPN = "moq-00"


@dataclass
class MoqtSessionConfig:
    """Per-session knobs."""

    max_request_id: int = 1 << 20
    alpn_version_negotiation: bool = False
    use_datagrams: bool = False


@dataclass
class SubscribeResult:
    """Publisher delegate's answer to a SUBSCRIBE.

    ``retry_after_ms`` only matters on the rejection path: a non-zero value
    rides the SUBSCRIBE_ERROR as an admission-control hint telling the
    subscriber how long to back off before retrying.
    """

    ok: bool
    largest: Location | None = None
    expires_ms: int = 0
    error_code: SubscribeErrorCode = SubscribeErrorCode.INTERNAL_ERROR
    reason: str = ""
    retry_after_ms: int = 0


@dataclass
class FetchResult:
    """Publisher delegate's answer to a FETCH."""

    ok: bool
    objects: list[MoqtObject] = field(default_factory=list)
    largest: Location | None = None
    error_code: FetchErrorCode = FetchErrorCode.INTERNAL_ERROR
    reason: str = ""


class PublisherDelegate(Protocol):
    """The application-side publisher logic attached to a session.

    Both handlers may answer immediately by returning a result, or defer by
    returning ``None`` and later calling
    :meth:`MoqtSession.complete_subscribe` /
    :meth:`MoqtSession.complete_fetch` with the same request ID.  Deferral is
    how the recursive resolver answers a stub's FETCH only after it has
    itself subscribed and fetched upstream (Fig. 2 of the paper).
    """

    def handle_subscribe(
        self, session: "MoqtSession", message: Subscribe
    ) -> SubscribeResult | None:
        """Decide whether to accept a subscription (or ``None`` to defer)."""

    def handle_fetch(
        self,
        session: "MoqtSession",
        message: Fetch,
        full_track_name: FullTrackName | None,
    ) -> FetchResult | None:
        """Produce the objects for a fetch (``full_track_name`` resolved for
        joining fetches), or ``None`` to defer."""

    # Delegates may additionally implement
    # ``handle_unsubscribe(session, request_id)``; when present it is invoked
    # after an UNSUBSCRIBE tears down the publisher-side subscription, so
    # aggregating publishers (relays) can release per-subscriber state and
    # propagate the teardown upstream (§5.1 state clean-up).


@dataclass(slots=True)
class Subscription:
    """Subscriber-side state of one subscription."""

    request_id: int
    track_alias: int
    full_track_name: FullTrackName
    on_object: Callable[[MoqtObject], None] | None = None
    on_response: Callable[["Subscription"], None] | None = None
    state: str = "pending"
    largest: Location | None = None
    error_code: int = 0
    error_reason: str = ""
    retry_after_ms: int = 0
    expires_ms: int = 0
    content_exists: bool = False
    created_at: float = 0.0
    responded_at: float | None = None
    last_object_at: float | None = None
    objects_received: int = 0

    @property
    def is_active(self) -> bool:
        """Whether the publisher accepted the subscription."""
        return self.state == "active"


@dataclass(slots=True)
class FetchRequest:
    """Subscriber-side state of one fetch."""

    request_id: int
    full_track_name: FullTrackName | None
    on_object: Callable[[MoqtObject], None] | None = None
    on_complete: Callable[["FetchRequest"], None] | None = None
    state: str = "pending"
    objects: list[MoqtObject] = field(default_factory=list)
    largest: Location | None = None
    error_code: int = 0
    error_reason: str = ""
    created_at: float = 0.0
    responded_at: float | None = None
    completed_at: float | None = None
    stream_finished: bool = False
    ok_received: bool = False

    @property
    def succeeded(self) -> bool:
        """Whether the fetch completed successfully."""
        return self.state == "complete"


@dataclass(slots=True)
class PublisherSubscription:
    """Publisher-side state of a downstream subscription."""

    request_id: int
    track_alias: int
    full_track_name: FullTrackName
    subscriber_priority: int = 128
    forward: bool = True
    accepted_at: float = 0.0
    objects_sent: int = 0


@dataclass(slots=True)
class SessionStatistics:
    """Counters kept by a session."""

    control_messages_sent: int = 0
    control_messages_received: int = 0
    objects_sent: int = 0
    objects_received: int = 0
    object_bytes_sent: int = 0
    object_bytes_received: int = 0
    subscribes_sent: int = 0
    subscribes_received: int = 0
    fetches_sent: int = 0
    fetches_received: int = 0


class MoqtSession:
    """One endpoint of a MoQT session over a QUIC connection.

    Slotted: the macro-scale runs hold one session per subscriber per side,
    so per-instance dict overhead is paid 2×10⁵ times at 100k subscribers.
    """

    __slots__ = (
        "connection",
        "is_client",
        "config",
        "publisher_delegate",
        "on_ready",
        "on_closed",
        "on_liveness",
        "statistics",
        "_simulator",
        "ready",
        "ready_at",
        "created_at",
        "selected_version",
        "goaway_uri",
        "closed",
        "_control_parser",
        "_control_stream",
        "_control_stream_id",
        "_next_request_id",
        "_next_track_alias",
        "_subscriptions",
        "_subscriptions_by_alias",
        "_fetches",
        "_pending_until_ready",
        "_publisher_subscriptions",
        "_pending_incoming_subscribes",
        "_pending_incoming_fetches",
        "_stream_parsers",
    )

    def __init__(
        self,
        connection: QuicConnection,
        *,
        is_client: bool,
        config: MoqtSessionConfig | None = None,
        publisher_delegate: PublisherDelegate | None = None,
        on_ready: Callable[["MoqtSession"], None] | None = None,
        on_closed: Callable[["MoqtSession", str], None] | None = None,
        on_liveness: Callable[["MoqtSession", str, str], None] | None = None,
    ) -> None:
        self.connection = connection
        self.is_client = is_client
        self.config = config if config is not None else MoqtSessionConfig()
        self.publisher_delegate = publisher_delegate
        self.on_ready = on_ready
        self.on_closed = on_closed
        #: Observer of the transport's in-band liveness transitions
        #: (``on_liveness(session, old_state, new_state)``); see
        #: :attr:`repro.quic.connection.QuicConnection.on_liveness`.  May be
        #: (re)assigned after construction — transitions are only ever
        #: delivered from inside the event loop.
        self.on_liveness = on_liveness
        self.statistics = SessionStatistics()
        self._simulator = connection._simulator  # noqa: SLF001 - same package family

        self.ready = False
        self.ready_at: float | None = None
        self.created_at = self._simulator.now
        self.selected_version: int | None = None
        self.goaway_uri: str | None = None
        self.closed = False

        self._control_parser = ControlStreamParser()
        self._control_stream: QuicStream | None = None
        #: Mirror of ``_control_stream.stream_id`` so the per-frame dispatch
        #: in :meth:`_on_stream_data` is one int compare, not two attribute
        #: chains.
        self._control_stream_id: int | None = None
        self._next_request_id = 0 if is_client else 1
        self._next_track_alias = 1

        # Subscriber-side state.
        self._subscriptions: dict[int, Subscription] = {}
        self._subscriptions_by_alias: dict[int, Subscription] = {}
        self._fetches: dict[int, FetchRequest] = {}
        self._pending_until_ready: list[Callable[[], None]] = []

        # Publisher-side state.
        self._publisher_subscriptions: dict[int, PublisherSubscription] = {}
        self._pending_incoming_subscribes: dict[int, Subscribe] = {}
        self._pending_incoming_fetches: dict[int, Fetch] = {}

        # Incoming data-stream reassembly.
        self._stream_parsers: dict[int, DataStreamParser] = {}

        connection.on_stream_data = self._on_stream_data
        connection.on_datagram = self._on_datagram
        connection.on_closed = self._on_connection_closed
        connection.on_liveness = self._on_connection_liveness

        if is_client:
            self._start_client()
        # The server side waits for the client's control stream.

    # ----------------------------------------------------------------- setup
    def _start_client(self) -> None:
        self._control_stream = self.connection.open_stream(StreamDirection.BIDIRECTIONAL)
        self._control_stream_id = self._control_stream.stream_id
        setup = ClientSetup(supported_versions=SUPPORTED_VERSIONS)
        self._send_control(setup)
        if self.config.alpn_version_negotiation:
            # Future MoQT: the version is negotiated in ALPN, so the client
            # may send requests without waiting for SERVER_SETUP.
            self._mark_ready(MOQT_VERSION_DRAFT_12)

    def _mark_ready(self, version: int) -> None:
        if self.ready:
            return
        self.ready = True
        self.ready_at = self._simulator.now
        self.selected_version = version
        if self.on_ready is not None:
            self.on_ready(self)
        pending, self._pending_until_ready = self._pending_until_ready, []
        for action in pending:
            action()

    # --------------------------------------------------------------- plumbing
    def _require_open(self) -> None:
        if self.closed:
            raise SessionTerminated("session is closed")

    def _allocate_request_id(self) -> int:
        request_id = self._next_request_id
        self._next_request_id += 2
        return request_id

    def _send_control(self, message: ControlMessage) -> None:
        self._require_open()
        if self._control_stream is None:
            # Server side: the control stream is the peer's stream 0.
            self._control_stream = self.connection.get_or_create_stream(0)
            self._control_stream_id = 0
        self.statistics.control_messages_sent += 1
        self.connection.send_stream_data(self._control_stream, message.encode())

    def _when_ready(self, action: Callable[[], None]) -> None:
        if self.ready:
            action()
        else:
            self._pending_until_ready.append(action)

    # ------------------------------------------------------------- subscriber
    def subscribe(
        self,
        full_track_name: FullTrackName,
        on_object: Callable[[MoqtObject], None] | None = None,
        on_response: Callable[[Subscription], None] | None = None,
        filter_type: FilterType = FilterType.LATEST_OBJECT,
        subscriber_priority: int = 128,
    ) -> Subscription:
        """Subscribe to future objects of a track.

        The SUBSCRIBE message is sent once the session is ready; callbacks
        fire when the publisher answers and whenever an object arrives.
        """
        self._require_open()
        request_id = self._allocate_request_id()
        track_alias = self._next_track_alias
        self._next_track_alias += 1
        subscription = Subscription(
            request_id=request_id,
            track_alias=track_alias,
            full_track_name=full_track_name,
            on_object=on_object,
            on_response=on_response,
            created_at=self._simulator.now,
        )
        self._subscriptions[request_id] = subscription
        self._subscriptions_by_alias[track_alias] = subscription
        message = Subscribe(
            request_id=request_id,
            track_alias=track_alias,
            full_track_name=full_track_name,
            subscriber_priority=subscriber_priority,
            filter_type=filter_type,
        )
        self.statistics.subscribes_sent += 1
        self._when_ready(lambda: self._send_control(message))
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Tear down a subscription (§4.4 clean-up).

        The subscription is dropped from the session's routing maps
        immediately: late in-flight objects for the dead track alias are
        discarded, and long-lived sessions that churn through
        subscribe/unsubscribe cycles (a relay's upstream session) do not
        accumulate dead entries — the §5.1 state argument depends on this.
        """
        self._require_open()
        if subscription.request_id not in self._subscriptions:
            return
        subscription.state = "done"
        self._subscriptions.pop(subscription.request_id, None)
        self._subscriptions_by_alias.pop(subscription.track_alias, None)
        self._when_ready(lambda: self._send_control(Unsubscribe(subscription.request_id)))

    def fetch(
        self,
        full_track_name: FullTrackName,
        start: Location,
        end: Location,
        on_object: Callable[[MoqtObject], None] | None = None,
        on_complete: Callable[[FetchRequest], None] | None = None,
    ) -> FetchRequest:
        """Standalone fetch of an absolute object range."""
        self._require_open()
        request_id = self._allocate_request_id()
        fetch_request = FetchRequest(
            request_id=request_id,
            full_track_name=full_track_name,
            on_object=on_object,
            on_complete=on_complete,
            created_at=self._simulator.now,
        )
        self._fetches[request_id] = fetch_request
        message = Fetch(
            request_id=request_id,
            fetch_type=FetchType.STANDALONE,
            full_track_name=full_track_name,
            start_group=start.group_id,
            start_object=start.object_id,
            end_group=end.group_id,
            end_object=end.object_id,
        )
        self.statistics.fetches_sent += 1
        self._when_ready(lambda: self._send_control(message))
        return fetch_request

    def joining_fetch(
        self,
        subscription: Subscription,
        joining_start: int = 1,
        on_object: Callable[[MoqtObject], None] | None = None,
        on_complete: Callable[[FetchRequest], None] | None = None,
    ) -> FetchRequest:
        """Relative joining fetch: objects starting ``joining_start`` groups
        before the subscription's start (§4.1 uses an offset of one to get the
        current record version)."""
        self._require_open()
        request_id = self._allocate_request_id()
        fetch_request = FetchRequest(
            request_id=request_id,
            full_track_name=subscription.full_track_name,
            on_object=on_object,
            on_complete=on_complete,
            created_at=self._simulator.now,
        )
        self._fetches[request_id] = fetch_request
        message = Fetch(
            request_id=request_id,
            fetch_type=FetchType.RELATIVE_JOINING,
            joining_request_id=subscription.request_id,
            joining_start=joining_start,
        )
        self.statistics.fetches_sent += 1
        self._when_ready(lambda: self._send_control(message))
        return fetch_request

    def subscriptions(self) -> list[Subscription]:
        """All subscriber-side subscriptions."""
        return list(self._subscriptions.values())

    # -------------------------------------------------------------- publisher
    def publisher_subscriptions(self) -> list[PublisherSubscription]:
        """All downstream subscriptions accepted by this session."""
        return list(self._publisher_subscriptions.values())

    def publish(
        self,
        subscription: PublisherSubscription,
        obj: MoqtObject,
        cached_encoding: bytes | None = None,
    ) -> None:
        """Push one object to a downstream subscription.

        The paper's prototype sends every object on its own unidirectional
        stream (one group per stream, streams not datagrams); with
        ``use_datagrams`` enabled the object is sent unreliably instead, which
        the ablation benchmark compares.

        ``cached_encoding`` is the object-body encoding from
        :func:`~repro.moqt.datastream.encode_subgroup_object` (stream mode) or
        :func:`~repro.moqt.datastream.encode_object_datagram_body` (datagram
        mode).  Fan-out publishers (relays) encode each object once and pass
        the bytes to every downstream publish; only the per-subscriber stream
        header is serialised per call, and the wire bytes are identical to an
        uncached publish.
        """
        self._require_open()
        if not subscription.forward:
            return
        self.statistics.objects_sent += 1
        self.statistics.object_bytes_sent += obj.size
        subscription.objects_sent += 1
        if self.config.use_datagrams:
            payload = encode_object_datagram(subscription.track_alias, obj, cached_encoding)
            self.connection.send_datagram_frame(payload)
            return
        stream = self.connection.open_stream(StreamDirection.UNIDIRECTIONAL)
        self.connection.send_stream_data(
            stream,
            encode_subgroup_stream_chunk(subscription.track_alias, obj, cached_encoding),
            fin=True,
        )

    def publish_preencoded(
        self, subscription: PublisherSubscription, obj: MoqtObject, chunk: bytes
    ) -> None:
        """Push one object whose subgroup-stream chunk is already encoded.

        The fan-out fast path under :meth:`publish`: ``chunk`` is the complete
        stream payload from
        :func:`~repro.moqt.datastream.encode_subgroup_stream_chunk` for this
        subscription's track alias, so relays fanning one object to thousands
        of same-alias subscribers serialise it once and every per-subscriber
        send is a QUIC-header patch into a pooled buffer
        (:meth:`~repro.quic.connection.QuicConnection.send_encoded_stream`).
        Wire bytes and statistics are identical to :meth:`publish`; sessions
        in datagram mode must keep using :meth:`publish`.
        """
        self._require_open()
        if not subscription.forward:
            return
        self.statistics.objects_sent += 1
        self.statistics.object_bytes_sent += obj.size
        subscription.objects_sent += 1
        self.connection.send_encoded_stream(chunk)

    def _send_fetch_objects(self, request_id: int, objects: list[MoqtObject]) -> None:
        stream = self.connection.open_stream(StreamDirection.UNIDIRECTIONAL)
        payload = FetchStreamHeader(request_id=request_id).encode()
        for obj in objects:
            payload += encode_fetch_object(obj)
            self.statistics.objects_sent += 1
            self.statistics.object_bytes_sent += obj.size
        self.connection.send_stream_data(stream, payload, fin=True)

    # ------------------------------------------------------------- goaway/close
    def goaway(self, new_session_uri: str = "") -> None:
        """Ask the peer to migrate to a different session."""
        self._send_control(Goaway(new_session_uri))

    def close(self, reason: str = "") -> None:
        """Close the session and the underlying connection."""
        if self.closed:
            return
        self.closed = True
        if not self.connection.closed:
            self.connection.close(reason=reason)
        self._fail_pending_fetches(reason)
        if self.on_closed is not None:
            self.on_closed(self, reason)

    def _on_connection_closed(self, code: int, reason: str) -> None:
        if self.closed:
            return
        self.closed = True
        self._fail_pending_fetches(reason)
        if self.on_closed is not None:
            self.on_closed(self, reason)

    @property
    def liveness(self) -> str:
        """The transport's in-band liveness state (healthy/suspect/dead)."""
        return self.connection.liveness

    def _on_connection_liveness(self, connection: QuicConnection, old: str, new: str) -> None:
        """Surface transport-detected liveness transitions to the delegate.

        Fires *before* any close teardown: a ``dead`` observer (a relay
        failing over its uplink, E13) reacts while subscriptions and pending
        requests are still intact, so it can transplant them instead of
        watching them error.
        """
        if self.on_liveness is not None:
            self.on_liveness(self, old, new)

    def _fail_pending_fetches(self, reason: str) -> None:
        """Error every fetch still in flight when the session dies.

        A fetch whose transport is gone can never complete, so callers
        waiting on ``on_complete`` — a relay that forwarded a downstream
        FETCH over this (upstream) session, the forwarder's lookup path —
        would otherwise hang forever.  Failing them here turns a dead
        session into an ordinary fetch error the existing error paths
        already handle.
        """
        pending = [
            fetch for fetch in self._fetches.values() if fetch.state in ("pending", "ok")
        ]
        self._fetches.clear()
        message = f"session closed: {reason}" if reason else "session closed"
        for fetch_request in pending:
            fetch_request.state = "error"
            fetch_request.responded_at = self._simulator.now
            fetch_request.error_code = int(FetchErrorCode.INTERNAL_ERROR)
            fetch_request.error_reason = message
            if fetch_request.on_complete is not None:
                fetch_request.on_complete(fetch_request)

    # --------------------------------------------------------------- dispatch
    def _on_stream_data(self, stream_id: int, data: bytes, fin: bool) -> None:
        if stream_id == 0 or stream_id == self._control_stream_id:
            for message in self._control_parser.feed(data):
                self._handle_control_message(message)
            return
        parser = self._stream_parsers.get(stream_id)
        if parser is None:
            if fin:
                # The stream arrived whole in its first chunk — the fan-out
                # data path.  Decode through the process-wide memo (sibling
                # subscribers receive byte-identical payloads) and skip the
                # per-stream parser state entirely.
                header, objects = decode_complete_datastream(data)
                if header is None:
                    return
                if isinstance(header, SubgroupStreamHeader):
                    track_alias = header.track_alias
                    for obj in objects:
                        self._deliver_subscribed_object(track_alias, obj)
                else:
                    self._deliver_fetch_objects(header.request_id, list(objects), True)
                return
            parser = DataStreamParser()
            self._stream_parsers[stream_id] = parser
        objects = parser.feed(data, fin)
        header = parser.header
        if header is None:
            return
        if isinstance(header, SubgroupStreamHeader):
            for obj in objects:
                self._deliver_subscribed_object(header.track_alias, obj)
        else:
            self._deliver_fetch_objects(header.request_id, objects, parser.finished)
        if fin:
            self._stream_parsers.pop(stream_id, None)

    def _on_datagram(self, data: bytes) -> None:
        try:
            track_alias, obj = decode_object_datagram(data)
        except MoqtError:
            return
        self._deliver_subscribed_object(track_alias, obj)

    def _deliver_subscribed_object(self, track_alias: int, obj: MoqtObject) -> None:
        subscription = self._subscriptions_by_alias.get(track_alias)
        if subscription is None:
            return
        self.statistics.objects_received += 1
        self.statistics.object_bytes_received += obj.size
        subscription.objects_received += 1
        subscription.last_object_at = self._simulator.now
        if subscription.largest is None or obj.location > subscription.largest:
            subscription.largest = obj.location
        if subscription.on_object is not None:
            subscription.on_object(obj)

    def _deliver_fetch_objects(
        self, request_id: int, objects: list[MoqtObject], finished: bool
    ) -> None:
        fetch_request = self._fetches.get(request_id)
        if fetch_request is None:
            return
        for obj in objects:
            self.statistics.objects_received += 1
            self.statistics.object_bytes_received += obj.size
            fetch_request.objects.append(obj)
            if fetch_request.largest is None or obj.location > fetch_request.largest:
                fetch_request.largest = obj.location
            if fetch_request.on_object is not None:
                fetch_request.on_object(obj)
        if finished:
            fetch_request.stream_finished = True
            self._maybe_complete_fetch(fetch_request)

    def _maybe_complete_fetch(self, fetch_request: FetchRequest) -> None:
        if fetch_request.state == "complete":
            return
        if fetch_request.stream_finished and fetch_request.ok_received:
            fetch_request.state = "complete"
            fetch_request.completed_at = self._simulator.now
            if fetch_request.on_complete is not None:
                fetch_request.on_complete(fetch_request)

    # ------------------------------------------------------- control handling
    def _handle_control_message(self, message: ControlMessage) -> None:
        self.statistics.control_messages_received += 1
        if isinstance(message, ClientSetup):
            self._handle_client_setup(message)
        elif isinstance(message, ServerSetup):
            self._handle_server_setup(message)
        elif isinstance(message, Subscribe):
            self._handle_subscribe(message)
        elif isinstance(message, SubscribeOk):
            self._handle_subscribe_ok(message)
        elif isinstance(message, SubscribeError):
            self._handle_subscribe_error(message)
        elif isinstance(message, Unsubscribe):
            self._handle_unsubscribe(message)
        elif isinstance(message, SubscribeDone):
            self._handle_subscribe_done(message)
        elif isinstance(message, Fetch):
            self._handle_fetch(message)
        elif isinstance(message, FetchOk):
            self._handle_fetch_ok(message)
        elif isinstance(message, FetchError):
            self._handle_fetch_error(message)
        elif isinstance(message, FetchCancel):
            pass  # nothing to cancel once objects have been sent
        elif isinstance(message, Announce):
            self._send_control(AnnounceOk(request_id=message.request_id))
        elif isinstance(message, (AnnounceOk, MaxRequestId)):
            pass
        elif isinstance(message, Goaway):
            self.goaway_uri = message.new_session_uri
        else:  # pragma: no cover - defensive
            raise ProtocolViolation(f"unhandled control message {message!r}")

    def _handle_client_setup(self, message: ClientSetup) -> None:
        if self.is_client:
            raise ProtocolViolation("client received CLIENT_SETUP")
        if MOQT_VERSION_DRAFT_12 not in message.supported_versions:
            self.close("no common MoQT version")
            return
        self._send_control(ServerSetup(selected_version=MOQT_VERSION_DRAFT_12))
        self._mark_ready(MOQT_VERSION_DRAFT_12)

    def _handle_server_setup(self, message: ServerSetup) -> None:
        if not self.is_client:
            raise ProtocolViolation("server received SERVER_SETUP")
        self._mark_ready(message.selected_version)

    # Publisher side of SUBSCRIBE / FETCH --------------------------------------
    def _handle_subscribe(self, message: Subscribe) -> None:
        self.statistics.subscribes_received += 1
        if self.publisher_delegate is None:
            self._send_control(
                SubscribeError(
                    request_id=message.request_id,
                    error_code=int(SubscribeErrorCode.NOT_SUPPORTED),
                    reason="no publisher attached",
                    track_alias=message.track_alias,
                )
            )
            return
        self._pending_incoming_subscribes[message.request_id] = message
        result = self.publisher_delegate.handle_subscribe(self, message)
        if result is not None:
            self.complete_subscribe(message.request_id, result)

    def complete_subscribe(self, request_id: int, result: SubscribeResult) -> PublisherSubscription | None:
        """Answer a (possibly deferred) incoming SUBSCRIBE.

        Returns the publisher-side subscription when the subscribe was
        accepted, so the caller can start publishing to it.
        """
        message = self._pending_incoming_subscribes.pop(request_id, None)
        if message is None or self.closed:
            return None
        if not result.ok:
            self._send_control(
                SubscribeError(
                    request_id=message.request_id,
                    error_code=int(result.error_code),
                    reason=result.reason,
                    track_alias=message.track_alias,
                    retry_after_ms=result.retry_after_ms,
                )
            )
            return None
        publisher_subscription = PublisherSubscription(
            request_id=message.request_id,
            track_alias=message.track_alias,
            full_track_name=message.full_track_name,
            subscriber_priority=message.subscriber_priority,
            forward=message.forward,
            accepted_at=self._simulator.now,
        )
        self._publisher_subscriptions[message.request_id] = publisher_subscription
        self._send_control(
            SubscribeOk(
                request_id=message.request_id,
                expires_ms=result.expires_ms,
                content_exists=result.largest is not None,
                largest_group_id=result.largest.group_id if result.largest else 0,
                largest_object_id=result.largest.object_id if result.largest else 0,
            )
        )
        return publisher_subscription

    def publisher_subscription(self, request_id: int) -> PublisherSubscription | None:
        """Look up an accepted downstream subscription by request ID."""
        return self._publisher_subscriptions.get(request_id)

    def _handle_fetch(self, message: Fetch) -> None:
        self.statistics.fetches_received += 1
        if self.publisher_delegate is None:
            self._send_control(
                FetchError(
                    request_id=message.request_id,
                    error_code=int(FetchErrorCode.NOT_SUPPORTED),
                    reason="no publisher attached",
                )
            )
            return
        full_track_name = message.full_track_name
        if message.fetch_type != FetchType.STANDALONE:
            joined = self._publisher_subscriptions.get(message.joining_request_id)
            if joined is None:
                joined_pending = self._pending_incoming_subscribes.get(message.joining_request_id)
                if joined_pending is None:
                    self._send_control(
                        FetchError(
                            request_id=message.request_id,
                            error_code=int(FetchErrorCode.INVALID_RANGE),
                            reason="joining fetch references unknown subscription",
                        )
                    )
                    return
                full_track_name = joined_pending.full_track_name
            else:
                full_track_name = joined.full_track_name
        self._pending_incoming_fetches[message.request_id] = message
        result = self.publisher_delegate.handle_fetch(self, message, full_track_name)
        if result is not None:
            self.complete_fetch(message.request_id, result)

    def complete_fetch(self, request_id: int, result: FetchResult) -> None:
        """Answer a (possibly deferred) incoming FETCH."""
        message = self._pending_incoming_fetches.pop(request_id, None)
        if message is None or self.closed:
            return
        if not result.ok:
            self._send_control(
                FetchError(
                    request_id=message.request_id,
                    error_code=int(result.error_code),
                    reason=result.reason,
                )
            )
            return
        largest = result.largest
        if largest is None and result.objects:
            largest = max(obj.location for obj in result.objects)
        self._send_control(
            FetchOk(
                request_id=message.request_id,
                end_of_track=False,
                largest_group_id=largest.group_id if largest else 0,
                largest_object_id=largest.object_id if largest else 0,
            )
        )
        self._send_fetch_objects(message.request_id, result.objects)

    def _handle_unsubscribe(self, message: Unsubscribe) -> None:
        # The subscribe being unsubscribed may still be deferred (the
        # delegate has not answered yet).  Dropping the pending entry keeps a
        # late complete_subscribe from resurrecting the departed subscriber.
        pending = self._pending_incoming_subscribes.pop(message.request_id, None)
        subscription = self._publisher_subscriptions.pop(message.request_id, None)
        if subscription is not None:
            self._send_control(
                SubscribeDone(
                    request_id=message.request_id,
                    status_code=0,
                    stream_count=subscription.objects_sent,
                    reason="unsubscribed",
                )
            )
        if pending is not None or subscription is not None:
            handler = getattr(self.publisher_delegate, "handle_unsubscribe", None)
            if handler is not None:
                handler(self, message.request_id)

    # Subscriber side of responses ---------------------------------------------
    def _handle_subscribe_ok(self, message: SubscribeOk) -> None:
        subscription = self._subscriptions.get(message.request_id)
        if subscription is None:
            return
        subscription.state = "active"
        subscription.responded_at = self._simulator.now
        subscription.expires_ms = message.expires_ms
        subscription.content_exists = message.content_exists
        if message.content_exists:
            subscription.largest = Location(message.largest_group_id, message.largest_object_id)
        if subscription.on_response is not None:
            subscription.on_response(subscription)

    def _handle_subscribe_error(self, message: SubscribeError) -> None:
        subscription = self._subscriptions.get(message.request_id)
        if subscription is None:
            return
        subscription.state = "error"
        subscription.responded_at = self._simulator.now
        subscription.error_code = message.error_code
        subscription.error_reason = message.reason
        subscription.retry_after_ms = message.retry_after_ms
        # A rejected subscription is as dead as an unsubscribed one: drop it
        # from the routing maps so retry churn cannot accumulate state.
        self._subscriptions.pop(message.request_id, None)
        self._subscriptions_by_alias.pop(subscription.track_alias, None)
        if subscription.on_response is not None:
            subscription.on_response(subscription)

    def _handle_subscribe_done(self, message: SubscribeDone) -> None:
        subscription = self._subscriptions.get(message.request_id)
        if subscription is None:
            return
        subscription.state = "done"

    def _handle_fetch_ok(self, message: FetchOk) -> None:
        fetch_request = self._fetches.get(message.request_id)
        if fetch_request is None:
            return
        fetch_request.ok_received = True
        fetch_request.responded_at = self._simulator.now
        if fetch_request.state == "pending":
            fetch_request.state = "ok"
        if message.largest_group_id or message.largest_object_id:
            fetch_request.largest = Location(message.largest_group_id, message.largest_object_id)
        self._maybe_complete_fetch(fetch_request)

    def _handle_fetch_error(self, message: FetchError) -> None:
        fetch_request = self._fetches.get(message.request_id)
        if fetch_request is None:
            return
        fetch_request.state = "error"
        fetch_request.responded_at = self._simulator.now
        fetch_request.error_code = message.error_code
        fetch_request.error_reason = message.reason
        if fetch_request.on_complete is not None:
            fetch_request.on_complete(fetch_request)
