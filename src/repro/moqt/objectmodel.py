"""The MoQT object model: tracks contain groups, groups contain objects.

Objects are the unit of delivery.  Within a track an object is addressed by
``(group_id, object_id)``; MoQT requires that two objects with the same
group and object ID in the same track have identical payloads — the property
the paper relies on so that all subscribers of a DNS track observe identical
record versions (§4.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property


class ObjectStatus(enum.IntEnum):
    """Object status codes (draft-12 §9.4.2)."""

    NORMAL = 0x0
    DOES_NOT_EXIST = 0x1
    END_OF_GROUP = 0x3
    END_OF_TRACK = 0x4


@dataclass(frozen=True, order=True)
class Location:
    """A position in a track: group ID plus object ID."""

    group_id: int
    object_id: int

    def next_group(self) -> "Location":
        """The first object of the following group."""
        return Location(self.group_id + 1, 0)


@dataclass(frozen=True)
class MoqtObject:
    """A single object: addressing metadata plus an opaque payload."""

    group_id: int
    object_id: int
    payload: bytes
    subgroup_id: int = 0
    publisher_priority: int = 128
    status: ObjectStatus = ObjectStatus.NORMAL
    extensions: bytes = b""

    @cached_property
    def location(self) -> Location:
        """The object's location within its track (cached: the delivery and
        dedupe paths read it several times per hop, and a fanned-out object
        is handled by thousands of receivers)."""
        return Location(self.group_id, self.object_id)

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)


class TrackState:
    """Publisher-side state of one track: the objects published so far.

    The DNS-over-MoQT authoritative server stores one ``TrackState`` per DNS
    question track.  Objects are retained so FETCH requests for earlier
    versions can be answered; ``largest`` tracks the newest location for
    SUBSCRIBE_OK / FETCH_OK responses.
    """

    def __init__(self, full_track_name: object, max_retained_groups: int | None = 64) -> None:
        self.full_track_name = full_track_name
        self._objects: dict[Location, MoqtObject] = {}
        self._max_retained_groups = max_retained_groups
        self.largest: Location | None = None

    def publish(self, obj: MoqtObject) -> None:
        """Record a newly published object."""
        location = obj.location
        existing = self._objects.get(location)
        if existing is not None and existing.payload != obj.payload:
            raise ValueError(
                f"object {location} republished with different payload; "
                "MoQT requires identical content for identical IDs"
            )
        self._objects[location] = obj
        if self.largest is None or location > self.largest:
            self.largest = location
        self._enforce_retention()

    def _enforce_retention(self) -> None:
        if self._max_retained_groups is None or self.largest is None:
            return
        minimum_group = self.largest.group_id - self._max_retained_groups + 1
        if minimum_group <= 0:
            return
        stale = [location for location in self._objects if location.group_id < minimum_group]
        for location in stale:
            del self._objects[location]

    def get(self, location: Location) -> MoqtObject | None:
        """The object at ``location``, if still retained."""
        return self._objects.get(location)

    def objects_in_range(self, start: Location, end: Location | None = None) -> list[MoqtObject]:
        """Objects between ``start`` (inclusive) and ``end`` (inclusive), ordered."""
        selected = [
            obj
            for location, obj in self._objects.items()
            if location >= start and (end is None or location <= end)
        ]
        return sorted(selected, key=lambda obj: obj.location)

    def latest_objects(self, count: int) -> list[MoqtObject]:
        """The ``count`` most recent objects, oldest first."""
        ordered = sorted(self._objects.values(), key=lambda obj: obj.location)
        return ordered[-count:]

    def __len__(self) -> int:
        return len(self._objects)
