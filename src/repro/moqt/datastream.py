"""Encodings of objects on unidirectional data streams and in datagrams.

MoQT delivers objects either on unidirectional QUIC streams or in QUIC
DATAGRAM frames.  The paper's prototype uses streams exclusively, to avoid
losing record updates to datagram unreliability (§4.1); the datagram
encoding is implemented anyway so the design choice can be ablated.

Two stream flavours exist:

* *subgroup streams* carry live objects for one subscription: a header with
  the track alias, group ID and subgroup ID, followed by objects;
* *fetch streams* carry the objects of one FETCH response: a header with the
  fetch request ID, followed by objects that each repeat their group ID
  because a fetch can span groups.

The object-body encoding is independent of the receiving subscription (only
the stream *header* carries the per-subscriber track alias), which is what
makes encode-once fan-out possible: a relay serialises an object body once
and hands the cached bytes to every downstream
:meth:`~repro.moqt.session.MoqtSession.publish` call via
:func:`encode_subgroup_stream_chunk`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.moqt.errors import ProtocolViolation
from repro.moqt.objectmodel import MoqtObject, ObjectStatus
from repro.quic.varint import VarintError, VarintReader, VarintWriter, append_varint


class DataStreamType(enum.IntEnum):
    """First varint of a unidirectional data stream."""

    SUBGROUP_HEADER = 0x04
    FETCH_HEADER = 0x05


class DatagramType(enum.IntEnum):
    """First varint of an object datagram."""

    OBJECT_DATAGRAM = 0x01


@dataclass(frozen=True)
class SubgroupStreamHeader:
    """Header of a subgroup data stream."""

    track_alias: int
    group_id: int
    subgroup_id: int = 0
    publisher_priority: int = 128

    def encode(self) -> bytes:
        buffer = bytearray()
        append_varint(buffer, DataStreamType.SUBGROUP_HEADER)
        append_varint(buffer, self.track_alias)
        append_varint(buffer, self.group_id)
        append_varint(buffer, self.subgroup_id)
        buffer.append(self.publisher_priority)
        return bytes(buffer)

    @classmethod
    def decode(cls, reader: VarintReader) -> "SubgroupStreamHeader":
        return cls(
            track_alias=reader.read_varint(),
            group_id=reader.read_varint(),
            subgroup_id=reader.read_varint(),
            publisher_priority=reader.read_uint8(),
        )


@dataclass(frozen=True)
class FetchStreamHeader:
    """Header of a fetch data stream."""

    request_id: int

    def encode(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(DataStreamType.FETCH_HEADER)
        writer.write_varint(self.request_id)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: VarintReader) -> "FetchStreamHeader":
        return cls(request_id=reader.read_varint())


def encode_subgroup_object(obj: MoqtObject) -> bytes:
    """Encode one object following a subgroup stream header.

    The result depends only on the object, never on the subscription it is
    sent to — callers fanning one object out to many subscribers should
    encode once and pass the bytes to :func:`encode_subgroup_stream_chunk`.
    """
    buffer = bytearray()
    append_varint(buffer, obj.object_id)
    extensions = obj.extensions
    append_varint(buffer, len(extensions))
    buffer += extensions
    payload = obj.payload
    append_varint(buffer, len(payload))
    buffer += payload
    append_varint(buffer, int(obj.status))
    return bytes(buffer)


def encode_subgroup_stream_chunk(
    track_alias: int, obj: MoqtObject, body: bytes | None = None
) -> bytes:
    """Header plus object body for a one-object subgroup stream.

    ``body`` is the cached :func:`encode_subgroup_object` encoding when the
    caller already has it (encode-once fan-out); only the small header is
    serialised per subscriber.
    """
    buffer = bytearray()
    append_varint(buffer, DataStreamType.SUBGROUP_HEADER)
    append_varint(buffer, track_alias)
    append_varint(buffer, obj.group_id)
    append_varint(buffer, obj.subgroup_id)
    buffer.append(obj.publisher_priority)
    buffer += body if body is not None else encode_subgroup_object(obj)
    return bytes(buffer)


def decode_subgroup_object(reader: VarintReader, header: SubgroupStreamHeader) -> MoqtObject:
    """Decode one object from a subgroup stream."""
    object_id = reader.read_varint()
    extensions = reader.read_length_prefixed()
    payload = reader.read_length_prefixed()
    status = ObjectStatus(reader.read_varint())
    return MoqtObject(
        group_id=header.group_id,
        object_id=object_id,
        payload=payload,
        subgroup_id=header.subgroup_id,
        publisher_priority=header.publisher_priority,
        status=status,
        extensions=extensions,
    )


def encode_fetch_object(obj: MoqtObject) -> bytes:
    """Encode one object following a fetch stream header."""
    buffer = bytearray()
    append_varint(buffer, obj.group_id)
    append_varint(buffer, obj.subgroup_id)
    append_varint(buffer, obj.object_id)
    buffer.append(obj.publisher_priority)
    append_varint(buffer, len(obj.extensions))
    buffer += obj.extensions
    append_varint(buffer, len(obj.payload))
    buffer += obj.payload
    append_varint(buffer, int(obj.status))
    return bytes(buffer)


def decode_fetch_object(reader: VarintReader) -> MoqtObject:
    """Decode one object from a fetch stream."""
    group_id = reader.read_varint()
    subgroup_id = reader.read_varint()
    object_id = reader.read_varint()
    priority = reader.read_uint8()
    extensions = reader.read_length_prefixed()
    payload = reader.read_length_prefixed()
    status = ObjectStatus(reader.read_varint())
    return MoqtObject(
        group_id=group_id,
        object_id=object_id,
        payload=payload,
        subgroup_id=subgroup_id,
        publisher_priority=priority,
        status=status,
        extensions=extensions,
    )


def encode_object_datagram(track_alias: int, obj: MoqtObject, body: bytes | None = None) -> bytes:
    """Encode an object as a single datagram payload.

    ``body`` optionally carries the cached alias-independent suffix from
    :func:`encode_object_datagram_body` for encode-once fan-out.
    """
    buffer = bytearray()
    append_varint(buffer, DatagramType.OBJECT_DATAGRAM)
    append_varint(buffer, track_alias)
    buffer += body if body is not None else encode_object_datagram_body(obj)
    return bytes(buffer)


def encode_object_datagram_body(obj: MoqtObject) -> bytes:
    """The part of an object datagram that does not depend on the alias."""
    buffer = bytearray()
    append_varint(buffer, obj.group_id)
    append_varint(buffer, obj.object_id)
    buffer.append(obj.publisher_priority)
    append_varint(buffer, len(obj.extensions))
    buffer += obj.extensions
    append_varint(buffer, len(obj.payload))
    buffer += obj.payload
    return bytes(buffer)


def decode_object_datagram(data: bytes) -> tuple[int, MoqtObject]:
    """Decode an object datagram; returns ``(track_alias, object)``."""
    reader = VarintReader(data)
    datagram_type = reader.read_varint()
    if datagram_type != DatagramType.OBJECT_DATAGRAM:
        raise ProtocolViolation(f"unexpected datagram type {datagram_type:#x}")
    track_alias = reader.read_varint()
    group_id = reader.read_varint()
    object_id = reader.read_varint()
    priority = reader.read_uint8()
    extensions = reader.read_length_prefixed()
    payload = reader.read_length_prefixed()
    obj = MoqtObject(
        group_id=group_id,
        object_id=object_id,
        payload=payload,
        publisher_priority=priority,
        extensions=extensions,
    )
    return track_alias, obj


#: Memo of completely received one-shot data streams, keyed by wire bytes.
#: A relay fanning one object to N subscribers sends N byte-identical stream
#: payloads (same track alias, same body); each receiving session would
#: otherwise re-parse the same bytes.  Values are immutable (header plus a
#: tuple of frozen objects), so sharing them across sessions is safe.  The
#: cache is a plain dict with epoch eviction: when full it is cleared, which
#: is O(1) amortised and keeps the working set (the last few distinct
#: objects in flight) hot.
_COMPLETE_STREAM_CACHE: dict[
    bytes,
    tuple[SubgroupStreamHeader | FetchStreamHeader | None, tuple[MoqtObject, ...]],
] = {}
_COMPLETE_STREAM_CACHE_MAX = 512


def decode_complete_datastream(
    data: bytes,
) -> tuple[SubgroupStreamHeader | FetchStreamHeader | None, tuple[MoqtObject, ...]]:
    """Decode a data stream that arrived whole (single chunk with FIN).

    Returns ``(header, objects)``; a stream whose header cannot be parsed
    yields ``(None, ())``, and trailing bytes that do not form a complete
    object are dropped — exactly what :class:`DataStreamParser` does when fed
    the same bytes in one call.  Results are memoised on the wire bytes so
    the fan-out receive path decodes each distinct stream payload once per
    process instead of once per subscriber.
    """
    if type(data) is not bytes:
        data = bytes(data)
    cached = _COMPLETE_STREAM_CACHE.get(data)
    if cached is not None:
        return cached
    header: SubgroupStreamHeader | FetchStreamHeader | None = None
    objects: list[MoqtObject] = []
    reader = VarintReader(data)
    try:
        stream_type = reader.read_varint()
        if stream_type == DataStreamType.SUBGROUP_HEADER:
            header = SubgroupStreamHeader.decode(reader)
            while not reader.at_end():
                objects.append(decode_subgroup_object(reader, header))
        elif stream_type == DataStreamType.FETCH_HEADER:
            header = FetchStreamHeader.decode(reader)
            while not reader.at_end():
                objects.append(decode_fetch_object(reader))
        else:
            raise ProtocolViolation(f"unknown data stream type {stream_type:#x}")
    except VarintError:
        pass  # truncated trailing element: keep what parsed completely
    result = (header, tuple(objects))
    cache = _COMPLETE_STREAM_CACHE
    if len(cache) >= _COMPLETE_STREAM_CACHE_MAX:
        cache.clear()
    cache[data] = result
    return result


class DataStreamParser:
    """Incremental parser for one incoming unidirectional data stream.

    Feed it stream chunks; it yields the header once and then complete
    objects as they become available.  Each :meth:`feed` call parses over a
    single snapshot of the buffer and trims consumed bytes once at the end,
    so reassembling a stream of n objects costs O(n), not O(n²).
    """

    __slots__ = ("_buffer", "header", "finished")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.header: SubgroupStreamHeader | FetchStreamHeader | None = None
        self.finished = False

    def feed(self, data: bytes, fin: bool) -> list[MoqtObject]:
        """Add bytes (and possibly the FIN); return completed objects."""
        buffered = bool(self._buffer)
        if buffered:
            self._buffer += data
            # Snapshot: the reader must not hold a view over the bytearray we
            # trim afterwards (resizing an exported buffer raises).
            source = bytes(self._buffer)
        else:
            # Nothing buffered (every chunk so far parsed completely): parse
            # straight from the incoming bytes with no copy — the common case
            # of one complete object per stream delivered in one frame.
            source = data
        if fin:
            self.finished = True
        objects: list[MoqtObject] = []
        reader = VarintReader(source)
        consumed = 0
        try:
            if self.header is None:
                stream_type = reader.read_varint()
                if stream_type == DataStreamType.SUBGROUP_HEADER:
                    self.header = SubgroupStreamHeader.decode(reader)
                elif stream_type == DataStreamType.FETCH_HEADER:
                    self.header = FetchStreamHeader.decode(reader)
                else:
                    raise ProtocolViolation(f"unknown data stream type {stream_type:#x}")
                consumed = reader.offset
            if isinstance(self.header, SubgroupStreamHeader):
                while not reader.at_end():
                    objects.append(decode_subgroup_object(reader, self.header))
                    consumed = reader.offset
            else:
                while not reader.at_end():
                    objects.append(decode_fetch_object(reader))
                    consumed = reader.offset
        except VarintError:
            pass  # not enough bytes for the next element yet
        if buffered:
            if consumed:
                del self._buffer[:consumed]
        elif consumed < len(source):
            self._buffer += memoryview(source)[consumed:]
        return objects
