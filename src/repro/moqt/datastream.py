"""Encodings of objects on unidirectional data streams and in datagrams.

MoQT delivers objects either on unidirectional QUIC streams or in QUIC
DATAGRAM frames.  The paper's prototype uses streams exclusively, to avoid
losing record updates to datagram unreliability (§4.1); the datagram
encoding is implemented anyway so the design choice can be ablated.

Two stream flavours exist:

* *subgroup streams* carry live objects for one subscription: a header with
  the track alias, group ID and subgroup ID, followed by objects;
* *fetch streams* carry the objects of one FETCH response: a header with the
  fetch request ID, followed by objects that each repeat their group ID
  because a fetch can span groups.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.moqt.errors import ProtocolViolation
from repro.moqt.objectmodel import MoqtObject, ObjectStatus
from repro.quic.varint import VarintReader, VarintWriter


class DataStreamType(enum.IntEnum):
    """First varint of a unidirectional data stream."""

    SUBGROUP_HEADER = 0x04
    FETCH_HEADER = 0x05


class DatagramType(enum.IntEnum):
    """First varint of an object datagram."""

    OBJECT_DATAGRAM = 0x01


@dataclass(frozen=True)
class SubgroupStreamHeader:
    """Header of a subgroup data stream."""

    track_alias: int
    group_id: int
    subgroup_id: int = 0
    publisher_priority: int = 128

    def encode(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(DataStreamType.SUBGROUP_HEADER)
        writer.write_varint(self.track_alias)
        writer.write_varint(self.group_id)
        writer.write_varint(self.subgroup_id)
        writer.write_uint8(self.publisher_priority)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: VarintReader) -> "SubgroupStreamHeader":
        return cls(
            track_alias=reader.read_varint(),
            group_id=reader.read_varint(),
            subgroup_id=reader.read_varint(),
            publisher_priority=reader.read_uint8(),
        )


@dataclass(frozen=True)
class FetchStreamHeader:
    """Header of a fetch data stream."""

    request_id: int

    def encode(self) -> bytes:
        writer = VarintWriter()
        writer.write_varint(DataStreamType.FETCH_HEADER)
        writer.write_varint(self.request_id)
        return writer.getvalue()

    @classmethod
    def decode(cls, reader: VarintReader) -> "FetchStreamHeader":
        return cls(request_id=reader.read_varint())


def encode_subgroup_object(obj: MoqtObject) -> bytes:
    """Encode one object following a subgroup stream header."""
    writer = VarintWriter()
    writer.write_varint(obj.object_id)
    writer.write_length_prefixed(obj.extensions)
    writer.write_length_prefixed(obj.payload)
    writer.write_varint(int(obj.status))
    return writer.getvalue()


def decode_subgroup_object(reader: VarintReader, header: SubgroupStreamHeader) -> MoqtObject:
    """Decode one object from a subgroup stream."""
    object_id = reader.read_varint()
    extensions = reader.read_length_prefixed()
    payload = reader.read_length_prefixed()
    status = ObjectStatus(reader.read_varint())
    return MoqtObject(
        group_id=header.group_id,
        object_id=object_id,
        payload=payload,
        subgroup_id=header.subgroup_id,
        publisher_priority=header.publisher_priority,
        status=status,
        extensions=extensions,
    )


def encode_fetch_object(obj: MoqtObject) -> bytes:
    """Encode one object following a fetch stream header."""
    writer = VarintWriter()
    writer.write_varint(obj.group_id)
    writer.write_varint(obj.subgroup_id)
    writer.write_varint(obj.object_id)
    writer.write_uint8(obj.publisher_priority)
    writer.write_length_prefixed(obj.extensions)
    writer.write_length_prefixed(obj.payload)
    writer.write_varint(int(obj.status))
    return writer.getvalue()


def decode_fetch_object(reader: VarintReader) -> MoqtObject:
    """Decode one object from a fetch stream."""
    group_id = reader.read_varint()
    subgroup_id = reader.read_varint()
    object_id = reader.read_varint()
    priority = reader.read_uint8()
    extensions = reader.read_length_prefixed()
    payload = reader.read_length_prefixed()
    status = ObjectStatus(reader.read_varint())
    return MoqtObject(
        group_id=group_id,
        object_id=object_id,
        payload=payload,
        subgroup_id=subgroup_id,
        publisher_priority=priority,
        status=status,
        extensions=extensions,
    )


def encode_object_datagram(track_alias: int, obj: MoqtObject) -> bytes:
    """Encode an object as a single datagram payload."""
    writer = VarintWriter()
    writer.write_varint(DatagramType.OBJECT_DATAGRAM)
    writer.write_varint(track_alias)
    writer.write_varint(obj.group_id)
    writer.write_varint(obj.object_id)
    writer.write_uint8(obj.publisher_priority)
    writer.write_length_prefixed(obj.extensions)
    writer.write_length_prefixed(obj.payload)
    return writer.getvalue()


def decode_object_datagram(data: bytes) -> tuple[int, MoqtObject]:
    """Decode an object datagram; returns ``(track_alias, object)``."""
    reader = VarintReader(data)
    datagram_type = reader.read_varint()
    if datagram_type != DatagramType.OBJECT_DATAGRAM:
        raise ProtocolViolation(f"unexpected datagram type {datagram_type:#x}")
    track_alias = reader.read_varint()
    group_id = reader.read_varint()
    object_id = reader.read_varint()
    priority = reader.read_uint8()
    extensions = reader.read_length_prefixed()
    payload = reader.read_length_prefixed()
    obj = MoqtObject(
        group_id=group_id,
        object_id=object_id,
        payload=payload,
        publisher_priority=priority,
        extensions=extensions,
    )
    return track_alias, obj


class DataStreamParser:
    """Incremental parser for one incoming unidirectional data stream.

    Feed it stream chunks; it yields the header once and then complete
    objects as they become available.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.header: SubgroupStreamHeader | FetchStreamHeader | None = None
        self.finished = False

    def feed(self, data: bytes, fin: bool) -> list[MoqtObject]:
        """Add bytes (and possibly the FIN); return completed objects."""
        self._buffer += data
        if fin:
            self.finished = True
        objects: list[MoqtObject] = []
        while True:
            reader = VarintReader(bytes(self._buffer))
            try:
                if self.header is None:
                    stream_type = reader.read_varint()
                    if stream_type == DataStreamType.SUBGROUP_HEADER:
                        self.header = SubgroupStreamHeader.decode(reader)
                    elif stream_type == DataStreamType.FETCH_HEADER:
                        self.header = FetchStreamHeader.decode(reader)
                    else:
                        raise ProtocolViolation(f"unknown data stream type {stream_type:#x}")
                    del self._buffer[: reader.offset]
                    continue
                if isinstance(self.header, SubgroupStreamHeader):
                    obj = decode_subgroup_object(reader, self.header)
                else:
                    obj = decode_fetch_object(reader)
                del self._buffer[: reader.offset]
                objects.append(obj)
            except ProtocolViolation:
                raise
            except Exception:
                # Not enough bytes for the next element yet.
                break
            if not self._buffer:
                break
        return objects
