"""Exporters: Prometheus text exposition, JSONL dumps, summary tables.

Three output shapes for the same telemetry:

* :func:`render_prometheus` — the standard text exposition format, so a
  run's final state can be diffed, scraped or loaded into any Prometheus
  tooling;
* :func:`write_spans_jsonl` / :func:`spans_to_records` — one JSON object
  per traced span (push, hops, deliveries, per-delivery tier segments), the
  flight-recorder dump CI uploads as an artifact;
* :func:`render_metrics_table` / :func:`render_tier_breakdown` — human
  tables through the same :func:`repro.experiments.report.format_table`
  renderer every experiment already uses (imported lazily: the experiments
  package sits above netsim, which imports :mod:`repro.telemetry`).
"""

from __future__ import annotations

import json
from typing import IO

from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.spans import SpanTracer


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for child in metric.children():
            labels = _label_suffix(child.label_names, child.label_values)
            if isinstance(child, Histogram):
                for bound, count in child.bucket_counts():
                    le = _label_suffix(
                        child.label_names,
                        child.label_values,
                        f'le="{_format_value(bound)}"',
                    )
                    lines.append(f"{child.name}_bucket{le} {count}")
                lines.append(f"{child.name}_sum{labels} {_format_value(child.sum)}")
                lines.append(f"{child.name}_count{labels} {child.count}")
            else:
                lines.append(f"{child.name}{labels} {_format_value(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, path) -> None:
    """Write the text exposition to ``path``."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(render_prometheus(registry))


# ------------------------------------------------------------------ JSON(L)
def spans_to_records(tracer: SpanTracer) -> list[dict[str, object]]:
    """One JSON-friendly record per traced span."""
    records: list[dict[str, object]] = []
    for span in tracer.spans():
        records.append(
            {
                "location": [span.location.group_id, span.location.object_id],
                "push_time": span.push_time,
                "hops": [
                    {"host": host, "tier": tier, "upstream": upstream, "time": time}
                    for host, (tier, upstream, time) in span.hops.items()
                ],
                "deliveries": [
                    {"leaf": leaf, "subscriber": index, "time": time}
                    for leaf, index, time in span.deliveries
                ],
            }
        )
    return records


def write_spans_jsonl(tracer: SpanTracer, path) -> int:
    """Dump every span as one JSON line; returns the number of lines."""
    records = spans_to_records(tracer)
    with open(path, "w", encoding="utf-8") as stream:
        _write_jsonl(stream, records)
    return len(records)


def _write_jsonl(stream: IO[str], records: list[dict[str, object]]) -> None:
    for record in records:
        stream.write(json.dumps(record, separators=(",", ":")))
        stream.write("\n")


def write_metrics_snapshot(
    registry: MetricsRegistry, path, spans: SpanTracer | None = None
) -> dict[str, object]:
    """Write a combined JSON snapshot (metrics + optional span summary)."""
    snapshot: dict[str, object] = {"metrics": registry.snapshot()}
    if spans is not None:
        snapshot["spans"] = spans.summary()
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(snapshot, stream, indent=2, sort_keys=True)
        stream.write("\n")
    return snapshot


# ------------------------------------------------------------------- tables
def render_metrics_table(registry: MetricsRegistry) -> str:
    """Every instrument as a name/labels/value table (histograms summarised)."""
    from repro.experiments.report import format_table  # lazy: avoids import cycle

    rows: list[dict[str, object]] = []
    for metric in registry.collect():
        for child in metric.children():
            labels = ",".join(
                f"{name}={value}"
                for name, value in zip(child.label_names, child.label_values)
            )
            if isinstance(child, Histogram):
                summary = child.summary()
                value = (
                    f"count={int(summary['count'])} "
                    f"p50={summary['p50']:.6g} p99={summary['p99']:.6g}"
                )
            else:
                value = _format_value(child.value)
            rows.append(
                {"metric": child.name, "labels": labels, "type": child.kind, "value": value}
            )
    if not rows:
        return "(no metrics recorded)"
    return format_table(rows, ["metric", "labels", "type", "value"])


def render_tier_breakdown(tracer: SpanTracer) -> str:
    """The per-tier latency breakdown as a report table."""
    from repro.experiments.report import format_table  # lazy: avoids import cycle

    rows = tracer.tier_breakdown()
    if not any(row["count"] for row in rows):
        return "(no sampled deliveries)"
    formatted = [
        {
            "tier": row["tier"],
            "count": row["count"],
            "p50_ms": f"{row['p50_ms']:.3f}",
            "p99_ms": f"{row['p99_ms']:.3f}",
            "mean_ms": f"{row['mean_ms']:.3f}",
            "max_ms": f"{row['max_ms']:.3f}",
        }
        for row in rows
    ]
    return format_table(formatted, ["tier", "count", "p50_ms", "p99_ms", "mean_ms", "max_ms"])
