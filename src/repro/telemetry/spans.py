"""Virtual-time span tracing: a sampled flight recorder for fan-out.

A :class:`SpanTracer` follows individual MoQT objects from
``OriginPublisher.push`` through every relay's ``_forward_to_downstream``
to subscriber delivery, all in **virtual (simulated) time**.  Each sampled
object accumulates one :class:`ObjectSpan`: the push timestamp, one hop
record per relay that forwarded it, and one delivery record per sampled
subscriber.  From those, :meth:`SpanTracer.tier_breakdown` reconstructs the
per-tier latency decomposition of every delivery by walking the relay chain
backwards (leaf -> parent -> ... -> origin), so the per-tier segments of any
single delivery *telescope*: they sum exactly to that delivery's end-to-end
latency.

Determinism contract
--------------------
Tracing is purely observational.  The tracer

* never schedules events, draws from the seeded RNG, or touches wire bytes;
* is keyed off the object's ``Location`` and the clock value the call site
  already holds — recording is a dict lookup plus an append;
* samples by ``Location.group_id`` (and subscriber index), which are
  deterministic, so two seeded runs trace identical spans.

Seeded experiment outputs are therefore bit-identical with tracing enabled
or disabled; the telemetry test battery locks this in.

Hot-path cost
-------------
The fan-out fast path only ever pays for tracing when a tracer is actually
installed: call sites read ``network.telemetry.spans`` (None by default) and
skip everything on None.  With a tracer installed, unsampled objects cost
one modulo (push) or one failed dict lookup (hop/delivery).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.telemetry.metrics import _percentile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.moqt.objectmodel import Location


class ObjectSpan:
    """The recorded journey of one object through the tree."""

    __slots__ = ("location", "push_time", "hops", "deliveries")

    def __init__(self, location: "Location", push_time: float) -> None:
        self.location = location
        self.push_time = push_time
        #: host address -> (tier name, upstream host address, forward time).
        #: One entry per relay that forwarded the object; the upstream
        #: pointer is what lets the breakdown walk each delivery's chain.
        self.hops: dict[str, tuple[str, str, float]] = {}
        #: (leaf relay host, subscriber index, delivery time) per sampled
        #: subscriber delivery.
        self.deliveries: list[tuple[str, int, float]] = []

    def segments(self, origin_host: str | None = None) -> Iterator[tuple[tuple[str, ...], float]]:
        """Per-delivery tier segments, each telescoping to end-to-end.

        Yields ``(tier_path, end_to_end)`` implicitly via
        :meth:`delivery_segments`; kept on the span for test introspection.
        """
        for leaf_host, _index, time in self.deliveries:
            result = self.delivery_segments(leaf_host, time)
            if result is not None:
                yield result

    def delivery_segments(
        self, leaf_host: str, delivery_time: float
    ) -> tuple[tuple[str, ...], float] | None:
        """(Used via :meth:`SpanTracer.tier_breakdown`; see there.)"""
        chain = self._chain(leaf_host)
        if chain is None:
            return None
        tiers = tuple(tier for tier, _time in chain)
        return tiers, delivery_time - self.push_time

    def _chain(self, leaf_host: str) -> list[tuple[str, float]] | None:
        """The relay chain for one delivery, origin-side first.

        Returns ``[(tier, forward_time), ...]`` or None when the leaf's hop
        record is missing (the object was forwarded before tracing started,
        or the relay chain crossed a failover boundary mid-object).
        """
        chain: list[tuple[str, float]] = []
        host = leaf_host
        # Bounded walk: a hop's upstream pointer either reaches a host with
        # no hop record (the origin) or would cycle; len(hops)+1 steps is
        # provably enough to detect either.
        for _ in range(len(self.hops) + 1):
            hop = self.hops.get(host)
            if hop is None:
                return chain[::-1] if chain else None
            tier, upstream_host, time = hop
            chain.append((tier, time))
            host = upstream_host
        return None  # cycle (cannot happen in a well-formed tree)


class SpanTracer:
    """Samples object journeys and aggregates per-tier latency breakdowns.

    Parameters
    ----------
    sample_every:
        Trace objects whose ``location.group_id % sample_every == 0``.
        1 traces every object.
    subscriber_sample_every:
        Record deliveries only for subscribers whose index is a multiple of
        this; at 100k subscribers recording every delivery of every sampled
        object would dominate the run.
    max_spans:
        Hard cap on live spans; pushes beyond it are counted in
        :attr:`dropped_spans` instead of recorded (flight-recorder
        semantics: bounded memory no matter how long the run).
    """

    __slots__ = (
        "sample_every",
        "subscriber_sample_every",
        "max_spans",
        "dropped_spans",
        "_spans",
        "promotions",
    )

    #: Mirrors ``TraceRecorder.enabled`` — call sites may check it before
    #: building anything expensive.  A constructed tracer is always on; use
    #: ``telemetry.spans = None`` (the default) to disable tracing.
    enabled = True

    def __init__(
        self,
        sample_every: int = 1,
        subscriber_sample_every: int = 1,
        max_spans: int = 4096,
    ) -> None:
        if sample_every < 1 or subscriber_sample_every < 1:
            raise ValueError("sampling strides must be >= 1")
        self.sample_every = sample_every
        self.subscriber_sample_every = subscriber_sample_every
        self.max_spans = max_spans
        self.dropped_spans = 0
        self._spans: dict["Location", ObjectSpan] = {}
        #: Origin promotions observed this run, in epoch order — the
        #: control-plane-free failover's only trace segment (see
        #: :meth:`record_promotion`).
        self.promotions: list[dict[str, object]] = []

    # -------------------------------------------------------------- recording
    def record_push(self, location: "Location", now: float) -> None:
        """Origin pushed ``location`` at virtual time ``now``.

        Opens the span when the location is sampled; hops and deliveries for
        unsampled locations fall through a single failed dict lookup.
        """
        if location.group_id % self.sample_every:
            return
        if location in self._spans:
            return  # duplicate push (re-publish) keeps the original timeline
        if len(self._spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self._spans[location] = ObjectSpan(location, now)

    def record_hop(
        self,
        location: "Location",
        tier: str,
        host: str,
        upstream_host: str,
        now: float,
    ) -> None:
        """Relay ``host`` (tier ``tier``) forwarded ``location`` at ``now``."""
        span = self._spans.get(location)
        if span is not None and host not in span.hops:
            span.hops[host] = (tier, upstream_host, now)

    def record_delivery(
        self, location: "Location", leaf_host: str, subscriber_index: int, now: float
    ) -> None:
        """Subscriber ``subscriber_index`` (attached below ``leaf_host``)
        received ``location`` at ``now``."""
        if subscriber_index % self.subscriber_sample_every:
            return
        span = self._spans.get(location)
        if span is not None:
            span.deliveries.append((leaf_host, subscriber_index, now))

    def record_promotion(
        self,
        epoch: int,
        old_active: str,
        new_active: str,
        at: float,
        detection_latency: float | None = None,
    ) -> None:
        """An origin promotion ran at virtual time ``at``.

        Unlike pushes/hops/deliveries this is not sampled — promotions are
        rare, epoch-ordered control events, and every one matters for
        reconstructing why a delivery's relay chain changed mid-run.  Purely
        observational, like every recorder on this tracer.
        """
        self.promotions.append(
            {
                "epoch": epoch,
                "old_active": old_active,
                "new_active": new_active,
                "at": at,
                "detection_latency": detection_latency,
            }
        )

    def clear(self) -> None:
        """Drop all recorded spans (reuse the tracer across seeded runs)."""
        self._spans.clear()
        self.dropped_spans = 0
        self.promotions.clear()

    # ------------------------------------------------------------- inspection
    @property
    def span_count(self) -> int:
        """Number of live spans."""
        return len(self._spans)

    @property
    def delivery_count(self) -> int:
        """Total sampled deliveries across all spans."""
        return sum(len(span.deliveries) for span in self._spans.values())

    def spans(self) -> list[ObjectSpan]:
        """All recorded spans, in push order."""
        return list(self._spans.values())

    # ------------------------------------------------------------ aggregation
    def delivery_breakdowns(self) -> list[dict[str, object]]:
        """One decomposed record per sampled delivery.

        Each record's ``segments`` map tier name -> seconds spent reaching
        that tier's relay from the tier above (the first tier is measured
        from the origin push, ``subscribers`` from the leaf relay to the
        application callback), and sums exactly to ``end_to_end``.
        Deliveries whose relay chain cannot be reconstructed (pre-tracing
        forwards) are skipped.
        """
        records: list[dict[str, object]] = []
        for span in self._spans.values():
            for leaf_host, index, delivery_time in span.deliveries:
                chain = span._chain(leaf_host)
                if chain is None:
                    continue
                segments: dict[str, float] = {}
                previous = span.push_time
                for tier, time in chain:
                    segments[tier] = segments.get(tier, 0.0) + (time - previous)
                    previous = time
                segments["subscribers"] = delivery_time - previous
                records.append(
                    {
                        "location": (span.location.group_id, span.location.object_id),
                        "subscriber": index,
                        "leaf": leaf_host,
                        "segments": segments,
                        "end_to_end": delivery_time - span.push_time,
                    }
                )
        return records

    def tier_breakdown(self) -> list[dict[str, object]]:
        """Per-tier latency statistics over every sampled delivery.

        Rows carry ``tier`` / ``count`` / ``p50_ms`` / ``p99_ms`` /
        ``mean_ms`` / ``max_ms``, ordered origin-side tier first with a
        final ``end_to_end`` row.  Because each delivery's segments
        telescope, the sum of the per-tier *mean* values equals the mean
        end-to-end latency (and likewise per delivery — the property E11's
        acceptance check asserts).
        """
        by_tier: dict[str, list[float]] = {}
        end_to_end: list[float] = []
        for record in self.delivery_breakdowns():
            for tier, seconds in record["segments"].items():  # type: ignore[union-attr]
                by_tier.setdefault(tier, []).append(seconds)
            end_to_end.append(record["end_to_end"])  # type: ignore[arg-type]
        rows = [self._stats_row(tier, values) for tier, values in by_tier.items()]
        rows.append(self._stats_row("end_to_end", end_to_end))
        return rows

    @staticmethod
    def _stats_row(tier: str, values: list[float]) -> dict[str, object]:
        ordered = sorted(values)
        count = len(ordered)
        return {
            "tier": tier,
            "count": count,
            "p50_ms": _percentile(ordered, 50) * 1000.0,
            "p99_ms": _percentile(ordered, 99) * 1000.0,
            "mean_ms": (sum(ordered) / count * 1000.0) if count else 0.0,
            "max_ms": (ordered[-1] * 1000.0) if ordered else 0.0,
        }

    def summary(self) -> dict[str, object]:
        """A JSON-friendly snapshot: counts plus the tier breakdown."""
        return {
            "spans": self.span_count,
            "deliveries": self.delivery_count,
            "dropped_spans": self.dropped_spans,
            "sample_every": self.sample_every,
            "subscriber_sample_every": self.subscriber_sample_every,
            "tiers": self.tier_breakdown(),
            "promotions": list(self.promotions),
        }
