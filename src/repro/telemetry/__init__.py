"""Unified telemetry: metrics registry, span tracing and exporters.

Every :class:`~repro.netsim.network.Network` owns a :class:`Telemetry`
container.  By default it holds :data:`~repro.telemetry.metrics.NULL_METRICS`
(a no-op registry whose instruments record nothing and allocate nothing) and
no span tracer, so instrumented code runs at full speed with zero
observability cost.  Opting in is one object::

    from repro.telemetry import MetricsRegistry, SpanTracer, Telemetry

    telemetry = Telemetry(metrics=MetricsRegistry(), spans=SpanTracer())
    samples = run_relay_fanout([1000], telemetry=telemetry)

and everything the run recorded is available through
:mod:`repro.telemetry.export` (Prometheus text, JSONL trace dump, summary
tables) and :mod:`repro.telemetry.collect` (scrapers that mirror the
simulator/pool/link/QUIC/relay counters into the registry).

The core modules (:mod:`~repro.telemetry.metrics`,
:mod:`~repro.telemetry.spans`) are stdlib-only so :mod:`repro.netsim` can
depend on them without import cycles; only the exporters reach back into
:mod:`repro.experiments.report`, lazily.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullMetrics,
)
from repro.telemetry.spans import ObjectSpan, SpanTracer

__all__ = [
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NullMetrics",
    "ObjectSpan",
    "SpanTracer",
    "Telemetry",
]


class Telemetry:
    """The per-network telemetry bundle: a metrics registry + span tracer.

    ``metrics`` defaults to the shared no-op registry and ``spans`` to None,
    so a default-constructed bundle is free: hot paths check
    ``telemetry.spans is None`` (one attribute load) and hand counters to a
    registry that drops them without allocating.
    """

    __slots__ = ("metrics", "spans")

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        spans: SpanTracer | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.spans = spans

    @property
    def enabled(self) -> bool:
        """Whether anything at all is being recorded."""
        return self.metrics.enabled or self.spans is not None
