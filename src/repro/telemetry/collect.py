"""Collectors: mirror existing subsystem counters into a metrics registry.

The simulator, datagram pool, links, QUIC connections and relays already
keep their own slotted counters on the hot path (incrementing a plain int
attribute is the cheapest possible instrumentation).  Rather than rewire
those paths through the registry — which would tax every run whether or not
telemetry is on — these collectors *scrape*: called at measurement points
(end of an experiment, end of a benchmark), they copy the live counters into
registry instruments so the exporters see one uniform namespace.

All collectors are no-ops against :data:`~repro.telemetry.metrics.NULL_METRICS`
(`registry.enabled` is False) so callers can invoke them unconditionally.
"""

from __future__ import annotations

from repro.telemetry.metrics import MetricsRegistry


def collect_simulator(metrics: MetricsRegistry, simulator) -> None:
    """Scrape the event-loop counters (heap depth, compactions, clock)."""
    if not metrics.enabled:
        return
    metrics.gauge("sim_virtual_time_seconds", "Simulated clock at scrape time").set(
        simulator.now
    )
    metrics.gauge("sim_events_scheduled", "Events ever scheduled").set(
        simulator.events_scheduled
    )
    metrics.gauge("sim_pending_events", "Live events in the heap (heap depth)").set(
        simulator.pending_events
    )
    metrics.gauge("sim_compactions", "Lazy-deletion heap compactions").set(
        simulator.compactions
    )


def collect_datagram_pool(metrics: MetricsRegistry, pool) -> None:
    """Scrape the datagram/buffer pool allocation and reuse counters."""
    if not metrics.enabled:
        return
    for name, value in pool.counters().items():
        metrics.gauge(f"pool_{name}", "DatagramPool counter (see netsim.packet)").set(
            value
        )


def collect_network(metrics: MetricsRegistry, network) -> None:
    """Scrape a network: link totals, the pool and the simulator."""
    if not metrics.enabled:
        return
    for name, value in network.total_link_statistics().items():
        metrics.gauge(f"net_{name}", "Aggregate over every link direction").set(value)
    metrics.gauge(
        "net_link_batch_fallback_waves",
        "Fan-out waves degraded to per-datagram transmission (should be 0)",
    ).set(getattr(network, "link_batch_fallback_waves", 0))
    collect_datagram_pool(metrics, network.datagram_pool)
    collect_simulator(metrics, network.simulator)
    trace = network.trace
    if trace.enabled:
        for kind in trace.kinds():
            metrics.gauge(
                "trace_events", "Recorded TraceRecorder events", labels=("kind",)
            ).labels(kind).set(trace.count(kind))


_QUIC_STAT_FIELDS = (
    "packets_sent",
    "packets_received",
    "bytes_sent",
    "bytes_received",
    "retransmissions",
    "datagrams_sent",
    "datagrams_received",
    "pings_sent",
    "liveness_transitions",
)

#: Congestion-controller state, exported alongside the statistics counters.
#: ``cwnd_bytes`` / ``bytes_in_flight`` are instantaneous gauges summed over
#: the role's connections; ``congestion_events`` is monotonic.  All three are
#: zero under the default Null controller, so the families exist (and stay
#: dense-vs-aggregate identical) whether or not real congestion control is
#: installed.
_QUIC_CC_FIELDS = (
    "cwnd_bytes",
    "bytes_in_flight",
    "congestion_events",
)

_QUIC_EXPORT_FIELDS = _QUIC_STAT_FIELDS + _QUIC_CC_FIELDS


def _scrape_quic(totals: dict[str, int], connection, scale: int = 1) -> None:
    statistics = connection.statistics
    for field in _QUIC_STAT_FIELDS:
        totals[field] += getattr(statistics, field) * scale
    congestion = connection.congestion
    totals["cwnd_bytes"] += congestion.congestion_window * scale
    totals["bytes_in_flight"] += congestion.bytes_in_flight * scale
    totals["congestion_events"] += congestion.congestion_events * scale


def collect_relay_tree(metrics: MetricsRegistry, tree) -> None:
    """Scrape a relay tree: per-tier relay/link counters, the subscriber
    edge, and QUIC transport totals grouped by connection role.

    ``tree`` is anything with ``tiers`` / ``subscribers`` / ``network``
    (:class:`~repro.relaynet.builder.RelayTree` or the underlying
    :class:`~repro.relaynet.topology.RelayTopology`).

    Aggregate-leaf mode (``tree.aggregates`` non-empty) is transparent
    here: every per-subscriber counter is weighted by the subscriber's
    ``multiplicity``, the leaf tier's ``objects_forwarded`` gauge is
    corrected for the copies the relay *would* have sent to the counted
    members, and relay downstream QUIC totals are scaled per session via
    the representative's connection address — so the exported gauges are
    bit-identical to the dense run's.
    """
    if not metrics.enabled:
        return
    network = tree.network
    # Aggregate-leaf corrections: a representative's live counters stand in
    # for `multiplicity` identical member histories.  The relay-side scale
    # map keys each leaf's downstream session by its peer address (= the
    # representative session's local address).
    leaf_objects_extra = 0
    handshake_deficit = 0
    downstream_scale: dict[object, int] = {}
    for group in getattr(tree, "aggregates", ()):
        representative = group.representative
        if representative is None:
            continue
        extra = representative.multiplicity - 1
        if extra <= 0:
            continue
        leaf_objects_extra += extra * representative.session.statistics.objects_received
        handshake_deficit += group.handshake_byte_deficit
        downstream_scale[representative.session.connection.local_address] = (
            representative.multiplicity
        )
    tier_gauges = {
        name: metrics.gauge(f"relaynet_{name}", help_text, labels=("tier",))
        for name, help_text in (
            ("relays", "Relays ever built in the tier"),
            ("uplink_bytes", "Bytes over the tier's uplinks (fan-out direction)"),
            ("objects_received", "Objects arriving from upstream"),
            ("objects_forwarded", "Object copies sent downstream"),
            ("cache_hits", "FETCHes served from the tier's caches"),
            ("cache_misses", "FETCHes forwarded upstream"),
        )
    }
    quic_totals: dict[str, dict[str, int]] = {
        "relay-uplink": {field: 0 for field in _QUIC_EXPORT_FIELDS},
        "relay-downstream": {field: 0 for field in _QUIC_EXPORT_FIELDS},
        "subscriber": {field: 0 for field in _QUIC_EXPORT_FIELDS},
    }
    recovery_fetches = 0
    recovered_objects = 0
    duplicate_drops = 0
    uplink_failures = 0
    upstream_switches = 0
    admission_rejections = 0
    admission_queue_rejections = 0
    admission_priority_bypasses = 0
    pending_subscribe_high_water = 0
    leaf_tier_index = len(tree.tiers) - 1
    for tier_index, nodes in enumerate(tree.tiers):
        if not nodes:
            continue
        tier = nodes[0].tier_name
        uplink_bytes = 0
        objects_received = 0
        objects_forwarded = 0
        cache_hits = 0
        cache_misses = 0
        for node in nodes:
            if network.has_link(node.upstream_host, node.host.address):
                uplink_bytes += network.link(
                    node.upstream_host, node.host.address
                ).statistics.bytes_sent
            statistics = node.relay.statistics
            objects_received += statistics.objects_received
            objects_forwarded += statistics.objects_forwarded
            cache_hits += statistics.fetches_served_from_cache
            cache_misses += statistics.fetches_forwarded_upstream
            recovery_fetches += statistics.recovery_fetches
            recovered_objects += statistics.recovered_objects
            duplicate_drops += statistics.duplicate_objects_dropped
            uplink_failures += statistics.uplink_failures_detected
            upstream_switches += statistics.upstream_switches
            admission_rejections += statistics.admission_rejections
            admission_queue_rejections += statistics.admission_queue_rejections
            admission_priority_bypasses += statistics.admission_priority_bypasses
            if statistics.pending_subscribe_high_water > pending_subscribe_high_water:
                pending_subscribe_high_water = statistics.pending_subscribe_high_water
            uplink = node.relay.upstream_quic_connection
            if uplink is not None:
                _scrape_quic(quic_totals["relay-uplink"], uplink)
            for session in node.relay.downstream_sessions():
                _scrape_quic(
                    quic_totals["relay-downstream"],
                    session.connection,
                    downstream_scale.get(session.connection.peer_address, 1),
                )
        if tier_index == leaf_tier_index:
            objects_forwarded += leaf_objects_extra
        tier_gauges["relays"].labels(tier).set(len(nodes))
        tier_gauges["uplink_bytes"].labels(tier).set(uplink_bytes)
        tier_gauges["objects_received"].labels(tier).set(objects_received)
        tier_gauges["objects_forwarded"].labels(tier).set(objects_forwarded)
        tier_gauges["cache_hits"].labels(tier).set(cache_hits)
        tier_gauges["cache_misses"].labels(tier).set(cache_misses)
    subscriber_bytes = 0
    subscriber_objects = 0
    subscriber_count = 0
    duplicates = 0
    gap_fetches = 0
    reattaches = 0
    for subscriber in tree.subscribers:
        multiplicity = subscriber.multiplicity
        if network.has_link(subscriber.leaf.host.address, subscriber.host.address):
            link = network.link(subscriber.leaf.host.address, subscriber.host.address)
            subscriber_bytes += link.statistics.bytes_sent * multiplicity + link.extra_bytes
        subscriber_objects += subscriber.objects_delivered * multiplicity
        duplicates += subscriber.duplicates_dropped * multiplicity
        gap_fetches += subscriber.gap_fetches * multiplicity
        reattaches += subscriber.reattach_count * multiplicity
        subscriber_count += multiplicity
        _scrape_quic(
            quic_totals["subscriber"], subscriber.session.connection, multiplicity
        )
    metrics.gauge("relaynet_subscribers", "Subscribers attached to the tree").set(
        subscriber_count
    )
    metrics.gauge(
        "relaynet_subscriber_link_bytes", "Bytes over the subscriber access links"
    ).set(subscriber_bytes)
    metrics.gauge(
        "relaynet_subscriber_objects_delivered",
        "Distinct objects handed to subscriber callbacks",
    ).set(subscriber_objects)
    metrics.gauge(
        "relaynet_duplicates_dropped",
        "Duplicate deliveries suppressed (relays + subscribers)",
    ).set(duplicate_drops + duplicates)
    metrics.gauge("relaynet_recovery_fetches", "Gap FETCHes issued by relays").set(
        recovery_fetches
    )
    metrics.gauge("relaynet_recovered_objects", "Objects recovered via FETCH").set(
        recovered_objects
    )
    metrics.gauge("relaynet_subscriber_gap_fetches", "Gap FETCHes by subscribers").set(
        gap_fetches
    )
    metrics.gauge("relaynet_subscriber_reattaches", "Subscriber leaf re-attachments").set(
        reattaches
    )
    metrics.gauge(
        "relaynet_uplink_failures_detected",
        "Uplink deaths noticed through transport liveness",
    ).set(uplink_failures)
    metrics.gauge("relaynet_upstream_switches", "Relay uplink re-parent operations").set(
        upstream_switches
    )
    metrics.gauge(
        "relaynet_admission_rejections",
        "SUBSCRIBEs rejected by the token-bucket rate limit",
    ).set(admission_rejections)
    metrics.gauge(
        "relaynet_admission_queue_rejections",
        "SUBSCRIBEs rejected because the pending-subscribe queue was full",
    ).set(admission_queue_rejections)
    metrics.gauge(
        "relaynet_admission_priority_bypasses",
        "High-priority SUBSCRIBEs admitted past the policy",
    ).set(admission_priority_bypasses)
    metrics.gauge(
        "relaynet_pending_subscribe_high_water",
        "Largest pending-subscribe queue any relay ever held",
    ).set(pending_subscribe_high_water)
    # The ticket-width deficit is bytes the dense handshakes would have
    # carried beyond the multiplied representatives': sent by the leaf
    # relays, received by the subscribers.
    quic_totals["relay-downstream"]["bytes_sent"] += handshake_deficit
    quic_totals["subscriber"]["bytes_received"] += handshake_deficit
    quic_gauge = {
        field: metrics.gauge(
            f"quic_{field}", "QUIC connection totals by role", labels=("role",)
        )
        for field in _QUIC_EXPORT_FIELDS
    }
    for role, totals in quic_totals.items():
        for field, value in totals.items():
            quic_gauge[field].labels(role).set(value)


def collect_origin_cluster(metrics: MetricsRegistry, cluster) -> None:
    """Scrape a replicated origin: membership, promotion history and the
    origin-role QUIC transport totals.

    ``cluster`` is an :class:`~repro.relaynet.origincluster.OriginCluster`.
    The QUIC totals aggregate every origin's downstream (serving) sessions
    plus the standbys' warm-subscription uplinks under the ``"origin"``
    role, completing the role families :func:`collect_relay_tree` exports.
    """
    if not metrics.enabled:
        return
    metrics.gauge("origin_cluster_size", "Origin instances ever built").set(
        len(cluster.origins)
    )
    metrics.gauge(
        "origin_cluster_alive", "Origins still alive (active + standbys)"
    ).set(sum(1 for origin in cluster.origins if origin.alive))
    metrics.gauge("origin_epoch", "Current promotion epoch (0 = initial active)").set(
        cluster.epoch
    )
    metrics.gauge("origin_promotions", "Promotions the cluster has run").set(
        len(cluster.promotions)
    )
    replayed = sum(promotion.replayed_objects for promotion in cluster.promotions)
    metrics.gauge(
        "origin_replayed_objects",
        "Outage-window objects seeded from the replay ring at promotion",
    ).set(replayed)
    totals = {field: 0 for field in _QUIC_EXPORT_FIELDS}
    for origin in cluster.origins:
        for session in origin.publisher.sessions:
            _scrape_quic(totals, session.connection)
        if origin.uplink_session is not None:
            _scrape_quic(totals, origin.uplink_session.connection)
    quic_gauge = {
        field: metrics.gauge(
            f"quic_{field}", "QUIC connection totals by role", labels=("role",)
        )
        for field in _QUIC_EXPORT_FIELDS
    }
    for field, value in totals.items():
        quic_gauge[field].labels("origin").set(value)


def collect_run(metrics: MetricsRegistry, network, tree=None, origin_cluster=None) -> None:
    """One-call scrape at the end of a run: network (+ pool + simulator)
    and, when given, the relay tree with its QUIC transport totals and the
    replicated origin cluster the tree hangs off."""
    if not metrics.enabled:
        return
    collect_network(metrics, network)
    if tree is not None:
        collect_relay_tree(metrics, tree)
    if origin_cluster is not None:
        collect_origin_cluster(metrics, origin_cluster)
