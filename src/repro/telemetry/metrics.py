"""Metrics registry: counters, gauges and histograms with label sets.

The registry unifies the counters that used to be scattered across ad-hoc
dataclasses (``relaynet/stats.py``, ``netsim/stats.py``, the counters bolted
onto :class:`~repro.netsim.simulator.Simulator` and
:class:`~repro.netsim.packet.DatagramPool`) behind one uniform surface that
exporters (:mod:`repro.telemetry.export`) can walk.

Design constraints, in order:

* **hot-path increments are O(1)** — ``Counter.inc`` is one attribute add,
  ``Gauge.set`` one store, ``Histogram.observe`` one append plus two adds.
  No locking (the simulator is single-threaded), no string formatting, no
  dict lookups: call sites hold the instrument handle, not the name;
* **disabled telemetry costs nothing** — :data:`NULL_METRICS` is the default
  registry everywhere.  Its instruments are three shared, stateless
  singletons whose methods do nothing and allocate nothing, so instrumented
  code never needs an ``if metrics is not None`` guard;
* **labels are cheap after the first use** — ``instrument.labels(...)``
  caches the child per label-value tuple, so steady-state labelled
  increments are one dict hit plus the O(1) update.

Instruments are created (and idempotently re-fetched) through
:class:`MetricsRegistry`; re-registering a name with a different type or
label set is an error so two subsystems cannot silently share a metric that
means different things.
"""

from __future__ import annotations

from typing import Iterator

#: Default histogram bucket upper bounds, in seconds — tuned for the
#: virtual-time latencies the experiments measure (link delays are tens of
#: milliseconds, detection latencies are seconds).
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.010,
    0.025,
    0.050,
    0.100,
    0.250,
    0.500,
    1.0,
    2.5,
    5.0,
    float("inf"),
)


class MetricError(Exception):
    """Raised for invalid metric registration or use."""


def _percentile(ordered: list[float], q: float) -> float:
    """The ``q``-th percentile of an already-sorted sample (linear interp)."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = low + 1
    if high >= len(ordered):
        return ordered[-1]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class Counter:
    """A monotonically increasing counter.

    With ``label_names`` declared, the parent is a family: values live on the
    children returned by :meth:`labels`, and incrementing the parent directly
    is an error (it would silently merge every label set into one number).
    """

    __slots__ = ("name", "help", "label_names", "label_values", "value", "_children")

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        label_values: tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self.label_values = label_values
        self.value: float = 0
        self._children: dict[tuple[str, ...], "Counter"] | None = (
            {} if label_names and not label_values else None
        )

    @property
    def is_family(self) -> bool:
        """Whether this instrument holds children instead of a value."""
        return self._children is not None

    def labels(self, *values: object) -> "Counter":
        """The child instrument for one label-value tuple (cached)."""
        if self._children is None:
            raise MetricError(f"{self.name} does not take labels")
        if len(values) != len(self.label_names):
            raise MetricError(
                f"{self.name} expects labels {self.label_names}, got {len(values)} values"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            child = type(self)(self.name, self.help, self.label_names, key)
            self._children[key] = child
        return child

    def children(self) -> Iterator["Counter"]:
        """All labelled children (or the instrument itself when unlabelled)."""
        if self._children is None:
            yield self
        else:
            yield from self._children.values()

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (one attribute add — the hot path)."""
        if self._children is not None:
            raise MetricError(f"{self.name} is labelled; use .labels(...) first")
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def set(self, value: float) -> None:
        """Set the absolute value — for scraping an external monotonic counter.

        Collectors (:mod:`repro.telemetry.collect`) mirror counters that
        other subsystems already maintain; forcing them through ``inc`` would
        require the collector to remember the previous scrape.
        """
        if self._children is not None:
            raise MetricError(f"{self.name} is labelled; use .labels(...) first")
        self.value = value


class Gauge(Counter):
    """A value that can go up and down (heap depth, RSS, pool size)."""

    __slots__ = ()

    kind = "gauge"

    def inc(self, amount: float = 1) -> None:
        if self._children is not None:
            raise MetricError(f"{self.name} is labelled; use .labels(...) first")
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)


class Histogram:
    """A sampled distribution with exact percentiles.

    Samples are retained (the repository's sample sizes are thousands, not
    millions — span tracing is itself sampled) so ``percentile`` is exact;
    bucket counts for the Prometheus exposition are computed at export time,
    keeping :meth:`observe` at one append plus two adds.
    """

    __slots__ = (
        "name",
        "help",
        "label_names",
        "label_values",
        "buckets",
        "count",
        "sum",
        "samples",
        "_children",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        label_values: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self.label_values = label_values
        self.buckets = buckets
        self.count = 0
        self.sum = 0.0
        self.samples: list[float] = []
        self._children: dict[tuple[str, ...], "Histogram"] | None = (
            {} if label_names and not label_values else None
        )

    @property
    def is_family(self) -> bool:
        """Whether this instrument holds children instead of samples."""
        return self._children is not None

    def labels(self, *values: object) -> "Histogram":
        """The child instrument for one label-value tuple (cached)."""
        if self._children is None:
            raise MetricError(f"{self.name} does not take labels")
        if len(values) != len(self.label_names):
            raise MetricError(
                f"{self.name} expects labels {self.label_names}, got {len(values)} values"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            child = Histogram(self.name, self.help, self.label_names, key, self.buckets)
            self._children[key] = child
        return child

    def children(self) -> Iterator["Histogram"]:
        """All labelled children (or the instrument itself when unlabelled)."""
        if self._children is None:
            yield self
        else:
            yield from self._children.values()

    def observe(self, value: float) -> None:
        """Record one sample."""
        if self._children is not None:
            raise MetricError(f"{self.name} is labelled; use .labels(...) first")
        self.count += 1
        self.sum += value
        self.samples.append(value)

    def percentile(self, q: float) -> float:
        """The exact ``q``-th percentile of the recorded samples."""
        return _percentile(sorted(self.samples), q)

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs for text exposition."""
        ordered = sorted(self.samples)
        counts: list[tuple[float, int]] = []
        index = 0
        for bound in self.buckets:
            while index < len(ordered) and ordered[index] <= bound:
                index += 1
            counts.append((bound, index))
        return counts

    def summary(self) -> dict[str, float]:
        """Count/sum plus the headline percentiles."""
        ordered = sorted(self.samples)
        return {
            "count": float(self.count),
            "sum": self.sum,
            "min": ordered[0] if ordered else 0.0,
            "p50": _percentile(ordered, 50),
            "p99": _percentile(ordered, 99),
            "max": ordered[-1] if ordered else 0.0,
        }


class MetricsRegistry:
    """Creates, caches and enumerates instruments.

    ``counter`` / ``gauge`` / ``histogram`` are idempotent: asking for an
    existing name returns the existing instrument, so call sites never need
    to coordinate who registers first.  A name re-registered with a
    different type or label set raises.
    """

    #: Hot callers may skip building expensive inputs (label tuples,
    #: derived values) when this is False (see :class:`NullMetrics`).
    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, help: str, labels: tuple[str, ...], **kwargs):
        metric = self._metrics.get(name)
        if metric is not None:
            if type(metric) is not cls:
                raise MetricError(
                    f"{name} already registered as {metric.kind}, not {cls.kind}"
                )
            if metric.label_names != tuple(labels):
                raise MetricError(
                    f"{name} already registered with labels {metric.label_names}"
                )
            return metric
        metric = cls(name, help, tuple(labels), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, help, tuple(labels))

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram."""
        return self._get(Histogram, name, help, tuple(labels), buckets=buckets)

    def collect(self) -> list[Counter | Gauge | Histogram]:
        """Every registered instrument, in registration order."""
        return list(self._metrics.values())

    def snapshot(self) -> dict[str, object]:
        """A JSON-friendly view: name -> value / {labels: value} / summary."""
        result: dict[str, object] = {}
        for metric in self._metrics.values():
            if isinstance(metric, Histogram):
                if metric.is_family:
                    result[metric.name] = {
                        ",".join(
                            f"{k}={v}" for k, v in zip(child.label_names, child.label_values)
                        ): child.summary()
                        for child in metric.children()
                    }
                else:
                    result[metric.name] = metric.summary()
            elif metric.is_family:
                result[metric.name] = {
                    ",".join(
                        f"{k}={v}" for k, v in zip(child.label_names, child.label_values)
                    ): child.value
                    for child in metric.children()
                }
            else:
                result[metric.name] = metric.value
        return result


class _NullCounter(Counter):
    """A counter that ignores everything (shared singleton)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("", "")

    def labels(self, *values: object) -> "Counter":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass


class _NullGauge(Gauge):
    """A gauge that ignores everything (shared singleton)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("", "")

    def labels(self, *values: object) -> "Gauge":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    """A histogram that ignores everything (shared singleton)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("", "")

    def labels(self, *values: object) -> "Histogram":
        return self

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op singleton.

    Instrumented code keeps its handles and its ``inc``/``observe`` calls;
    nothing is recorded, nothing is allocated (``labels`` returns the same
    singleton), and :meth:`snapshot` is always empty.  This is the default
    registry on every :class:`~repro.netsim.network.Network`, so telemetry
    is strictly opt-in and the fan-out fast path pays nothing for it.
    """

    enabled = False

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return _NULL_HISTOGRAM

    def collect(self) -> list[Counter | Gauge | Histogram]:
        return []

    def snapshot(self) -> dict[str, object]:
        return {}


#: Process-wide disabled registry — the default wherever telemetry is optional.
NULL_METRICS = NullMetrics()
