"""Mapping DNS questions to MoQT namespaces and track names (Fig. 3).

The paper maps five fields of the DNS request onto the first three elements
of the MoQT track namespace, and the QNAME onto the track name:

* namespace element 1 — one byte packing the 4-bit OPCODE, the RD bit and the
  CD bit;
* namespace element 2 — the 2-byte QTYPE;
* namespace element 3 — the 2-byte QCLASS;
* track name — the QNAME in wire format (without compression).

Because MoQT limits the combined namespace + track name to 4096 bytes, this
leaves 4091 bytes for the QNAME, far above the DNS limit of 255.  Mapping only
these fields (and not, say, the message ID) guarantees that every subscriber
interested in the same question subscribes to the same track, so publishers
and relays can fan out one object to all of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import MappingError
from repro.dns.message import Message, Question
from repro.dns.name import Name
from repro.dns.types import DNSClass, Opcode, RecordType
from repro.moqt.track import FullTrackName, TrackNamespace

#: Bit positions inside the first namespace element.
_RD_BIT = 0x10
_CD_BIT = 0x20
_OPCODE_MASK = 0x0F

#: Limit left for the QNAME once the fixed namespace elements are accounted
#: for (4096 total - 1 - 2 - 2), as stated in §4.3 of the paper.
QNAME_BYTE_BUDGET = 4091


@dataclass(frozen=True)
class DnsQuestionKey:
    """The protocol-relevant identity of a DNS question.

    Two requests with the same key are served by the same MoQT track.
    """

    qname: Name
    qtype: RecordType
    qclass: DNSClass = DNSClass.IN
    opcode: Opcode = Opcode.QUERY
    recursion_desired: bool = True
    checking_disabled: bool = False

    @classmethod
    def from_message(cls, message: Message) -> "DnsQuestionKey":
        """Extract the key from a query message."""
        question = message.question
        return cls(
            qname=question.qname,
            qtype=question.qtype,
            qclass=question.qclass,
            opcode=message.header.opcode,
            recursion_desired=message.header.flags.rd,
            checking_disabled=message.header.flags.cd,
        )

    def to_question(self) -> Question:
        """The DNS question section entry for this key."""
        return Question(self.qname, self.qtype, self.qclass)


def _flags_byte(key: DnsQuestionKey) -> int:
    value = int(key.opcode) & _OPCODE_MASK
    if key.recursion_desired:
        value |= _RD_BIT
    if key.checking_disabled:
        value |= _CD_BIT
    return value


def question_to_track(key: DnsQuestionKey) -> FullTrackName:
    """Map a DNS question to its MoQT full track name (Fig. 3)."""
    qname_wire = key.qname.to_wire()
    if len(qname_wire) > QNAME_BYTE_BUDGET:
        raise MappingError(
            f"QNAME wire form exceeds the track-name budget: "
            f"{len(qname_wire)} > {QNAME_BYTE_BUDGET}"
        )
    namespace = TrackNamespace(
        (
            bytes([_flags_byte(key)]),
            int(key.qtype).to_bytes(2, "big"),
            int(key.qclass).to_bytes(2, "big"),
        )
    )
    return FullTrackName(namespace, qname_wire)


def track_to_question(full_track_name: FullTrackName) -> DnsQuestionKey:
    """Recover the DNS question from a MoQT full track name (inverse of Fig. 3)."""
    elements = full_track_name.namespace.elements
    if len(elements) < 3:
        raise MappingError(f"namespace has {len(elements)} elements, expected at least 3")
    flags_element, qtype_element, qclass_element = elements[0], elements[1], elements[2]
    if len(flags_element) != 1:
        raise MappingError("first namespace element must be a single byte")
    if len(qtype_element) != 2 or len(qclass_element) != 2:
        raise MappingError("QTYPE and QCLASS namespace elements must be two bytes")
    flags = flags_element[0]
    try:
        opcode = Opcode(flags & _OPCODE_MASK)
        qtype = RecordType(int.from_bytes(qtype_element, "big"))
        qclass = DNSClass(int.from_bytes(qclass_element, "big"))
    except ValueError as error:
        raise MappingError(str(error)) from None
    try:
        qname, consumed = Name.from_wire(full_track_name.name, 0)
    except Exception as error:
        raise MappingError(f"track name is not a wire-format QNAME: {error}") from None
    if consumed != len(full_track_name.name):
        raise MappingError("trailing bytes after the QNAME in the track name")
    return DnsQuestionKey(
        qname=qname,
        qtype=qtype,
        qclass=qclass,
        opcode=opcode,
        recursion_desired=bool(flags & _RD_BIT),
        checking_disabled=bool(flags & _CD_BIT),
    )


def track_for_query(message: Message) -> FullTrackName:
    """Convenience: the track a query message maps to."""
    return question_to_track(DnsQuestionKey.from_message(message))
