"""A standalone MoQT stub resolver.

The paper's prototype did not yet include a native MoQT stub resolver — it
used the forwarder on the client device for backwards compatibility (§5).
This module implements that missing piece as an extension: an application-
facing resolver that speaks MoQT directly to a recursive resolver, keeps its
subscriptions warm, and exposes convenience calls
(:meth:`MoqStubResolver.gethostbyname`, :meth:`MoqStubResolver.resolve_https`)
that applications — e.g. a browser wanting to skip lookup latency entirely
(§5.2) — can use.

It reuses the forwarder's subscription and session machinery but never binds
a UDP listener.
"""

from __future__ import annotations

from typing import Callable

from repro.core.forwarder import ForwarderConfig, MoqForwarder
from repro.core.mapping import DnsQuestionKey
from repro.core.session_manager import SessionManagerConfig
from repro.core.subscription import TeardownPolicy
from repro.dns.message import Message
from repro.dns.name import Name
from repro.dns.types import Rcode, RecordType
from repro.moqt.session import MoqtSessionConfig
from repro.netsim.node import Host
from repro.netsim.packet import Address


class MoqStubResolver(MoqForwarder):
    """An application-level stub resolver speaking DNS over MoQT.

    Unlike :class:`~repro.core.forwarder.MoqForwarder`, no classic DNS
    listener is created; applications call :meth:`resolve`,
    :meth:`gethostbyname` or :meth:`resolve_https` directly and profit from
    pushed updates for every name they have looked up before.
    """

    def __init__(
        self,
        host: Host,
        recursive_moqt_address: Address,
        upstream_timeout: float = 3.0,
        session_manager: SessionManagerConfig | None = None,
        moqt_session: MoqtSessionConfig | None = None,
        teardown_policy: TeardownPolicy | None = None,
    ) -> None:
        config = ForwarderConfig(
            listen_port=None,
            upstream_timeout=upstream_timeout,
            session_manager=session_manager or SessionManagerConfig(),
            moqt_session=moqt_session or MoqtSessionConfig(),
        )
        super().__init__(host, recursive_moqt_address, config, teardown_policy)

    # ------------------------------------------------------------ convenience
    def gethostbyname(
        self, name: Name | str, callback: Callable[[list[str]], None]
    ) -> None:
        """Resolve A records and hand the address strings to ``callback``.

        An empty list is delivered for negative answers or failures, mirroring
        a failed ``getaddrinfo`` call.
        """
        self._resolve_addresses(name, RecordType.A, callback)

    def gethostbyname6(
        self, name: Name | str, callback: Callable[[list[str]], None]
    ) -> None:
        """Resolve AAAA records and hand the address strings to ``callback``."""
        self._resolve_addresses(name, RecordType.AAAA, callback)

    def _resolve_addresses(
        self,
        name: Name | str,
        rdtype: RecordType,
        callback: Callable[[list[str]], None],
    ) -> None:
        key = DnsQuestionKey(
            qname=name if isinstance(name, Name) else Name.from_text(name), qtype=rdtype
        )

        def finished(message: Message | None, version: int) -> None:
            if message is None or message.rcode != Rcode.NOERROR:
                callback([])
                return
            callback(
                [record.rdata.to_text() for record in message.answers if record.rdtype == rdtype]
            )

        self.resolve(key, finished)

    def resolve_https(
        self, name: Name | str, callback: Callable[[list[str]], None]
    ) -> None:
        """Resolve the HTTPS record and deliver the advertised ALPN list.

        Browsers use this to learn HTTP/3 support before connecting; with a
        subscription in place the answer is always current and local.
        """
        key = DnsQuestionKey(
            qname=name if isinstance(name, Name) else Name.from_text(name),
            qtype=RecordType.HTTPS,
        )

        def finished(message: Message | None, version: int) -> None:
            if message is None or not message.answers:
                callback([])
                return
            alpns: list[str] = []
            for record in message.answers:
                if record.rdtype == RecordType.HTTPS:
                    alpns.extend(record.rdata.alpns())  # type: ignore[attr-defined]
            callback(alpns)

        self.resolve(key, finished)

    def is_subscribed(self, name: Name | str, rdtype: RecordType = RecordType.A) -> bool:
        """Whether the resolver already holds (and keeps fresh) this question."""
        key = DnsQuestionKey(
            qname=name if isinstance(name, Name) else Name.from_text(name), qtype=rdtype
        )
        return self.record(key) is not None
