"""The DNS-over-MoQT authoritative nameserver.

The server exposes one or more zones over MoQT (§4.1/§4.2 of the paper):

* A resolver subscribes to the track derived from its DNS question (Fig. 3)
  and issues a joining fetch with offset 1; the server answers the fetch with
  the current answer for that question, encapsulated per Fig. 4 with the
  group ID set to the zone's version number.
* Whenever the zone changes, the version number (the SOA serial) increases
  and the server regenerates the answer of every subscribed track.  Tracks
  whose answer actually changed get a new object pushed to all their
  subscribers with the new version as the group ID.

The same host can also run a classic :class:`repro.dns.server.AuthoritativeServer`
next to this one to support the incremental-deployment story of §4.5; the
topology helpers in :mod:`repro.experiments` do exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.encapsulation import encapsulate_response
from repro.core.mapping import DnsQuestionKey, question_to_track, track_to_question
from repro.core.errors import MappingError
from repro.dns.message import Flags, Header, Message, Question
from repro.dns.name import Name
from repro.dns.types import MOQT_PORT, Opcode, Rcode, RecordType
from repro.dns.zone import LookupResult, Zone, ZoneChange
from repro.moqt.errors import FetchErrorCode, SubscribeErrorCode
from repro.moqt.messages import Fetch, Subscribe
from repro.moqt.objectmodel import Location, MoqtObject
from repro.moqt.session import (
    FetchResult,
    MoqtSession,
    MoqtSessionConfig,
    SubscribeResult,
)
from repro.moqt.track import FullTrackName
from repro.netsim.node import Host
from repro.netsim.packet import Address
from repro.quic.connection import QuicConnection
from repro.quic.endpoint import QuicEndpoint
from repro.quic.tls import ServerTlsContext

MOQT_ALPN = "moq-00"


@dataclass
class _TrackSubscribers:
    """Server-side bookkeeping for one subscribed DNS track."""

    key: DnsQuestionKey
    subscribers: list[tuple[MoqtSession, int]] = field(default_factory=list)
    last_published_version: int | None = None
    last_answer_fingerprint: tuple[str, ...] | None = None


@dataclass
class AuthServerStatistics:
    """Counters kept by the MoQT authoritative server."""

    sessions_accepted: int = 0
    subscribes_accepted: int = 0
    subscribes_rejected: int = 0
    fetches_served: int = 0
    fetches_rejected: int = 0
    updates_published: int = 0
    update_bytes_published: int = 0
    zone_changes_seen: int = 0


class MoqAuthoritativeServer:
    """Serves DNS zones over MoQT with push updates.

    Parameters
    ----------
    host:
        The simulated host to run on.
    zones:
        Zones to serve; each zone's SOA serial is used as the MoQT group ID
        for updates to records in that zone.
    port:
        QUIC/MoQT port (4443 by default).
    """

    def __init__(
        self,
        host: Host,
        zones: list[Zone] | None = None,
        port: int = MOQT_PORT,
        session_config: MoqtSessionConfig | None = None,
    ) -> None:
        self.host = host
        self.simulator = host.simulator
        self.session_config = session_config if session_config is not None else MoqtSessionConfig()
        self.statistics = AuthServerStatistics()
        self._zones: dict[Name, Zone] = {}
        self._tracks: dict[DnsQuestionKey, _TrackSubscribers] = {}
        self._sessions: list[MoqtSession] = []
        self.endpoint = QuicEndpoint(
            host,
            port=port,
            server_tls=ServerTlsContext(alpn_protocols=(MOQT_ALPN,)),
            on_connection=self._on_connection,
        )
        for zone in zones or []:
            self.add_zone(zone)

    @property
    def address(self) -> Address:
        """The MoQT address resolvers connect to."""
        return self.endpoint.address

    # -------------------------------------------------------------------- zones
    def add_zone(self, zone: Zone) -> None:
        """Serve a zone and react to its future changes."""
        self._zones[zone.origin] = zone
        zone.subscribe_changes(self._on_zone_change)

    def zone_for(self, qname: Name) -> Zone | None:
        """The most specific zone containing ``qname``."""
        best: Zone | None = None
        for origin, zone in self._zones.items():
            if qname.is_subdomain_of(origin) and (best is None or len(origin) > len(best.origin)):
                best = zone
        return best

    def zones(self) -> list[Zone]:
        """All zones served."""
        return list(self._zones.values())

    # ----------------------------------------------------------------- sessions
    def _on_connection(self, connection: QuicConnection) -> None:
        session = MoqtSession(
            connection,
            is_client=False,
            config=self.session_config,
            publisher_delegate=_AuthDelegate(self),
        )
        self._sessions.append(session)
        self.statistics.sessions_accepted += 1

    def sessions(self) -> list[MoqtSession]:
        """All MoQT sessions accepted so far."""
        return list(self._sessions)

    def subscriber_count(self) -> int:
        """Total number of live downstream subscriptions across all tracks."""
        return sum(len(track.subscribers) for track in self._tracks.values())

    # ------------------------------------------------------------ DNS answering
    def answer_question(self, key: DnsQuestionKey) -> tuple[Message, Zone] | None:
        """Build the authoritative response for a question key.

        Returns ``None`` when no served zone covers the name.
        """
        zone = self.zone_for(key.qname)
        if zone is None:
            return None
        result = zone.lookup(key.qname, key.qtype)
        response = self._result_to_message(key, result)
        return response, zone

    def _result_to_message(self, key: DnsQuestionKey, result: LookupResult) -> Message:
        flags = Flags(qr=True, aa=not result.is_referral, rd=key.recursion_desired,
                      cd=key.checking_disabled)
        header = Header(message_id=0, flags=flags, opcode=key.opcode, rcode=result.rcode)
        return Message(
            header=header,
            questions=[key.to_question()],
            answers=list(result.answers),
            authorities=list(result.authorities),
            additionals=list(result.additionals),
        )

    @staticmethod
    def _fingerprint(message: Message) -> tuple[str, ...]:
        """A content fingerprint of a response, ignoring the version/serial.

        SOA records are excluded because bumping the serial alone must not
        count as a record change (the paper pushes updates only for changed
        answers).
        """
        lines = [
            record.to_text()
            for record in message.records()
            if record.rdtype != RecordType.SOA
        ]
        lines.append(f"rcode={int(message.rcode)}")
        return tuple(sorted(lines))

    # ------------------------------------------------------------- subscriptions
    def _track_state(self, key: DnsQuestionKey) -> _TrackSubscribers:
        state = self._tracks.get(key)
        if state is None:
            state = _TrackSubscribers(key=key)
            self._tracks[key] = state
        return state

    def handle_subscribe(self, session: MoqtSession, message: Subscribe) -> SubscribeResult:
        """Accept subscriptions for questions inside the served zones."""
        try:
            key = track_to_question(message.full_track_name)
        except MappingError as error:
            self.statistics.subscribes_rejected += 1
            return SubscribeResult(
                ok=False, error_code=SubscribeErrorCode.TRACK_DOES_NOT_EXIST, reason=str(error)
            )
        answer = self.answer_question(key)
        if answer is None:
            self.statistics.subscribes_rejected += 1
            return SubscribeResult(
                ok=False,
                error_code=SubscribeErrorCode.TRACK_DOES_NOT_EXIST,
                reason=f"not authoritative for {key.qname}",
            )
        response, zone = answer
        state = self._track_state(key)
        state.subscribers.append((session, message.request_id))
        if state.last_answer_fingerprint is None:
            state.last_answer_fingerprint = self._fingerprint(response)
            state.last_published_version = zone.serial
        self.statistics.subscribes_accepted += 1
        return SubscribeResult(ok=True, largest=Location(zone.serial, 0))

    def handle_fetch(
        self, session: MoqtSession, message: Fetch, full_track_name: FullTrackName | None
    ) -> FetchResult:
        """Answer a (joining) fetch with the current version of the record."""
        if full_track_name is None:
            self.statistics.fetches_rejected += 1
            return FetchResult(
                ok=False,
                error_code=FetchErrorCode.TRACK_DOES_NOT_EXIST,
                reason="fetch without a track name",
            )
        try:
            key = track_to_question(full_track_name)
        except MappingError as error:
            self.statistics.fetches_rejected += 1
            return FetchResult(
                ok=False, error_code=FetchErrorCode.TRACK_DOES_NOT_EXIST, reason=str(error)
            )
        answer = self.answer_question(key)
        if answer is None:
            self.statistics.fetches_rejected += 1
            return FetchResult(
                ok=False,
                error_code=FetchErrorCode.TRACK_DOES_NOT_EXIST,
                reason=f"not authoritative for {key.qname}",
            )
        response, zone = answer
        obj = encapsulate_response(response, zone.serial)
        self.statistics.fetches_served += 1
        return FetchResult(ok=True, objects=[obj], largest=obj.location)

    # ------------------------------------------------------------ push updates
    def _on_zone_change(self, change: ZoneChange) -> None:
        """React to a zone mutation: push new objects for affected tracks."""
        self.statistics.zone_changes_seen += 1
        for state in self._tracks.values():
            if not state.subscribers:
                continue
            answer = self.answer_question(state.key)
            if answer is None:
                continue
            response, zone = answer
            if not state.key.qname.is_subdomain_of(zone.origin):
                continue
            fingerprint = self._fingerprint(response)
            if fingerprint == state.last_answer_fingerprint:
                continue
            state.last_answer_fingerprint = fingerprint
            state.last_published_version = zone.serial
            self._publish_update(state, response, zone.serial)

    def _publish_update(
        self, state: _TrackSubscribers, response: Message, version: int
    ) -> None:
        obj = encapsulate_response(response, version)
        live: list[tuple[MoqtSession, int]] = []
        for session, request_id in state.subscribers:
            if session.closed:
                continue
            publisher_subscription = session.publisher_subscription(request_id)
            if publisher_subscription is None:
                continue
            session.publish(publisher_subscription, obj)
            self.statistics.updates_published += 1
            self.statistics.update_bytes_published += obj.size
            live.append((session, request_id))
        state.subscribers = live

    def force_publish(self, key: DnsQuestionKey) -> int:
        """Re-publish the current answer for a track regardless of changes.

        Returns the number of subscribers the object was pushed to.  Used by
        tests and by the periodic-refresh compatibility mode.
        """
        state = self._tracks.get(key)
        if state is None or not state.subscribers:
            return 0
        answer = self.answer_question(key)
        if answer is None:
            return 0
        response, zone = answer
        state.last_answer_fingerprint = self._fingerprint(response)
        count = len(state.subscribers)
        self._publish_update(state, response, zone.serial)
        return count


class _AuthDelegate:
    """Adapter exposing the server's publisher logic to each MoQT session."""

    def __init__(self, server: MoqAuthoritativeServer) -> None:
        self._server = server

    def handle_subscribe(self, session: MoqtSession, message: Subscribe) -> SubscribeResult:
        return self._server.handle_subscribe(session, message)

    def handle_fetch(
        self, session: MoqtSession, message: Fetch, full_track_name: FullTrackName | None
    ) -> FetchResult:
        return self._server.handle_fetch(session, message, full_track_name)
