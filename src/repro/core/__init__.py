"""DNS over MoQT — the paper's primary contribution.

This package maps the DNS onto Media over QUIC Transport and implements the
three roles of the prototype described in §5 of the paper:

* :class:`~repro.core.auth_server.MoqAuthoritativeServer` — an authoritative
  nameserver that accepts subscriptions for DNS question tracks, answers
  joining fetches with the current record version, and pushes a new MoQT
  object (group ID = zone version number) to every subscriber whenever a
  record changes (§4.2);
* :class:`~repro.core.recursive.MoqRecursiveResolver` — a recursive resolver
  that resolves names by subscribing and fetching along the delegation chain
  (Fig. 2), keeps its cache up to date from pushed objects, serves stub
  resolvers over MoQT or classic DNS, and falls back to classic DNS for
  authoritative servers that do not support MoQT (§4.5);
* :class:`~repro.core.forwarder.MoqForwarder` — a forwarder that accepts
  classic DNS queries (e.g. from an unmodified OS stub resolver on the same
  host) and forwards them over MoQT to a recursive resolver.

Supporting modules implement the query↔track mapping of Fig. 3
(:mod:`repro.core.mapping`), the response encapsulation of Fig. 4
(:mod:`repro.core.encapsulation`), upstream session reuse and 0-RTT
(:mod:`repro.core.session_manager`), subscription state management and
teardown policies (§4.4, :mod:`repro.core.subscription`) and the
compatibility fallbacks (§4.5, :mod:`repro.core.compatibility`).
"""

from repro.core.mapping import DnsQuestionKey, question_to_track, track_to_question
from repro.core.encapsulation import encapsulate_response, decapsulate_response
from repro.core.auth_server import MoqAuthoritativeServer
from repro.core.recursive import MoqRecursiveResolver
from repro.core.forwarder import MoqForwarder
from repro.core.stub import MoqStubResolver
from repro.core.session_manager import UpstreamSessionManager
from repro.core.subscription import (
    SubscriptionRegistry,
    TeardownPolicy,
    NeverTearDown,
    IdleTimeoutPolicy,
    LruBudgetPolicy,
    AdaptivePolicy,
)
from repro.core.errors import DnsMoqError, MappingError

__all__ = [
    "DnsQuestionKey",
    "question_to_track",
    "track_to_question",
    "encapsulate_response",
    "decapsulate_response",
    "MoqAuthoritativeServer",
    "MoqRecursiveResolver",
    "MoqForwarder",
    "MoqStubResolver",
    "UpstreamSessionManager",
    "SubscriptionRegistry",
    "TeardownPolicy",
    "NeverTearDown",
    "IdleTimeoutPolicy",
    "LruBudgetPolicy",
    "AdaptivePolicy",
    "DnsMoqError",
    "MappingError",
]
