"""Compatibility with the traditional DNS (§4.5).

Incremental deployment requires a recursive resolver to interoperate with
authoritative servers that do not speak MoQT:

* :class:`CapabilityMemo` remembers which upstream hosts support MoQT so the
  happy-eyeballs race is only run the first time a server is contacted;
* :class:`HappyEyeballsConfig` controls the race between the MoQT attempt and
  the classic DNS-over-UDP query;
* :class:`RefreshScheduler` implements the alternative described in the
  paper: instead of declining the downstream subscription, the recursive
  resolver re-requests the record from the non-MoQT authoritative server once
  per TTL and pushes changes to its subscribers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.core.mapping import DnsQuestionKey
from repro.netsim.simulator import PeriodicTask, Simulator


class UpstreamCapability(enum.Enum):
    """What we currently believe about an upstream server's MoQT support."""

    UNKNOWN = "unknown"
    MOQT = "moqt"
    UDP_ONLY = "udp-only"


class CompatibilityMode(enum.Enum):
    """How a resolver handles downstream subscriptions for non-MoQT upstreams."""

    DECLINE_SUBSCRIPTION = "decline"
    PERIODIC_REFRESH = "periodic-refresh"


@dataclass
class HappyEyeballsConfig:
    """Parameters of the MoQT-vs-UDP race (§4.5).

    Attributes
    ----------
    enabled:
        When False, the resolver only attempts MoQT and falls back to UDP
        after ``moqt_timeout``.
    moqt_timeout:
        Seconds after which an unanswered MoQT attempt is abandoned.
    udp_head_start:
        Seconds by which the UDP query is delayed relative to the MoQT
        attempt; 0 races them simultaneously as the paper suggests.
    """

    enabled: bool = True
    moqt_timeout: float = 1.0
    udp_head_start: float = 0.0


class CapabilityMemo:
    """Per-host memory of upstream MoQT support."""

    def __init__(self) -> None:
        self._capabilities: dict[str, UpstreamCapability] = {}

    def get(self, host: str) -> UpstreamCapability:
        """Current belief for a host."""
        return self._capabilities.get(host, UpstreamCapability.UNKNOWN)

    def note_moqt_success(self, host: str) -> None:
        """Record that a host answered over MoQT."""
        self._capabilities[host] = UpstreamCapability.MOQT

    def note_udp_only(self, host: str) -> None:
        """Record that a host only answered over classic DNS."""
        self._capabilities[host] = UpstreamCapability.UDP_ONLY

    def forget(self, host: str) -> None:
        """Drop the memo for a host (e.g. after an operator hint)."""
        self._capabilities.pop(host, None)

    def known_moqt_hosts(self) -> list[str]:
        """Hosts currently believed to support MoQT."""
        return [
            host
            for host, capability in self._capabilities.items()
            if capability is UpstreamCapability.MOQT
        ]

    def __len__(self) -> int:
        return len(self._capabilities)


@dataclass
class _RefreshEntry:
    """One periodically refreshed question."""

    key: DnsQuestionKey
    task: PeriodicTask
    interval: float
    refreshes: int = 0


class RefreshScheduler:
    """Periodically re-resolves questions served by non-MoQT upstreams.

    The refresh interval equals the record's TTL, which the paper notes is
    also the maximum rate at which traditional DNS would have re-requested
    the record, so the upstream sees no extra load.
    """

    def __init__(self, simulator: Simulator) -> None:
        self._simulator = simulator
        self._entries: dict[DnsQuestionKey, _RefreshEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def is_scheduled(self, key: DnsQuestionKey) -> bool:
        """Whether a refresh loop is active for this question."""
        return key in self._entries

    def schedule(
        self, key: DnsQuestionKey, interval: float, refresh: Callable[[DnsQuestionKey], None]
    ) -> None:
        """Start refreshing ``key`` every ``interval`` seconds."""
        if key in self._entries:
            return
        entry = _RefreshEntry(key=key, task=None, interval=interval)  # type: ignore[arg-type]

        def tick() -> None:
            entry.refreshes += 1
            refresh(key)

        entry.task = PeriodicTask(self._simulator, interval, tick)
        entry.task.start()
        self._entries[key] = entry

    def cancel(self, key: DnsQuestionKey) -> bool:
        """Stop refreshing ``key``."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        entry.task.stop()
        return True

    def cancel_all(self) -> None:
        """Stop every refresh loop."""
        for key in list(self._entries):
            self.cancel(key)

    def refresh_counts(self) -> dict[DnsQuestionKey, int]:
        """Number of refreshes performed per question."""
        return {key: entry.refreshes for key, entry in self._entries.items()}
